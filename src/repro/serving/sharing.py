"""Cross-query sharing: windowed multi-query execution with fan-out.

The windowed multi-query optimizer of ROADMAP item 5.  A
:class:`SharedSearchExecutor` sits between the per-query
:class:`~repro.gateway.client.TextClient` and the service's backend
(in-process, batching, remote or sharded).  Every Boolean search a
worker issues becomes a *flight* keyed by its sharing-safe canonical
form (:func:`~repro.core.optimizer.multiquery.share_key`):

- a search whose key matches an **in-flight** search joins that flight
  and waits for its answer instead of dispatching its own (single-flight
  dedupe, active even with a zero window);
- with a positive **batch window**, newly created flights collect in the
  open window; the first creator becomes the window leader, waits until
  the window expires (or every in-flight query is already waiting, or
  the window is full), then executes all distinct flights in ONE
  ``search_batch`` against the inner backend — so shared searches also
  overlap on the wire through pooled/sharded/remote transports — and
  fans each answer out to every waiting ticket.

**Charge attribution stays honest** (DESIGN invariant 16): the executor
returns ordinary :class:`~repro.textsys.result.ResultSet` objects and
the per-tenant client above it charges them exactly as if the query ran
alone — sharing never touches any ledger's ``total``.  The real backend
work avoided (the joined search's full alone-cost, ``c_i + c_p·p +
c_s·s``) is credited to the joining tenant's ``seconds_shared`` side
channel, priced with that tenant's own constants.

**Window sizing**: the leader's wait adds up to ``window_seconds`` of
latency to the queries in the window, in exchange for merging every
identical search that arrives within it.  The ``inflight_hint`` (the
service passes its admission queue's in-flight count) closes the window
early once every executing query is already waiting in it, so a lone
query never pays the full window.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.optimizer.multiquery import share_key
from repro.errors import ServingError
from repro.gateway.costs import CostLedger
from repro.textsys.parser import parse_search
from repro.textsys.query import SearchNode
from repro.textsys.result import ResultSet

__all__ = ["SharedSearchExecutor", "SharingStats", "DEFAULT_SHARE_WINDOW"]

#: Default batch window: long enough to merge searches issued by
#: concurrently running queries, short next to one simulated ``c_i``.
DEFAULT_SHARE_WINDOW = 0.02

#: Ceiling on how long a joiner waits for another thread's flight
#: before giving up (a resolved leader always sets the event long
#: before this; the bound only guards against a leader thread dying).
_FLIGHT_TIMEOUT = 600.0


class _Flight:
    """One distinct in-flight search and everyone waiting on it."""

    __slots__ = ("key", "query", "event", "result", "error", "participants")

    def __init__(self, key: str, query: Union[SearchNode, str]) -> None:
        self.key = key
        self.query = query
        self.event = threading.Event()
        self.result: Optional[ResultSet] = None
        self.error: Optional[BaseException] = None
        self.participants = 1

    def resolve(self, result: ResultSet) -> None:
        self.result = result
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()

    def wait(self) -> ResultSet:
        if not self.event.wait(_FLIGHT_TIMEOUT):
            raise ServingError(
                f"shared flight {self.key!r} unresolved after "
                f"{_FLIGHT_TIMEOUT}s"
            )
        if self.error is not None:
            raise self.error
        assert self.result is not None
        return self.result


class _Window:
    """Flights collected for one batched execution."""

    __slots__ = ("flights", "closed")

    def __init__(self) -> None:
        self.flights: List[_Flight] = []
        self.closed = False

    @property
    def population(self) -> int:
        return sum(flight.participants for flight in self.flights)


class SharingStats:
    """Thread-safe counters describing what the executor shared."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.windows = 0
        self.flights = 0
        self.batched_flights = 0
        self.shared_searches = 0
        self.seconds_shared = 0.0
        self.per_tenant_joins: Dict[str, int] = {}
        self.per_tenant_seconds: Dict[str, float] = {}

    def on_window(self, flight_count: int) -> None:
        with self._lock:
            self.windows += 1
            self.flights += flight_count
            if flight_count > 1:
                self.batched_flights += flight_count

    def on_join(self, tenant: str, seconds: float) -> None:
        with self._lock:
            self.shared_searches += 1
            self.seconds_shared += seconds
            self.per_tenant_joins[tenant] = (
                self.per_tenant_joins.get(tenant, 0) + 1
            )
            self.per_tenant_seconds[tenant] = (
                self.per_tenant_seconds.get(tenant, 0.0) + seconds
            )

    def snapshot(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "windows": self.windows,
                "flights": self.flights,
                "batched_flights": self.batched_flights,
                "shared_searches": self.shared_searches,
                "seconds_shared": self.seconds_shared,
                "per_tenant_joins": dict(self.per_tenant_joins),
                "per_tenant_seconds": dict(self.per_tenant_seconds),
            }

    def __repr__(self) -> str:
        return (
            f"SharingStats({self.shared_searches} shared, "
            f"{self.seconds_shared:.1f}s side-channel)"
        )


class SharedSearchExecutor:
    """Windowed cross-tenant search sharing over one inner backend.

    Construct one per service and :meth:`bind` a facade per query —
    the facade carries the tenant name and ledger so joins can credit
    the right ``seconds_shared`` side channel.  Everything except
    ``search``/``search_batch`` passes straight through to the inner
    backend, so retrievals, transport accounting, counters and meta
    information behave exactly as without sharing.
    """

    def __init__(
        self,
        inner: Any,
        window_seconds: float = DEFAULT_SHARE_WINDOW,
        max_batch: int = 16,
        inflight_hint: Optional[Callable[[], int]] = None,
        stats: Optional[SharingStats] = None,
    ) -> None:
        if window_seconds < 0:
            raise ServingError("the batch window must be non-negative")
        if max_batch < 1:
            raise ServingError("a window must hold at least one flight")
        self.inner = inner
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self.stats = stats if stats is not None else SharingStats()
        self._inflight_hint = inflight_hint
        self._condition = threading.Condition()
        self._flights: Dict[str, _Flight] = {}
        self._window: Optional[_Window] = None

    def bind(self, tenant: str, ledger: CostLedger) -> "_SharingBackend":
        """A per-query backend facade charging ``tenant``'s side channel."""
        return _SharingBackend(self, tenant, ledger)

    # ------------------------------------------------------------------
    # the submission path (called by the facade)
    # ------------------------------------------------------------------
    def submit(
        self, query: Union[SearchNode, str], tenant: str, ledger: CostLedger
    ) -> ResultSet:
        """One search through the sharing machinery."""
        return self.submit_many(
            [query], tenant, ledger, include_invocation=True
        )[0]

    def submit_many(
        self,
        queries: List[Union[SearchNode, str]],
        tenant: str,
        ledger: CostLedger,
        include_invocation: bool = False,
    ) -> List[ResultSet]:
        """Many searches through the sharing machinery, registered at once.

        All flights are created (or joined) under one lock hold before
        anything waits, so a client batch's searches share one window
        instead of paying a window wait each.  ``include_invocation``
        adds ``c_i`` to the join credit — True for standalone searches
        (alone, each pays its own invocation), False for searches inside
        a client ``search_batch`` (the batch pays one ``c_i`` whether or
        not anything was shared).
        """
        entries: List[tuple] = []  # (flight, joined)
        created: List[_Flight] = []
        window_leader = False
        window: Optional[_Window] = None
        with self._condition:
            for query in queries:
                key = share_key(query)
                flight = self._flights.get(key)
                if flight is not None:
                    flight.participants += 1
                    entries.append((flight, True))
                    continue
                flight = _Flight(key, query)
                self._flights[key] = flight
                created.append(flight)
                entries.append((flight, False))
                if self.window_seconds > 0:
                    if self._window is None or self._window.closed:
                        self._window = _Window()
                        window_leader = True
                    window = self._window
                    window.flights.append(flight)
            self._condition.notify_all()
        if window_leader:
            assert window is not None
            self._lead_window(window)
        elif window is None and created:
            # Zero window: dispatch our own flights immediately
            # (single-flight dedupe still applies to the joins above).
            self._execute(created)
        # A non-leader creator inside someone else's open window waits:
        # that window's leader executes the flight when it closes.
        results: List[ResultSet] = []
        for flight, joined in entries:
            result = flight.wait()
            if joined:
                constants = ledger.constants
                shared = (
                    constants.per_posting * result.postings_processed
                    + constants.short_form * len(result)
                )
                if include_invocation:
                    shared += constants.invocation
                ledger.credit_shared(shared)
                self.stats.on_join(tenant, shared)
            results.append(result)
        return results

    # ------------------------------------------------------------------
    # window leadership
    # ------------------------------------------------------------------
    def _lead_window(self, window: _Window) -> None:
        deadline = time.monotonic() + self.window_seconds
        with self._condition:
            while True:
                if len(window.flights) >= self.max_batch:
                    break
                # Calling the hint under our lock is safe: admission
                # code never calls back into the executor, so the
                # executor-lock -> admission-lock order is one-way.
                hint = (
                    self._inflight_hint()
                    if self._inflight_hint is not None
                    else None
                )
                if hint is not None and window.population >= hint:
                    break
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                self._condition.wait(remaining)
            window.closed = True
            flights = list(window.flights)
            if self._window is window:
                self._window = None
        self._execute(flights)

    # ------------------------------------------------------------------
    # execution and fan-out
    # ------------------------------------------------------------------
    def _execute(self, flights: List[_Flight]) -> None:
        queries = [flight.query for flight in flights]
        try:
            results = self._dispatch(queries)
        except BaseException as error:  # noqa: BLE001 — fan the failure out
            with self._condition:
                for flight in flights:
                    self._flights.pop(flight.key, None)
            for flight in flights:
                flight.fail(error)
            raise
        self.stats.on_window(len(flights))
        with self._condition:
            for flight in flights:
                self._flights.pop(flight.key, None)
        for flight, result in zip(flights, results):
            flight.resolve(result)

    def _dispatch(self, queries: List[Union[SearchNode, str]]) -> List[ResultSet]:
        if len(queries) == 1:
            return [self.inner.search(queries[0])]
        search_batch = getattr(self.inner, "search_batch", None)
        if search_batch is None:
            return [self.inner.search(query) for query in queries]
        limit = getattr(self.inner, "batch_limit", None) or len(queries)
        results: List[ResultSet] = []
        for start in range(0, len(queries), limit):
            results.extend(search_batch(queries[start : start + limit]))
        return results

    def __repr__(self) -> str:
        return (
            f"SharedSearchExecutor(window={self.window_seconds * 1000:.0f}ms, "
            f"max_batch={self.max_batch}, {self.stats!r})"
        )


class _SharingBackend:
    """A per-query backend facade routing searches through the executor.

    Looks like a text server to the :class:`TextClient` above it:
    ``search``/``search_batch`` go through the sharing machinery, and
    everything else (retrieve, counters, ``data_fingerprint``,
    ``drain_accounting``, ...) delegates to the inner backend untouched.
    """

    def __init__(
        self, executor: SharedSearchExecutor, tenant: str, ledger: CostLedger
    ) -> None:
        self._executor = executor
        self._tenant = tenant
        self._ledger = ledger

    def search(self, query: Union[SearchNode, str]) -> ResultSet:
        return self._executor.submit(query, self._tenant, self._ledger)

    def search_batch(
        self, queries: List[Union[SearchNode, str]]
    ) -> List[ResultSet]:
        # Parsing up front keeps share keys cheap under the executor
        # lock; submit_many registers every flight before waiting on
        # any, so the batch shares one window.
        parsed = [
            parse_search(query) if isinstance(query, str) else query
            for query in queries
        ]
        return self._executor.submit_many(parsed, self._tenant, self._ledger)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._executor.inner, name)

    def __repr__(self) -> str:
        return f"_SharingBackend({self._tenant!r} over {self._executor!r})"
