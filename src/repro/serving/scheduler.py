"""Weighted fair scheduling across tenants (stride scheduling).

Classic stride scheduling [Waldspurger & Weihl, OSDI '95]: each tenant
carries a *pass* value advanced by ``stride = STRIDE_UNIT / weight`` on
every dispatch, and the scheduler always dispatches the eligible tenant
with the smallest pass.  Over any window the dispatch counts converge to
the weight ratios, and a tenant that was idle cannot hoard credit: on
re-entry its pass is bumped to the global minimum, so it gets its fair
share *going forward* rather than a burst of catch-up dispatches.

The scheduler is a pure data structure — no locks, no threads.  The
admission queue (:mod:`repro.serving.admission`) drives it under its own
condition variable, which keeps the pick-next step atomic with the queue
bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import ServingError

__all__ = ["StrideScheduler", "STRIDE_UNIT"]

#: Stride numerator: large enough that float strides for any reasonable
#: weight stay well away from each other.
STRIDE_UNIT = float(1 << 20)


class StrideScheduler:
    """Pick-next-tenant by minimum pass value, weights honoured exactly."""

    def __init__(self) -> None:
        self._strides: Dict[str, float] = {}
        self._passes: Dict[str, float] = {}

    def register(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ServingError(f"tenant {tenant!r}: weight must be positive")
        if tenant in self._strides:
            raise ServingError(f"tenant {tenant!r} is already registered")
        self._strides[tenant] = STRIDE_UNIT / weight
        # Join at the current minimum: no retroactive credit for the
        # time before registration.
        self._passes[tenant] = min(self._passes.values(), default=0.0)

    def reactivate(self, tenant: str, busy: Iterable[str]) -> None:
        """Forget credit a tenant accrued while it had nothing queued.

        ``busy`` is the set of tenants with work queued or in flight;
        the returning tenant's pass is raised to their minimum, so an
        idle spell buys the very next dispatch at most — never a burst.
        """
        floor = min(
            (self._passes[other] for other in busy if other != tenant),
            default=None,
        )
        if floor is not None and self._passes[tenant] < floor:
            self._passes[tenant] = floor

    def pick(self, eligible: Iterable[str]) -> Optional[str]:
        """The eligible tenant with the smallest pass (name breaks ties)."""
        best: Optional[str] = None
        best_pass = float("inf")
        for tenant in eligible:
            tenant_pass = self._passes[tenant]
            if tenant_pass < best_pass or (
                tenant_pass == best_pass and (best is None or tenant < best)
            ):
                best = tenant
                best_pass = tenant_pass
        return best

    def on_dispatch(self, tenant: str) -> None:
        """Advance the tenant's pass by its stride."""
        self._passes[tenant] += self._strides[tenant]

    def pass_of(self, tenant: str) -> float:
        return self._passes[tenant]

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._strides

    def __repr__(self) -> str:
        ranked = sorted(self._passes.items(), key=lambda item: item[1])
        return f"StrideScheduler({ranked})"
