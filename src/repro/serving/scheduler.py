"""Weighted fair scheduling across tenants (stride scheduling).

Classic stride scheduling [Waldspurger & Weihl, OSDI '95]: each tenant
carries a *pass* value advanced by ``stride = STRIDE_UNIT / weight`` on
every dispatch, and the scheduler always dispatches the eligible tenant
with the smallest pass.  Over any window the dispatch counts converge to
the weight ratios, and a tenant that was idle cannot hoard credit: on
re-entry its pass is bumped to the global minimum, so it gets its fair
share *going forward* rather than a burst of catch-up dispatches.

The scheduler is a pure data structure — no locks, no threads.  The
admission queue (:mod:`repro.serving.admission`) drives it under its own
condition variable, which keeps the pick-next step atomic with the queue
bookkeeping.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import ServingError

__all__ = ["StrideScheduler", "STRIDE_UNIT"]

#: Stride numerator: large enough that float strides for any reasonable
#: weight stay well away from each other.
STRIDE_UNIT = float(1 << 20)


class StrideScheduler:
    """Pick-next-tenant by minimum pass value, weights honoured exactly."""

    def __init__(self) -> None:
        self._strides: Dict[str, float] = {}
        self._passes: Dict[str, float] = {}
        # Solo fast path: while exactly one tenant is eligible, pass
        # advancement is deferred to a counter and settled lazily — the
        # single-tenant serving loop skips the dict updates and the
        # min-scan entirely.  Any operation that observes pass values
        # flushes first, so the deferral is never visible.
        self._solo: Optional[str] = None
        self._solo_pending: int = 0

    def _flush_solo(self) -> None:
        """Settle deferred solo dispatches into the tenant's pass."""
        if self._solo is not None and self._solo_pending:
            self._passes[self._solo] += (
                self._strides[self._solo] * self._solo_pending
            )
        self._solo = None
        self._solo_pending = 0

    def register(self, tenant: str, weight: float) -> None:
        if weight <= 0:
            raise ServingError(f"tenant {tenant!r}: weight must be positive")
        if tenant in self._strides:
            raise ServingError(f"tenant {tenant!r} is already registered")
        self._flush_solo()
        self._strides[tenant] = STRIDE_UNIT / weight
        # Join at the current minimum: no retroactive credit for the
        # time before registration.
        self._passes[tenant] = min(self._passes.values(), default=0.0)

    def reactivate(self, tenant: str, busy: Iterable[str]) -> None:
        """Forget credit a tenant accrued while it had nothing queued.

        ``busy`` is the set of tenants with work queued or in flight;
        the returning tenant's pass is raised to their minimum, so an
        idle spell buys the very next dispatch at most — never a burst.
        """
        self._flush_solo()
        floor = min(
            (self._passes[other] for other in busy if other != tenant),
            default=None,
        )
        if floor is not None and self._passes[tenant] < floor:
            self._passes[tenant] = floor

    def pick(self, eligible: Iterable[str]) -> Optional[str]:
        """The eligible tenant with the smallest pass (name breaks ties)."""
        tenants = (
            eligible
            if isinstance(eligible, (list, tuple))
            else list(eligible)
        )
        if not tenants:
            # Nothing to do; leave any solo deferral in place so a
            # momentarily-drained queue does not exit the fast path.
            return None
        if len(tenants) == 1:
            tenant = tenants[0]
            if tenant != self._solo:
                if tenant not in self._passes:
                    raise KeyError(tenant)
                self._flush_solo()
                self._solo = tenant
            return tenant
        self._flush_solo()
        best: Optional[str] = None
        best_pass = float("inf")
        for tenant in tenants:
            tenant_pass = self._passes[tenant]
            if tenant_pass < best_pass or (
                tenant_pass == best_pass and (best is None or tenant < best)
            ):
                best = tenant
                best_pass = tenant_pass
        return best

    def on_dispatch(self, tenant: str) -> None:
        """Advance the tenant's pass by its stride."""
        if tenant == self._solo:
            self._solo_pending += 1
            return
        self._flush_solo()
        self._passes[tenant] += self._strides[tenant]

    def pass_of(self, tenant: str) -> float:
        self._flush_solo()
        return self._passes[tenant]

    def __contains__(self, tenant: str) -> bool:
        return tenant in self._strides

    def __repr__(self) -> str:
        self._flush_solo()
        ranked = sorted(self._passes.items(), key=lambda item: item[1])
        return f"StrideScheduler({ranked})"
