"""Live service metrics: QPS, latency percentiles, hit rate, breakers.

:class:`ServiceMetrics` is the one mutable aggregation point the serving
workers share; every update holds its lock, and :meth:`snapshot` hands
back a plain dict assembled from a consistent view — suitable for
printing, JSON, or assertions in the smoke benchmark.

The snapshot pulls in the read-only state of its collaborators too:
cache hit rate from the shared :class:`~repro.gateway.tracing.CallTracer`,
breaker states from the transport's ``report()`` (when the backend is a
remote/sharded deployment), and admission-queue depth.  Those reads are
individually thread-safe; the snapshot does not try to freeze the whole
service in one instant.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Sequence

__all__ = ["percentile", "ServiceMetrics"]

#: How many completed-query latencies the rolling window keeps.
LATENCY_WINDOW = 2048


def percentile(samples: Sequence[float], fraction: float) -> float:
    """The ``fraction``-quantile (nearest-rank) of ``samples``; 0.0 if empty.

    Nearest-rank: the smallest sample with at least ``fraction`` of the
    distribution at or below it — ``ordered[ceil(fraction * n) - 1]``.
    The old floor-based rank overshot by one position whenever
    ``fraction * n`` landed on an integer (p50 of ``[1, 2]`` returned 2;
    p99 of 100 samples returned the maximum), so single-sample and
    small-window snapshots reported the wrong percentile.
    """
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    ordered = sorted(samples)
    rank = min(
        len(ordered) - 1, max(0, math.ceil(fraction * len(ordered)) - 1)
    )
    return ordered[rank]


class ServiceMetrics:
    """Thread-safe counters plus a rolling latency window."""

    def __init__(self, clock=time.monotonic) -> None:
        self._lock = threading.Lock()
        self._clock = clock
        self._started_at = clock()
        self.submitted = 0
        self.admitted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self._latencies: Deque[float] = deque(maxlen=LATENCY_WINDOW)

    # ------------------------------------------------------------------
    # update paths (called by the service)
    # ------------------------------------------------------------------
    def on_submitted(self) -> None:
        with self._lock:
            self.submitted += 1

    def on_admitted(self) -> None:
        with self._lock:
            self.admitted += 1

    def on_rejected(self) -> None:
        with self._lock:
            self.rejected += 1

    def on_completed(self, latency_seconds: float) -> None:
        with self._lock:
            self.completed += 1
            self._latencies.append(latency_seconds)

    def on_failed(self, latency_seconds: Optional[float] = None) -> None:
        with self._lock:
            self.failed += 1
            if latency_seconds is not None:
                self._latencies.append(latency_seconds)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def latency_samples(self) -> List[float]:
        with self._lock:
            return list(self._latencies)

    def snapshot(
        self,
        queue_depth: int = 0,
        inflight: int = 0,
        tracer: Optional[Any] = None,
        backend: Optional[Any] = None,
        tenants: Optional[Dict[str, Any]] = None,
        sharing: Optional[Any] = None,
    ) -> Dict[str, Any]:
        """One JSON-friendly dict describing the service right now.

        With ``tenants`` (name → :class:`~repro.serving.tenants.
        TenantState`), the snapshot carries a ``per_tenant`` block —
        cache hit rate and cache/shared seconds saved attributed to each
        tenant, not just service-wide.  With ``sharing`` (the service's
        :class:`~repro.serving.sharing.SharedSearchExecutor`), it
        carries that executor's window/flight/join counters.
        """
        with self._lock:
            elapsed = max(self._clock() - self._started_at, 1e-9)
            latencies = list(self._latencies)
            counts = {
                "submitted": self.submitted,
                "admitted": self.admitted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
            }
        snapshot: Dict[str, Any] = {
            **counts,
            "elapsed_seconds": elapsed,
            "qps": counts["completed"] / elapsed,
            "latency_p50": percentile(latencies, 0.50),
            "latency_p99": percentile(latencies, 0.99),
            "latency_max": max(latencies) if latencies else 0.0,
            "queue_depth": queue_depth,
            "inflight": inflight,
        }
        if tracer is not None:
            trace = tracer.summary()
            snapshot["foreign_calls"] = trace["spans"]
            snapshot["cache_hit_rate"] = trace["hit_rate"]
            snapshot["foreign_cost_seconds"] = trace["cost"]
        if tenants is not None:
            snapshot["per_tenant"] = {
                name: _tenant_attribution(state)
                for name, state in tenants.items()
            }
        if sharing is not None:
            snapshot["sharing"] = sharing.stats.snapshot()
        snapshot["breaker_states"] = _breaker_states(backend)
        return snapshot


def _tenant_attribution(state: Any) -> Dict[str, Any]:
    """One tenant's cache/sharing attribution for the snapshot."""
    stats = state.cache_stats
    ledger = state.ledger
    return {
        "cache_hits": stats.hits,
        "cache_lookups": stats.lookups,
        "cache_hit_rate": stats.hit_rate,
        "seconds_saved": ledger.seconds_saved,
        "seconds_shared": ledger.seconds_shared,
        "ledger_total": ledger.total,
    }


def _breaker_states(backend: Optional[Any]) -> List[str]:
    """Breaker states of a remote/sharded backend (empty when in-process)."""
    if backend is None:
        return []
    breaker = getattr(backend, "breaker", None)
    if breaker is not None:  # a single RemoteTextTransport
        return [breaker.state]
    report = getattr(backend, "report", None)
    if report is None:
        return []
    try:
        per_shard = report().get("per_shard", [])
    except Exception:
        return []
    return [
        shard["breaker_state"] for shard in per_shard if "breaker_state" in shard
    ]
