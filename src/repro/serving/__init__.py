"""Concurrent multi-tenant serving over the text-join gateway.

The paper measures one query at a time; this package serves a *stream*
of join queries from N tenants concurrently, on top of the (now
thread-safe) gateway accounting:

- :mod:`repro.serving.tenants` — tenant specs, budgeted ledgers, quotas;
- :mod:`repro.serving.scheduler` — stride-based weighted fair sharing;
- :mod:`repro.serving.admission` — bounded queue with backpressure;
- :mod:`repro.serving.metrics` — QPS / latency / hit-rate snapshots;
- :mod:`repro.serving.sharing` — windowed cross-query search sharing;
- :mod:`repro.serving.service` — the worker pool tying it together.
"""

from repro.serving.admission import AdmissionQueue
from repro.serving.metrics import ServiceMetrics, percentile
from repro.serving.scheduler import STRIDE_UNIT, StrideScheduler
from repro.serving.service import QueryService, QueryTicket
from repro.serving.sharing import (
    DEFAULT_SHARE_WINDOW,
    SharedSearchExecutor,
    SharingStats,
)
from repro.serving.tenants import BudgetedCostLedger, TenantSpec, TenantState

__all__ = [
    "AdmissionQueue",
    "ServiceMetrics",
    "percentile",
    "StrideScheduler",
    "STRIDE_UNIT",
    "QueryService",
    "QueryTicket",
    "BudgetedCostLedger",
    "SharedSearchExecutor",
    "SharingStats",
    "DEFAULT_SHARE_WINDOW",
    "TenantSpec",
    "TenantState",
]
