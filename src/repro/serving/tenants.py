"""Tenants: identity, fair-share weight, budget and quota.

The paper's cost model assumes one query charging one ledger; a serving
deployment has N tenants charging N ledgers *concurrently*.  Each tenant
owns:

- a **weight** — its share of the scheduler's dispatch bandwidth
  (see :mod:`repro.serving.scheduler`);
- a **budget** — an optional ceiling on the simulated seconds its
  :class:`~repro.gateway.costs.CostLedger` may accumulate, enforced *at
  charge time* by :class:`BudgetedCostLedger`;
- a **quota** — an optional ceiling on the number of queries admitted.

Budget enforcement is deliberately post-charge: by the time the gateway
charges a search, the foreign call has already happened, so the charge
must stay on the ledger (the Section 4.1 identity prices *answered*
work).  The charge that crosses the budget raises
:class:`~repro.errors.BudgetExceededError`, aborting the in-flight query;
the service then refuses the tenant's later admissions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import BudgetExceededError, QuotaExceededError, ServingError
from repro.gateway.costs import CostConstants, CostLedger

__all__ = ["TenantSpec", "BudgetedCostLedger", "TenantState"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's serving contract."""

    name: str
    #: Relative share of scheduler dispatches (stride scheduling).
    weight: float = 1.0
    #: Simulated-seconds ceiling on the tenant's ledger (None = unmetered).
    budget_seconds: Optional[float] = None
    #: Maximum queries admitted over the service lifetime (None = unlimited).
    query_quota: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("a tenant needs a non-empty name")
        if self.weight <= 0:
            raise ServingError(f"tenant {self.name!r}: weight must be positive")
        if self.budget_seconds is not None and self.budget_seconds < 0:
            raise ServingError(
                f"tenant {self.name!r}: budget must be non-negative"
            )
        if self.query_quota is not None and self.query_quota < 0:
            raise ServingError(f"tenant {self.name!r}: quota must be non-negative")


@dataclass
class BudgetedCostLedger(CostLedger):
    """A :class:`CostLedger` with a hard simulated-seconds budget.

    Every charge applies first (the foreign call already happened) and
    then — atomically, under the ledger's re-entrant lock — checks the
    ceiling.  The crossing charge raises
    :class:`~repro.errors.BudgetExceededError`; the accounting identity
    still holds exactly over everything charged.  Only ``total`` is
    budgeted; the ``seconds_saved`` / ``seconds_retried`` side channels
    never count against it.
    """

    budget_seconds: Optional[float] = None

    def _enforce(self) -> None:
        if self.budget_seconds is not None and self.total > self.budget_seconds:
            raise BudgetExceededError(
                f"ledger total {self.total:.3f}s exceeds the budget of "
                f"{self.budget_seconds:.3f}s"
            )

    @property
    def exhausted(self) -> bool:
        """Whether the ledger has crossed its budget already."""
        return (
            self.budget_seconds is not None and self.total > self.budget_seconds
        )

    def charge_search(self, postings_processed: int, result_size: int) -> float:
        with self._lock:
            cost = super().charge_search(postings_processed, result_size)
            self._enforce()
        return cost

    def charge_retrieve(self) -> float:
        with self._lock:
            cost = super().charge_retrieve()
            self._enforce()
        return cost

    def charge_rtp(self, document_count: int) -> float:
        with self._lock:
            cost = super().charge_rtp(document_count)
            self._enforce()
        return cost


@dataclass
class TenantState:
    """One tenant's live serving state: ledger plus admission counters."""

    spec: TenantSpec
    ledger: BudgetedCostLedger
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    @classmethod
    def from_spec(
        cls, spec: TenantSpec, constants: Optional[CostConstants] = None
    ) -> "TenantState":
        return cls(
            spec=spec,
            ledger=BudgetedCostLedger(
                constants=constants or CostConstants(),
                budget_seconds=spec.budget_seconds,
            ),
        )

    def try_admit(self) -> None:
        """Claim one admission slot, or raise the matching refusal.

        Quota and budget are both checked here (budget additionally at
        charge time, which is what aborts an in-flight query).  The
        admitted count only moves on success, so a refused submission
        never consumes quota.  Raises
        :class:`~repro.errors.BudgetExceededError` /
        :class:`~repro.errors.QuotaExceededError`.
        """
        with self._lock:
            if self.ledger.exhausted:
                self.rejected += 1
                raise BudgetExceededError(
                    f"tenant {self.spec.name!r} exhausted its budget of "
                    f"{self.spec.budget_seconds:.3f} simulated seconds"
                )
            if (
                self.spec.query_quota is not None
                and self.admitted >= self.spec.query_quota
            ):
                self.rejected += 1
                raise QuotaExceededError(
                    f"tenant {self.spec.name!r} reached its quota of "
                    f"{self.spec.query_quota} queries"
                )
            self.admitted += 1

    def release_admission(self) -> None:
        """Give an admission slot back (queue backpressure refused it)."""
        with self._lock:
            self.admitted -= 1
            self.rejected += 1

    def record_outcome(self, ok: bool) -> None:
        with self._lock:
            if ok:
                self.completed += 1
            else:
                self.failed += 1

    def report(self) -> dict:
        """JSON-friendly per-tenant accounting summary."""
        with self._lock:
            counts = {
                "admitted": self.admitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
            }
        ledger = self.ledger
        return {
            "tenant": self.spec.name,
            "weight": self.spec.weight,
            "budget_seconds": self.spec.budget_seconds,
            "query_quota": self.spec.query_quota,
            **counts,
            "ledger_total": ledger.total,
            "searches": ledger.searches,
            "seconds_saved": ledger.seconds_saved,
            "seconds_retried": ledger.seconds_retried,
        }
