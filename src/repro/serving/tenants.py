"""Tenants: identity, fair-share weight, budget and quota.

The paper's cost model assumes one query charging one ledger; a serving
deployment has N tenants charging N ledgers *concurrently*.  Each tenant
owns:

- a **weight** — its share of the scheduler's dispatch bandwidth
  (see :mod:`repro.serving.scheduler`);
- a **budget** — an optional ceiling on the simulated seconds its
  :class:`~repro.gateway.costs.CostLedger` may accumulate, enforced *at
  charge time* by :class:`BudgetedCostLedger`;
- a **quota** — an optional ceiling on the number of queries admitted.

Budget enforcement is deliberately post-charge: by the time the gateway
charges a search, the foreign call has already happened, so the charge
must stay on the ledger (the Section 4.1 identity prices *answered*
work).  The charge that crosses the budget raises
:class:`~repro.errors.BudgetExceededError`, aborting the in-flight query;
the service then refuses the tenant's later admissions.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import BudgetExceededError, QuotaExceededError, ServingError
from repro.gateway.cache import CacheStats
from repro.gateway.costs import CostConstants, CostLedger

__all__ = ["TenantSpec", "BudgetedCostLedger", "TenantState"]


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's serving contract."""

    name: str
    #: Relative share of scheduler dispatches (stride scheduling).
    weight: float = 1.0
    #: Simulated-seconds ceiling on the tenant's ledger (None = unmetered).
    budget_seconds: Optional[float] = None
    #: Maximum queries admitted over the service lifetime (None = unlimited).
    query_quota: Optional[int] = None
    #: Separate ceiling for the tenant's *vector-backend* spend (None =
    #: unmetered).  Per-backend budgets mirror per-backend attribution
    #: (DESIGN invariant 15): vector charges never drain the Boolean
    #: budget, and vice versa.
    vector_budget_seconds: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ServingError("a tenant needs a non-empty name")
        if self.weight <= 0:
            raise ServingError(f"tenant {self.name!r}: weight must be positive")
        if self.budget_seconds is not None and self.budget_seconds < 0:
            raise ServingError(
                f"tenant {self.name!r}: budget must be non-negative"
            )
        if self.query_quota is not None and self.query_quota < 0:
            raise ServingError(f"tenant {self.name!r}: quota must be non-negative")
        if self.vector_budget_seconds is not None and self.vector_budget_seconds < 0:
            raise ServingError(
                f"tenant {self.name!r}: vector budget must be non-negative"
            )


@dataclass
class BudgetedCostLedger(CostLedger):
    """A :class:`CostLedger` with a hard simulated-seconds budget.

    Every charge applies first (the foreign call already happened) and
    then — atomically, under the ledger's re-entrant lock — checks the
    ceiling.  The crossing charge raises
    :class:`~repro.errors.BudgetExceededError`; the accounting identity
    still holds exactly over everything charged.  Only ``total`` is
    budgeted; the ``seconds_saved`` / ``seconds_retried`` side channels
    never count against it.
    """

    budget_seconds: Optional[float] = None

    def _enforce(self) -> None:
        if self.budget_seconds is not None and self.total > self.budget_seconds:
            raise BudgetExceededError(
                f"ledger total {self.total:.3f}s exceeds the budget of "
                f"{self.budget_seconds:.3f}s"
            )

    @property
    def exhausted(self) -> bool:
        """Whether the ledger has crossed its budget already."""
        return (
            self.budget_seconds is not None and self.total > self.budget_seconds
        )

    def charge_search(self, postings_processed: int, result_size: int) -> float:
        with self._lock:
            cost = super().charge_search(postings_processed, result_size)
            self._enforce()
        return cost

    def charge_retrieve(self) -> float:
        with self._lock:
            cost = super().charge_retrieve()
            self._enforce()
        return cost

    def charge_rtp(self, document_count: int) -> float:
        with self._lock:
            cost = super().charge_rtp(document_count)
            self._enforce()
        return cost


@dataclass
class TenantState:
    """One tenant's live serving state: ledger plus admission counters."""

    spec: TenantSpec
    ledger: BudgetedCostLedger
    #: Present only on services with a vector backend: the tenant's
    #: ranked-search spend, priced with the *vector* backend's constants
    #: and budgeted independently (invariant 15 at tenant granularity).
    vector_ledger: Optional[BudgetedCostLedger] = None
    #: Per-tenant view of the *shared* gateway cache: every query the
    #: service runs for this tenant notes its lookups here, so the
    #: metrics snapshot can report hit rates per tenant, not just
    #: service-wide.  Single-writer by construction — the admission
    #: queue caps each tenant at one in-flight query.
    cache_stats: CacheStats = field(default_factory=CacheStats)
    admitted: int = 0
    completed: int = 0
    failed: int = 0
    rejected: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    @classmethod
    def from_spec(
        cls,
        spec: TenantSpec,
        constants: Optional[CostConstants] = None,
        vector_constants: Optional[CostConstants] = None,
    ) -> "TenantState":
        vector_ledger = None
        if vector_constants is not None:
            vector_ledger = BudgetedCostLedger(
                constants=vector_constants,
                budget_seconds=spec.vector_budget_seconds,
            )
        return cls(
            spec=spec,
            ledger=BudgetedCostLedger(
                constants=constants or CostConstants(),
                budget_seconds=spec.budget_seconds,
            ),
            vector_ledger=vector_ledger,
        )

    def try_admit(self, vector: bool = False) -> None:
        """Claim one admission slot, or raise the matching refusal.

        Quota and budget are both checked here (budget additionally at
        charge time, which is what aborts an in-flight query).  A vector
        submission checks the *vector* budget — spends are attributed,
        and therefore refused, per backend (invariant 15).  The admitted
        count only moves on success, so a refused submission never
        consumes quota.  Raises
        :class:`~repro.errors.BudgetExceededError` /
        :class:`~repro.errors.QuotaExceededError`.
        """
        with self._lock:
            budgeted = (
                self.vector_ledger
                if vector and self.vector_ledger is not None
                else self.ledger
            )
            if budgeted.exhausted:
                self.rejected += 1
                raise BudgetExceededError(
                    f"tenant {self.spec.name!r} exhausted its "
                    f"{'vector ' if budgeted is self.vector_ledger else ''}"
                    f"budget of {budgeted.budget_seconds:.3f} simulated seconds"
                )
            if (
                self.spec.query_quota is not None
                and self.admitted >= self.spec.query_quota
            ):
                self.rejected += 1
                raise QuotaExceededError(
                    f"tenant {self.spec.name!r} reached its quota of "
                    f"{self.spec.query_quota} queries"
                )
            self.admitted += 1

    def release_admission(self) -> None:
        """Give an admission slot back (queue backpressure refused it)."""
        with self._lock:
            self.admitted -= 1
            self.rejected += 1

    def record_outcome(self, ok: bool) -> None:
        with self._lock:
            if ok:
                self.completed += 1
            else:
                self.failed += 1

    def report(self) -> dict:
        """JSON-friendly per-tenant accounting summary."""
        with self._lock:
            counts = {
                "admitted": self.admitted,
                "completed": self.completed,
                "failed": self.failed,
                "rejected": self.rejected,
            }
        ledger = self.ledger
        report = {
            "tenant": self.spec.name,
            "weight": self.spec.weight,
            "budget_seconds": self.spec.budget_seconds,
            "query_quota": self.spec.query_quota,
            **counts,
            "ledger_total": ledger.total,
            "searches": ledger.searches,
            "seconds_saved": ledger.seconds_saved,
            "seconds_shared": ledger.seconds_shared,
            "seconds_retried": ledger.seconds_retried,
            "cache_hit_rate": self.cache_stats.hit_rate,
        }
        if self.vector_ledger is not None:
            report["vector_total"] = self.vector_ledger.total
            report["vector_searches"] = self.vector_ledger.searches
        return report
