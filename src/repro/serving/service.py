"""The multi-tenant query service: admission → fair dispatch → execution.

:class:`QueryService` is the serving front-end over one integrated
system (a :class:`~repro.workload.scenarios.Scenario` plus, optionally,
a remote or sharded transport).  N tenants submit join queries from
their own threads; a pool of worker threads executes them with the
existing join methods, charging each tenant's *shared, budgeted,
thread-safe* ledger.

The concurrency story, in one place:

- :class:`~repro.serving.admission.AdmissionQueue` bounds the backlog
  (reject-with-retry-after), fair-dispatches by stride weight, and caps
  each tenant at one in-flight query;
- every query runs through a **fresh** :class:`~repro.gateway.client.
  TextClient` wired to the tenant's ledger and the service-wide shared
  cache/tracer — clients are cheap, and a fresh one per query keeps all
  per-query state worker-local;
- the per-tenant in-flight cap of 1 makes the ledger effectively
  single-writer per query, so the per-query ``ledger.diff`` attribution
  inside ``finalize_execution`` stays exact even though the ledger
  object itself is shared (and locked) across the tenant's lifetime;
- charge identity (DESIGN invariant 12): with the cache off, summing
  each tenant's ledger at the end equals a serial run of the same
  queries bit-identically — the costs are functions of integer counts,
  and the locks mean no increment is ever lost.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.core.joinmethods import JoinContext, JoinMethod, TupleSubstitution
from repro.errors import AdmissionRejected, ServingError
from repro.gateway.cache import GatewayCache
from repro.gateway.client import TextClient
from repro.gateway.costs import VECTOR_CONSTANTS, CostConstants
from repro.gateway.tracing import CallTracer
from repro.textsys.vector import VectorQuery
from repro.serving.admission import AdmissionQueue
from repro.serving.metrics import ServiceMetrics
from repro.serving.sharing import SharedSearchExecutor
from repro.serving.tenants import TenantSpec, TenantState
from repro.workload.scenarios import Scenario

__all__ = ["QueryTicket", "QueryService"]

#: Workers poll the queue at this granularity while idle, so stop()
#: never needs to interrupt a blocking wait.
_TAKE_TIMEOUT = 0.05


class QueryTicket:
    """A submitted query's future result."""

    def __init__(self, tenant: str, query: Any, method: Optional[JoinMethod]) -> None:
        self.tenant = tenant
        self.query = query
        self.method = method
        self.submitted_at = time.monotonic()
        self.latency: Optional[float] = None
        self.execution: Optional[Any] = None
        self.error: Optional[BaseException] = None
        self._done = threading.Event()

    def _finish(self, execution: Any, error: Optional[BaseException]) -> None:
        self.execution = execution
        self.error = error
        self.latency = time.monotonic() - self.submitted_at
        self._done.set()

    @property
    def done(self) -> bool:
        return self._done.is_set()

    def result(self, timeout: Optional[float] = None) -> Any:
        """Block for the outcome; re-raises the query's failure, if any."""
        if not self._done.wait(timeout):
            raise ServingError(
                f"query for tenant {self.tenant!r} not done after {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return self.execution

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"QueryTicket({self.tenant!r}, {state})"


class QueryService:
    """A concurrent multi-tenant serving front-end over one scenario.

    Usage::

        specs = [TenantSpec("alice", weight=2.0), TenantSpec("bob")]
        with QueryService(scenario, specs, workers=4, capacity=16) as svc:
            ticket = svc.submit("alice", "q1")
            execution = ticket.result(timeout=30)
        print(svc.metrics_snapshot())

    ``backend`` defaults to the scenario's in-process server; pass a
    :class:`~repro.remote.transport.RemoteTextTransport` or
    :class:`~repro.remote.router.ShardedTextTransport` to serve over the
    remote stack (that is where worker concurrency buys wall-clock
    throughput — simulated network pauses overlap across workers).
    """

    def __init__(
        self,
        scenario: Scenario,
        tenants: Sequence[TenantSpec],
        workers: int = 4,
        capacity: int = 16,
        backend: Optional[Any] = None,
        cache: Optional[GatewayCache] = None,
        tracer: Optional[CallTracer] = None,
        feedback: Optional[Any] = None,
        statistics: Optional[Any] = None,
        vector_backend: Optional[Any] = None,
        vector_constants: Optional[CostConstants] = None,
        share_window: Optional[float] = None,
        max_share_batch: int = 16,
    ) -> None:
        if not tenants:
            raise ServingError("a service needs at least one tenant")
        names = [spec.name for spec in tenants]
        if len(set(names)) != len(names):
            raise ServingError(f"duplicate tenant names in {names}")
        self.scenario = scenario
        self.backend = backend if backend is not None else scenario.server
        #: Optional second text source with ranked (vector) semantics.
        #: Tenants submit :class:`~repro.textsys.vector.VectorQuery`
        #: objects; each runs against this backend and charges the
        #: tenant's *vector* ledger with the vector constants — never
        #: the Boolean ledger (DESIGN invariant 15).
        self.vector_backend = vector_backend
        self.vector_constants = (
            vector_constants
            if vector_constants is not None
            else (VECTOR_CONSTANTS if vector_backend is not None else None)
        )
        self.cache = cache
        self.tracer = tracer if tracer is not None else CallTracer(enabled=True)
        #: When a :class:`~repro.core.feedback.FeedbackStore` is wired
        #: in, tickets submitted without an explicit method are planned
        #: per query with feedback-blended statistics, and every
        #: completed plan records its predicted-vs-measured cost.  The
        #: shared ``statistics`` registry amortizes sampling across
        #: queries; concurrent first touches at worst duplicate a
        #: sampling round (each worker charges its own tenant).
        self.feedback = feedback
        self.statistics = statistics
        self.metrics = ServiceMetrics()
        self.workers = workers
        self._queue = AdmissionQueue(capacity, workers=workers, max_inflight=1)
        #: Cross-query sharing (ROADMAP item 5): with a ``share_window``
        #: (seconds; 0 enables single-flight dedupe only), Boolean
        #: searches from concurrent queries are canonicalized, merged by
        #: share key, executed once through the backend's
        #: ``search_batch``, and fanned out — with every tenant still
        #: charged as if alone (DESIGN invariant 16) and the avoided
        #: backend work credited to ``ledger.seconds_shared``.
        self.sharing: Optional[SharedSearchExecutor] = None
        if share_window is not None:
            self.sharing = SharedSearchExecutor(
                self.backend,
                window_seconds=share_window,
                max_batch=max_share_batch,
                inflight_hint=lambda: self._queue.inflight,
            )
        self._tenants: Dict[str, TenantState] = {}
        for spec in tenants:
            state = TenantState.from_spec(
                spec, scenario.constants, vector_constants=self.vector_constants
            )
            self._tenants[spec.name] = state
            self._queue.register_tenant(spec.name, spec.weight)
        self._threads: List[threading.Thread] = []
        self._stopping = threading.Event()
        self._started = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        if self._started:
            raise ServingError("the service is already started")
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(
                target=self._worker_loop,
                name=f"serving-worker-{index}",
                daemon=True,
            )
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, drain: bool = True) -> None:
        """Shut down; with ``drain`` the backlog finishes first."""
        self._stopping.set()
        dropped = self._queue.close(drain=drain)
        for ticket in dropped:
            ticket._finish(None, ServingError("the service was stopped"))
            self._tenants[ticket.tenant].record_outcome(False)
        for thread in self._threads:
            thread.join()
        self._threads.clear()

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ------------------------------------------------------------------
    # the tenant-facing API
    # ------------------------------------------------------------------
    def submit(
        self,
        tenant: str,
        query: Union[str, Any],
        method: Optional[JoinMethod] = None,
    ) -> QueryTicket:
        """Admit one query; returns a ticket to wait on.

        ``query`` may be a canonical query id (``"q1"``..``"q4"``) or a
        ready :class:`~repro.core.query.TextJoinQuery`.  Raises
        :class:`~repro.errors.QuotaExceededError` /
        :class:`~repro.errors.BudgetExceededError` when the tenant is
        out of quota or budget, and
        :class:`~repro.errors.AdmissionRejected` (with ``retry_after``)
        under backpressure.
        """
        self.metrics.on_submitted()
        state = self._tenants.get(tenant)
        if state is None:
            raise ServingError(f"unknown tenant {tenant!r}")
        if isinstance(query, str):
            query = self.scenario.query(query)
        if isinstance(query, VectorQuery) and self.vector_backend is None:
            self.metrics.on_rejected()
            raise ServingError(
                "this service has no vector backend; pass vector_backend= "
                "to serve ranked queries"
            )
        try:
            state.try_admit(vector=isinstance(query, VectorQuery))
        except ServingError:
            self.metrics.on_rejected()
            raise
        ticket = QueryTicket(tenant, query, method)
        try:
            self._queue.offer(tenant, ticket)
        except AdmissionRejected:
            state.release_admission()
            self.metrics.on_rejected()
            raise
        self.metrics.on_admitted()
        return ticket

    # ------------------------------------------------------------------
    # the worker side
    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            taken = self._queue.take(timeout=_TAKE_TIMEOUT)
            if taken is None:
                if self._stopping.is_set():
                    return
                continue
            tenant, ticket = taken
            state = self._tenants[tenant]
            started = time.monotonic()
            try:
                execution = self._execute(state, ticket)
            except BaseException as error:  # noqa: BLE001 — failures belong to the ticket
                ticket._finish(None, error)
                state.record_outcome(False)
                self.metrics.on_failed(time.monotonic() - ticket.submitted_at)
            else:
                ticket._finish(execution, None)
                state.record_outcome(True)
                self.metrics.on_completed(time.monotonic() - ticket.submitted_at)
            finally:
                self._queue.done(tenant, time.monotonic() - started)

    def _execute(self, state: TenantState, ticket: QueryTicket) -> Any:
        if isinstance(ticket.query, VectorQuery):
            # Ranked searches go to the vector backend and charge the
            # tenant's vector ledger only; the shared Boolean cache is
            # deliberately NOT consulted (different source, different
            # semantics — a hit would cross the attribution boundary).
            client = TextClient(
                self.vector_backend,
                tracer=self.tracer,
                ledger=state.vector_ledger,
            )
            return client.search(ticket.query)
        backend = self.backend
        if self.sharing is not None:
            backend = self.sharing.bind(state.spec.name, state.ledger)
        client = TextClient(
            backend,
            cache=self.cache,
            tracer=self.tracer,
            ledger=state.ledger,
            cache_stats=state.cache_stats,
        )
        context = JoinContext(self.scenario.catalog, client)
        method = ticket.method
        if method is None and self.feedback is not None:
            planned = self._plan_with_feedback(ticket.query, context)
            if planned is not None:
                return planned
        if method is None:
            method = TupleSubstitution()
        return method.execute(ticket.query, context)

    def _plan_with_feedback(self, query: Any, context: JoinContext) -> Any:
        """Cost-based planning with feedback-blended statistics.

        Returns the finished execution, or None when the query is not a
        single text join (multi-join queries keep the default path).
        Statistics gathering and execution both charge the tenant's own
        ledger; the feedback store only ever *reads* the spend
        afterwards (DESIGN invariant 14).
        """
        from repro.core.feedback import corpus_fingerprint, query_key
        from repro.core.inputs import build_cost_inputs
        from repro.core.optimizer.single_join import choose_join_method
        from repro.core.query import TextJoinQuery

        if not isinstance(query, TextJoinQuery):
            return None
        inputs = build_cost_inputs(
            query, context, registry=self.statistics, feedback=self.feedback
        )
        choice = choose_join_method(query, inputs)
        ledger = context.client.ledger
        before = ledger.snapshot()
        execution = choice.method.execute(query, context)
        self.feedback.observe_method(
            corpus_fingerprint(self.backend),
            query_key(query),
            choice.name,
            estimated_cost=choice.estimate.total,
            actual_cost=ledger.diff(before).total,
        )
        return execution

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def tenant(self, name: str) -> TenantState:
        return self._tenants[name]

    def ledger_totals(self) -> Dict[str, float]:
        """Each tenant's cumulative simulated seconds (the identity sums)."""
        return {
            name: state.ledger.total for name, state in self._tenants.items()
        }

    def vector_ledger_totals(self) -> Dict[str, float]:
        """Each tenant's vector-backend spend (empty without a backend)."""
        return {
            name: state.vector_ledger.total
            for name, state in self._tenants.items()
            if state.vector_ledger is not None
        }

    def tenant_reports(self) -> List[Dict[str, Any]]:
        return [state.report() for state in self._tenants.values()]

    def metrics_snapshot(self) -> Dict[str, Any]:
        """Service-wide live metrics (see :mod:`repro.serving.metrics`)."""
        return self.metrics.snapshot(
            queue_depth=self._queue.depth,
            inflight=self._queue.inflight,
            tracer=self.tracer,
            backend=self.backend,
            tenants=self._tenants,
            sharing=self.sharing,
        )

    def __repr__(self) -> str:
        return (
            f"QueryService({len(self._tenants)} tenants, "
            f"{self.workers} workers, {self._queue!r})"
        )
