"""Bounded admission with backpressure and weighted-fair dequeue.

The queue is the service's front door.  It enforces three things at
once, under one condition variable:

- **bounded backlog** — at most ``capacity`` requests may be pending
  across all tenants; an :meth:`AdmissionQueue.offer` beyond that raises
  :class:`~repro.errors.AdmissionRejected` carrying a ``retry_after``
  estimate (backlog × recent service time ÷ workers), so well-behaved
  clients can back off instead of hammering;
- **weighted fair dispatch** — :meth:`take` hands workers the next
  request of the eligible tenant with the smallest stride-scheduling
  pass (:mod:`repro.serving.scheduler`), so a flood from one tenant
  cannot starve the others beyond its weight share;
- **per-tenant in-flight limit** — a tenant's queries execute at most
  ``max_inflight`` at a time (default 1).  This is what keeps each
  tenant's :class:`~repro.gateway.costs.CostLedger` *single-writer at a
  time*, so per-query before/after ledger diffs stay exact while the
  ledger itself remains lock-protected against cross-tenant sharing.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from repro.errors import AdmissionRejected, ServingError
from repro.serving.scheduler import StrideScheduler

__all__ = ["AdmissionQueue", "DEFAULT_RETRY_AFTER"]

#: Fallback retry-after before any service time has been observed.
DEFAULT_RETRY_AFTER = 0.05

#: How many recent per-query service durations feed the retry-after
#: estimate.
SERVICE_TIME_WINDOW = 64


class AdmissionQueue:
    """Bounded multi-tenant queue with stride-fair dequeue."""

    def __init__(
        self,
        capacity: int,
        workers: int = 1,
        max_inflight: int = 1,
    ) -> None:
        if capacity < 1:
            raise ServingError("admission capacity must be at least 1")
        if workers < 1:
            raise ServingError("worker count must be at least 1")
        if max_inflight < 1:
            raise ServingError("per-tenant in-flight limit must be at least 1")
        self.capacity = capacity
        self.workers = workers
        self.max_inflight = max_inflight
        self._condition = threading.Condition()
        self._scheduler = StrideScheduler()
        self._queues: Dict[str, Deque[Any]] = {}
        self._inflight: Dict[str, int] = {}
        self._depth = 0
        self._closed = False
        self._service_times: Deque[float] = deque(maxlen=SERVICE_TIME_WINDOW)

    # ------------------------------------------------------------------
    # registration and introspection
    # ------------------------------------------------------------------
    def register_tenant(self, tenant: str, weight: float) -> None:
        with self._condition:
            self._scheduler.register(tenant, weight)
            self._queues[tenant] = deque()
            self._inflight[tenant] = 0

    @property
    def depth(self) -> int:
        """Requests queued (not counting in-flight ones)."""
        with self._condition:
            return self._depth

    @property
    def inflight(self) -> int:
        with self._condition:
            return sum(self._inflight.values())

    def retry_after_estimate(self) -> float:
        """Expected seconds until a queue slot frees up.

        Backlog drains at roughly ``workers / avg service time`` per
        second; the estimate is one full-drain of the current backlog.
        Deliberately rough — its job is to spread retries out, not to
        promise a slot.
        """
        with self._condition:
            return self._retry_after_locked()

    def _retry_after_locked(self) -> float:
        if not self._service_times:
            return DEFAULT_RETRY_AFTER
        average = sum(self._service_times) / len(self._service_times)
        backlog = self._depth + sum(self._inflight.values())
        return max(DEFAULT_RETRY_AFTER, average * backlog / self.workers)

    # ------------------------------------------------------------------
    # the producer side
    # ------------------------------------------------------------------
    def offer(self, tenant: str, item: Any) -> None:
        """Enqueue, or raise :class:`AdmissionRejected` when full/closed."""
        with self._condition:
            if self._closed:
                raise AdmissionRejected("the service is shut down", 0.0)
            if tenant not in self._queues:
                raise ServingError(f"unknown tenant {tenant!r}")
            if self._depth >= self.capacity:
                raise AdmissionRejected(
                    f"admission queue full ({self.capacity} pending)",
                    self._retry_after_locked(),
                )
            queue = self._queues[tenant]
            if not queue and self._inflight[tenant] == 0:
                # Coming back from idle: no hoarded scheduling credit.
                busy = [
                    name
                    for name, pending in self._queues.items()
                    if pending or self._inflight[name]
                ]
                self._scheduler.reactivate(tenant, busy)
            queue.append(item)
            self._depth += 1
            self._condition.notify()

    # ------------------------------------------------------------------
    # the consumer side (service workers)
    # ------------------------------------------------------------------
    def _eligible(self) -> list:
        return [
            tenant
            for tenant, queue in self._queues.items()
            if queue and self._inflight[tenant] < self.max_inflight
        ]

    def take(self, timeout: Optional[float] = None) -> Optional[Tuple[str, Any]]:
        """Dequeue the fairest next request; None on timeout or shutdown.

        The caller MUST pair every successful take with a later
        :meth:`done` for the same tenant.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                if self._closed and self._depth == 0:
                    return None
                tenant = self._scheduler.pick(self._eligible())
                if tenant is not None:
                    item = self._queues[tenant].popleft()
                    self._depth -= 1
                    self._inflight[tenant] += 1
                    self._scheduler.on_dispatch(tenant)
                    return tenant, item
                if deadline is None:
                    self._condition.wait()
                else:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return None
                    self._condition.wait(remaining)

    def done(self, tenant: str, service_seconds: Optional[float] = None) -> None:
        """Release the tenant's in-flight slot (records service time)."""
        with self._condition:
            if self._inflight.get(tenant, 0) < 1:
                raise ServingError(
                    f"done() without a matching take() for tenant {tenant!r}"
                )
            self._inflight[tenant] -= 1
            if service_seconds is not None and service_seconds >= 0:
                self._service_times.append(service_seconds)
            self._condition.notify_all()

    def close(self, drain: bool = True) -> list:
        """Stop accepting offers; workers drain the backlog (or drop it).

        Returns the items dropped when ``drain`` is False (always empty
        otherwise) so the caller can fail their waiters instead of
        leaving them hanging.
        """
        dropped = []
        with self._condition:
            self._closed = True
            if not drain:
                for queue in self._queues.values():
                    dropped.extend(queue)
                    queue.clear()
                self._depth = 0
            self._condition.notify_all()
        return dropped

    def __repr__(self) -> str:
        with self._condition:
            return (
                f"AdmissionQueue({self._depth}/{self.capacity} queued, "
                f"{sum(self._inflight.values())} in flight, "
                f"{len(self._queues)} tenants)"
            )
