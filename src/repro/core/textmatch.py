"""The ``TextMatch`` relational expression.

Once documents have been fetched from the text system and materialized
as relational rows, remaining ``<column> in <field>`` predicates can be
evaluated locally (this is what makes RTP and post-text-join filtering
possible).  ``TextMatch`` implements exactly the text system's semantics
— the join value's word sequence must appear in the field — so that
locally-evaluated predicates agree with server-evaluated ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.errors import TypeMismatchError
from repro.relational.expressions import Expression
from repro.relational.row import Row
from repro.textsys.analysis import tokenize

__all__ = ["TextMatch", "value_matches_field"]


def value_matches_field(value: str, field_text: str) -> bool:
    """True when ``value``'s word sequence occurs in ``field_text``.

    Single-word values match any occurrence of the word; multi-word
    values match as a consecutive word sequence (the text system's
    phrase semantics).  Values with no indexable words never match.
    """
    needle = tokenize(value)
    if not needle:
        return False
    haystack = tokenize(field_text)
    width = len(needle)
    if width == 1:
        return needle[0] in haystack
    return any(
        haystack[start : start + width] == needle
        for start in range(len(haystack) - width + 1)
    )


@dataclass(frozen=True)
class TextMatch(Expression):
    """``value_column in field_column`` evaluated on relational rows.

    Both operands are expressions yielding strings; typically the left is
    a relation column (the join value) and the right a document
    pseudo-column holding a text field.
    """

    value: Expression
    field_text: Expression

    def evaluate(self, row: Row) -> Optional[bool]:
        value = self.value.evaluate(row)
        field_text = self.field_text.evaluate(row)
        if value is None or field_text is None:
            return None
        if not isinstance(value, str) or not isinstance(field_text, str):
            raise TypeMismatchError(
                f"TextMatch needs strings, got {value!r} and {field_text!r}"
            )
        return value_matches_field(value, field_text)

    def referenced_columns(self) -> FrozenSet[str]:
        return self.value.referenced_columns() | self.field_text.referenced_columns()

    def __repr__(self) -> str:
        return f"textmatch({self.value!r} in {self.field_text!r})"
