"""The text-join query model (Section 2.2/2.3).

A :class:`TextJoinQuery` is the single-foreign-join building block: a
conjunctive query over one stored relation and one external text source,
with

- an optional relational selection (``student.area = 'AI'``),
- zero or more **text selections** — constant predicates on the text
  source (``'belief update' in mercury.title``),
- one or more **foreign join predicates** — ``<relation column> in
  <text field>`` (``student.name in mercury.author``),
- a requested **result shape**: full join pairs, docids only (the query
  itself is a semi-join, as in Q2), or relation tuples only (semi-join of
  the relation by the text source, the reduction used inside multi-join
  plans).

Multi-join queries (Section 6) are modeled separately in
``repro.core.optimizer``; they embed ``TextJoinQuery``-style predicate
sets over several relations.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.relational.expressions import Expression
from repro.relational.row import Row
from repro.textsys.documents import Document

__all__ = [
    "TextSelection",
    "TextJoinPredicate",
    "VectorJoinPredicate",
    "ResultShape",
    "TextJoinQuery",
    "JoinedPair",
]


@dataclass(frozen=True)
class TextSelection:
    """A constant selection on the text source: ``'<term>' in <field>``.

    ``term`` is raw text — a word, a phrase, or a truncated word with a
    trailing ``?`` (the text system's basic-term forms).
    """

    term: str
    field: str

    def __post_init__(self) -> None:
        if not self.term:
            raise PlanError("text selection term must be non-empty")
        if not self.field:
            raise PlanError("text selection field must be non-empty")

    def __repr__(self) -> str:
        return f"'{self.term}' in {self.field}"


@dataclass(frozen=True)
class TextJoinPredicate:
    """A foreign join predicate: ``<relation column> in <text field>``."""

    column: str  # qualified relational column, e.g. 'student.name'
    field: str  # text field name, e.g. 'author'

    def __post_init__(self) -> None:
        if not self.column:
            raise PlanError("join predicate column must be non-empty")
        if not self.field:
            raise PlanError("join predicate field must be non-empty")

    def __repr__(self) -> str:
        return f"{self.column} in {self.field}"


@dataclass(frozen=True)
class VectorJoinPredicate:
    """A *ranked* foreign join predicate against a vector backend.

    ``<relation column> ~ <ranked field>``: each joining tuple's column
    value becomes a bag-of-words similarity query against the backend's
    ranked field, answered as the top-``k`` documents scoring strictly
    above ``threshold``.  Unlike :class:`TextJoinPredicate` this match
    is not monotone in the query terms (Section 8), so it gets its own
    strategy space (V-TOPK / V-SCAN) and never the Section 3 methods.
    """

    column: str  # qualified relational column, e.g. 'student.interests'
    field: str  # ranked text field name, e.g. 'abstract'
    top_k: Optional[int] = 10
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if not self.column:
            raise PlanError("vector join predicate column must be non-empty")
        if not self.field:
            raise PlanError("vector join predicate field must be non-empty")
        if self.top_k is not None and self.top_k < 1:
            raise PlanError("top_k must be positive when given")

    def __repr__(self) -> str:
        k = "all" if self.top_k is None else self.top_k
        return f"{self.column} ~ {self.field} (k={k}, t>{self.threshold!r})"


class ResultShape(enum.Enum):
    """What a text-join query must deliver."""

    PAIRS = "pairs"  # (relation tuple, document) join results
    DOCIDS = "docids"  # distinct matching docids (the query is a semi-join)
    TUPLES = "tuples"  # distinct relation tuples with at least one match


@dataclass(frozen=True)
class JoinedPair:
    """One join result: a relation tuple paired with a matching document."""

    row: Row
    document: Document

    def key(self) -> Tuple[Tuple[object, ...], str]:
        """A hashable identity for result comparison across join methods."""
        return (self.row.values, self.document.docid)


@dataclass(frozen=True)
class TextJoinQuery:
    """A conjunctive query joining one relation with the text source."""

    relation: str
    join_predicates: Tuple[TextJoinPredicate, ...]
    text_selections: Tuple[TextSelection, ...] = ()
    relation_predicate: Optional[Expression] = None
    shape: ResultShape = ResultShape.PAIRS
    long_form: bool = False  # retrieve full documents for PAIRS results?

    def __post_init__(self) -> None:
        if not self.relation:
            raise PlanError("query must name a relation")
        if not self.join_predicates:
            raise PlanError("a text-join query needs at least one join predicate")
        columns = [predicate.column for predicate in self.join_predicates]
        if len(set(columns)) != len(columns):
            raise PlanError("join predicates must be on distinct columns")
        if self.long_form and self.shape is not ResultShape.PAIRS:
            raise PlanError("long_form only applies to PAIRS-shaped queries")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    @property
    def join_columns(self) -> Tuple[str, ...]:
        """``K``: the relation columns appearing in join predicates."""
        return tuple(predicate.column for predicate in self.join_predicates)

    def predicate_on(self, column: str) -> TextJoinPredicate:
        """The join predicate over a given relation column."""
        for predicate in self.join_predicates:
            if predicate.column == column:
                return predicate
        raise PlanError(f"no join predicate on column {column!r}")

    def predicates_on(self, columns: Sequence[str]) -> Tuple[TextJoinPredicate, ...]:
        """The join predicates over a set of columns, in query order."""
        wanted = set(columns)
        missing = wanted - set(self.join_columns)
        if missing:
            raise PlanError(f"no join predicates on columns {sorted(missing)}")
        return tuple(
            predicate
            for predicate in self.join_predicates
            if predicate.column in wanted
        )

    def with_shape(self, shape: ResultShape) -> "TextJoinQuery":
        """A copy of this query requesting a different result shape."""
        long_form = self.long_form if shape is ResultShape.PAIRS else False
        return replace(self, shape=shape, long_form=long_form)

    def __repr__(self) -> str:
        parts = [f"from {self.relation}"]
        if self.relation_predicate is not None:
            parts.append(f"where {self.relation_predicate!r}")
        for selection in self.text_selections:
            parts.append(repr(selection))
        for predicate in self.join_predicates:
            parts.append(repr(predicate))
        return f"TextJoinQuery({'; '.join(parts)}; shape={self.shape.value})"
