"""Relational Text Processing (RTP) — Section 3.2.

A single search containing only the *text selection* conditions is sent
to the text system; the returned documents are then matched against the
relational tuples with SQL string processing on the relational side.

RTP requires text selections: without them the single search would be
unconstrained, and a Boolean text system cannot return "all documents".
It is attractive when the text selections are highly selective and the
invocation cost is high (one invocation versus N for TS).
"""

from __future__ import annotations

import time

from repro.core.joinmethods.base import (
    JoinContext,
    JoinMethod,
    MethodExecution,
    finalize_execution,
    joining_rows,
    rtp_fields_available,
    rtp_match_pairs,
    selection_nodes,
)
from repro.core.query import TextJoinQuery
from repro.textsys.query import and_all

__all__ = ["RelationalTextProcessing"]


class RelationalTextProcessing(JoinMethod):
    """The RTP join method: one selection-only search, then SQL matching."""

    name = "RTP"

    def applicable(self, query: TextJoinQuery, context: JoinContext) -> bool:
        """RTP needs a text selection to bound the search, and every join
        predicate's field must be visible in the short form so SQL string
        matching can evaluate it."""
        return bool(query.text_selections) and rtp_fields_available(
            context, query.join_predicates
        )

    def execute(self, query: TextJoinQuery, context: JoinContext) -> MethodExecution:
        self.check_applicable(query, context)
        started_at = time.perf_counter()
        ledger_before = context.client.ledger.snapshot()

        with context.client.trace_phase("RTP"):
            rows = joining_rows(context, query)
            result = context.client.search(and_all(selection_nodes(query)))

            # SQL string matching of every fetched document against every
            # joining tuple; each (document, tuple) comparison costs c_a.
            pairs = rtp_match_pairs(
                context, list(result), rows, query.join_predicates
            )

        return finalize_execution(
            self.name, query, context, pairs, ledger_before, started_at
        )
