"""Shared machinery for the foreign-join methods of Section 3.

Every join method consumes a :class:`JoinContext` (the catalog plus the
metered text client) and a :class:`~repro.core.query.TextJoinQuery`, and
produces a :class:`MethodExecution` carrying the results in the query's
requested shape together with the cost-ledger delta attributable to the
method.

The helpers here encode the semantics all methods must share so that
they return identical results:

- tuples whose join columns contain NULL never join (SQL semantics);
- an instantiated join predicate turns the column value into the text
  system's basic term for that value (word or phrase, via ``make_term``);
- relational text processing (:func:`rtp_match`) checks a join value
  against a fetched document using the *same* word-level semantics as
  the text system, implemented with SQL-style string matching on the
  relational side.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.query import (
    JoinedPair,
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
)
from repro.errors import JoinMethodError, OptimizationError
from repro.gateway.client import TextClient
from repro.gateway.costs import CostLedger
from repro.relational.catalog import Catalog
from repro.relational.row import Row
from repro.textsys.analysis import tokenize
from repro.textsys.documents import Document
from repro.textsys.engine import matches_document
from repro.textsys.parser import term_node
from repro.textsys.query import SearchNode, data_term

__all__ = [
    "JoinContext",
    "MethodExecution",
    "JoinMethod",
    "ensure_method_legal",
    "effective_term_limit",
    "joining_rows",
    "selection_node",
    "selection_nodes",
    "instantiate_predicates",
    "group_by_columns",
    "rtp_fields_available",
    "rtp_match",
    "rtp_match_pairs",
    "finalize_execution",
]


@dataclass
class JoinContext:
    """Everything a join method needs to run: data plus the text gateway.

    ``materialized`` registers intermediate results under pseudo-relation
    names so that multi-join plans can run a foreign-join method over the
    output of earlier joins (the relation named by a
    :class:`~repro.core.query.TextJoinQuery` is looked up here first,
    then in the catalog).

    ``degradation`` is an optional :class:`~repro.remote.resilience.
    DegradationPolicy` (duck-typed to keep the core free of remote
    imports): when the text source is reached over an unreliable
    transport, the SJ-family methods shrink their batch capacity through
    it and the executor may fall back from SJ to TS (see
    :func:`effective_term_limit`).  ``None`` — the default — changes
    nothing.
    """

    catalog: Catalog
    client: TextClient
    materialized: Dict[str, List[Row]] = field(default_factory=dict)
    degradation: Optional[Any] = None


@dataclass
class MethodExecution:
    """The outcome of running one join method on one query."""

    method: str
    shape: ResultShape
    pairs: List[JoinedPair] = field(default_factory=list)
    docids: List[str] = field(default_factory=list)
    tuples: List[Row] = field(default_factory=list)
    cost: CostLedger = field(default_factory=CostLedger)
    wall_seconds: float = 0.0

    @property
    def simulated_seconds(self) -> float:
        """Total simulated cost charged by the method."""
        return self.cost.total

    def result_keys(self) -> frozenset:
        """A canonical, shape-appropriate identity set for the results."""
        if self.shape is ResultShape.PAIRS:
            return frozenset(pair.key() for pair in self.pairs)
        if self.shape is ResultShape.DOCIDS:
            return frozenset(self.docids)
        return frozenset(row.values for row in self.tuples)

    def __repr__(self) -> str:
        sizes = {
            ResultShape.PAIRS: len(self.pairs),
            ResultShape.DOCIDS: len(self.docids),
            ResultShape.TUPLES: len(self.tuples),
        }
        return (
            f"MethodExecution({self.method}, {sizes[self.shape]} "
            f"{self.shape.value}, cost={self.cost.total:.3f}s)"
        )


class JoinMethod:
    """Base class for the foreign-join methods (TS, RTP, SJ, P+TS, ...)."""

    #: Short name used in tables and plan annotations ("TS", "P+TS", ...).
    name: str = "?"

    #: The predicate semantics this method is sound under.  Every method
    #: of Section 3 assumes the Boolean model: probe-based pruning and
    #: semijoin term-subset batching rely on query *monotonicity* (more
    #: terms can only shrink the answer), which ranking backends violate
    #: (Section 8) — adding a term can ADD answers under cosine top-k.
    source_kind: str = "boolean"

    def applicable(self, query: TextJoinQuery, context: JoinContext) -> bool:
        """Can this method evaluate this query at all?"""
        raise NotImplementedError

    def check_applicable(self, query: TextJoinQuery, context: JoinContext) -> None:
        ensure_method_legal(self, getattr(context.client, "source_kind", "boolean"))
        if not self.applicable(query, context):
            raise JoinMethodError(f"{self.name} is not applicable to {query!r}")

    def execute(self, query: TextJoinQuery, context: JoinContext) -> MethodExecution:
        """Run the method; must call :meth:`check_applicable` first."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


# ----------------------------------------------------------------------
# shared building blocks
# ----------------------------------------------------------------------
def ensure_method_legal(method: "JoinMethod", source_kind: str) -> None:
    """Refuse to run a method against a backend it is unsound for.

    Per-backend method legality (DESIGN invariant 15's soundness side):
    a probe-based or semijoin method forced — via an explicit method
    override — against a non-Boolean source would silently drop answers
    that ranking semantics can add, so the mismatch is a typed
    :class:`~repro.errors.OptimizationError`, never a wrong answer.
    """
    required = getattr(method, "source_kind", "boolean")
    if source_kind != required:
        raise OptimizationError(
            f"{method.name} assumes a {required!r} source (its pruning "
            f"relies on Boolean monotonicity, Section 8); this backend is "
            f"{source_kind!r}"
        )


def effective_term_limit(context: JoinContext) -> int:
    """The per-search term budget available right now.

    Normally the server's published ``M``; while the context's
    degradation policy reports the source degraded, a smaller budget, so
    OR-batched semi-join searches lose less work when a frame fails and
    must be retried.
    """
    limit = context.client.term_limit
    if context.degradation is not None:
        limit = context.degradation.effective_term_limit(limit)
    return limit


def joining_rows(context: JoinContext, query: TextJoinQuery) -> List[Row]:
    """The joining relation: base table or materialized intermediate,
    after the query's local selection."""
    if query.relation in context.materialized:
        source = context.materialized[query.relation]
    else:
        source = context.catalog.table(query.relation).scan()
    predicate = query.relation_predicate
    rows = []
    for row in source:
        if predicate is None or predicate.evaluate(row) is True:
            rows.append(row)
    return rows


def selection_node(selection: TextSelection) -> SearchNode:
    """The search node for one text selection (word/phrase/truncation/near)."""
    return term_node(selection.field, selection.term)


def selection_nodes(query: TextJoinQuery) -> List[SearchNode]:
    """Search nodes for every text selection of the query."""
    return [selection_node(selection) for selection in query.text_selections]


def instantiate_predicates(
    predicates: Sequence[TextJoinPredicate], row: Row
) -> Optional[List[SearchNode]]:
    """Instantiate join predicates with one tuple's values.

    Returns ``None`` when any join value is NULL or contains no indexable
    word — such tuples can never join (and the text system could not even
    express the search).
    """
    nodes: List[SearchNode] = []
    for predicate in predicates:
        value = row[predicate.column]
        if value is None:
            return None
        text = str(value)
        if not tokenize(text):
            return None
        nodes.append(data_term(predicate.field, text))
    return nodes


def group_by_columns(
    rows: Sequence[Row], columns: Sequence[str]
) -> "Dict[Tuple[object, ...], List[Row]]":
    """Group tuples by their projection on ``columns`` (insertion order)."""
    groups: Dict[Tuple[object, ...], List[Row]] = {}
    for row in rows:
        key = tuple(row[column] for column in columns)
        groups.setdefault(key, []).append(row)
    return groups


def rtp_fields_available(
    context: JoinContext, predicates: Sequence[TextJoinPredicate]
) -> bool:
    """Can relational text processing see these predicates' fields?

    RTP-family methods string-match join values against *short-form*
    documents; a predicate whose field the short form does not carry
    cannot be evaluated relationally (the paper's applicability
    condition: "when the text predicates … are on short structured
    fields").  This is why "only two methods are universally applicable:
    TS and P+TS" (Section 7.2).
    """
    short_fields = set(context.client.server.store.short_fields)
    return all(predicate.field in short_fields for predicate in predicates)


def rtp_match(
    row: Row, document: Document, predicates: Sequence[TextJoinPredicate]
) -> bool:
    """Relational text processing: check join predicates with SQL strings.

    The check reproduces the text system's word-level match (a value
    matches when its word sequence appears in the document field), which
    is the situation in which the paper considers RTP applicable — the
    SQL string processing and the text-system predicate agree.
    """
    for predicate in predicates:
        value = row[predicate.column]
        if value is None:
            return False
        text = str(value)
        if not tokenize(text):
            return False
        if not matches_document(document, data_term(predicate.field, text)):
            return False
    return True


def rtp_match_pairs(
    context: JoinContext,
    documents: Sequence[Document],
    rows: Sequence[Row],
    predicates: Sequence[TextJoinPredicate],
) -> List[JoinedPair]:
    """The RTP phase shared by every fetch-then-match method.

    Charges ``c_a`` for every document × row comparison, then string-
    matches each pair against ``predicates``, returning the joined pairs
    in document-major order (the order all RTP-family methods produce).
    """
    context.client.charge_rtp(len(documents) * len(rows))
    pairs: List[JoinedPair] = []
    for document in documents:
        for row in rows:
            if rtp_match(row, document, predicates):
                pairs.append(JoinedPair(row, document))
    return pairs


def finalize_execution(
    method: str,
    query: TextJoinQuery,
    context: JoinContext,
    pairs: List[JoinedPair],
    ledger_before: CostLedger,
    started_at: float,
) -> MethodExecution:
    """Shape the raw join pairs into the query's requested result form.

    For long-form PAIRS queries the distinct matching documents are
    retrieved (each charged ``c_l``) and substituted into the pairs —
    mirroring the real system where searches return short forms and full
    documents are fetched by docid.
    """
    # Deduplicate pairs while preserving order.
    seen = set()
    unique_pairs: List[JoinedPair] = []
    for pair in pairs:
        key = pair.key()
        if key in seen:
            continue
        seen.add(key)
        unique_pairs.append(pair)

    execution = MethodExecution(method=method, shape=query.shape)
    if query.shape is ResultShape.PAIRS:
        if query.long_form:
            long_forms: Dict[str, Document] = {}
            for pair in unique_pairs:
                docid = pair.document.docid
                if docid not in long_forms:
                    long_forms[docid] = context.client.retrieve(docid)
            unique_pairs = [
                JoinedPair(pair.row, long_forms[pair.document.docid])
                for pair in unique_pairs
            ]
        execution.pairs = unique_pairs
    elif query.shape is ResultShape.DOCIDS:
        docids: List[str] = []
        seen_docids = set()
        for pair in unique_pairs:
            if pair.document.docid in seen_docids:
                continue
            seen_docids.add(pair.document.docid)
            docids.append(pair.document.docid)
        execution.docids = docids
    else:  # TUPLES
        tuples: List[Row] = []
        seen_rows = set()
        for pair in unique_pairs:
            if pair.row.values in seen_rows:
                continue
            seen_rows.add(pair.row.values)
            tuples.append(pair.row)
        execution.tuples = tuples

    execution.cost = context.client.ledger.diff(ledger_before)
    execution.wall_seconds = time.perf_counter() - started_at
    return execution
