"""Join strategies for ranked (vector-space) text backends.

The Section 3 method space is unsound against a ranking source (its
pruning relies on Boolean monotonicity — see
:func:`~repro.core.joinmethods.base.ensure_method_legal`), so a
:class:`~repro.core.query.VectorJoinPredicate` gets its own, smaller
strategy space:

- :class:`VectorTopKProbe` (**V-TOPK**) — one ranked search per distinct
  non-NULL binding, the tuple-substitution analogue.  Always applicable.
- :class:`VectorCorpusScan` (**V-SCAN**) — one corpus-dump search (empty
  query, negative threshold: every document at score 0), then score each
  binding *locally* against the dumped short forms, charging ``c_a`` per
  (document, binding) pair — the RTP analogue, applicable only when the
  ranked field travels in short-form results.

Both strategies return the same ranked matches for the same bindings:
the local engine V-SCAN builds from the dump covers the full collection,
so its idf/norms — and therefore scores, ordering and truncation — are
identical to the server's.  Only the cost profile differs, which is what
the heterogeneous planner prices.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.joinmethods.base import JoinContext, joining_rows
from repro.core.query import TextJoinQuery, VectorJoinPredicate
from repro.errors import JoinMethodError
from repro.gateway.costs import CostLedger
from repro.relational.row import Row
from repro.textsys.analysis import tokenize
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.vector import ScoredDocument, VectorQuery, VectorSpaceEngine

__all__ = [
    "VectorExecution",
    "VectorJoinStrategy",
    "VectorTopKProbe",
    "VectorCorpusScan",
    "vector_joining_rows",
]


@dataclass
class VectorExecution:
    """The outcome of running one vector join strategy.

    ``row_matches`` pairs every joining tuple with its ranked matches
    (best first; empty for tuples whose binding is NULL or has no
    indexable word).  ``cost`` is the ledger delta attributable to the
    strategy, priced with the *vector backend's* constants.
    """

    method: str
    row_matches: List[Tuple[Row, Tuple[ScoredDocument, ...]]] = field(
        default_factory=list
    )
    cost: CostLedger = field(default_factory=CostLedger)
    searches: int = 0
    wall_seconds: float = 0.0

    @property
    def simulated_seconds(self) -> float:
        return self.cost.total

    def matched_rows(self) -> List[Row]:
        """The tuples with at least one ranked match, in input order."""
        return [row for row, matches in self.row_matches if matches]

    def result_keys(self) -> frozenset:
        """Canonical identity: ``(tuple values, docid)`` match pairs."""
        return frozenset(
            (row.values, entry.docid)
            for row, matches in self.row_matches
            for entry in matches
        )

    def __repr__(self) -> str:
        matched = sum(1 for _, matches in self.row_matches if matches)
        return (
            f"VectorExecution({self.method}, {matched}/"
            f"{len(self.row_matches)} tuples matched, "
            f"cost={self.cost.total:.3f}s)"
        )


def vector_joining_rows(
    context: JoinContext, relation: str, base_query: Optional[TextJoinQuery] = None
) -> List[Row]:
    """The joining tuples for a vector predicate's relation.

    Reuses the Boolean machinery when a base query is given (so both
    halves of a heterogeneous plan see the same relational selection);
    otherwise scans the named relation or materialized intermediate.
    """
    if base_query is not None:
        return joining_rows(context, base_query)
    if relation in context.materialized:
        return list(context.materialized[relation])
    return context.catalog.table(relation).scan()


def _binding(row: Row, predicate: VectorJoinPredicate) -> Optional[str]:
    """A tuple's query text, or ``None`` when it cannot match anything."""
    value = row[predicate.column]
    if value is None:
        return None
    text = str(value)
    if not tokenize(text):
        return None
    return text


class VectorJoinStrategy:
    """Base class for the ranked-predicate strategies."""

    name: str = "?"
    #: These strategies are only meaningful against a ranking backend —
    #: the legality check is symmetric (a Boolean server cannot answer a
    #: VectorQuery either).
    source_kind: str = "vector"

    def applicable(
        self, predicate: VectorJoinPredicate, context: JoinContext
    ) -> bool:
        raise NotImplementedError

    def check_applicable(
        self, predicate: VectorJoinPredicate, context: JoinContext
    ) -> None:
        kind = getattr(context.client, "source_kind", "boolean")
        if kind != self.source_kind:
            raise JoinMethodError(
                f"{self.name} runs against a {self.source_kind!r} backend; "
                f"this client serves a {kind!r} source"
            )
        if not self.applicable(predicate, context):
            raise JoinMethodError(
                f"{self.name} is not applicable to {predicate!r}"
            )

    def run(
        self,
        predicate: VectorJoinPredicate,
        rows: Sequence[Row],
        context: JoinContext,
    ) -> VectorExecution:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class VectorTopKProbe(VectorJoinStrategy):
    """V-TOPK: one ranked search per distinct binding (the TS analogue).

    Each distinct binding travels once (duplicate bindings share the
    answer, like distinct-only TS), charged ``c_i + c_p I + c_s |result|``
    by the gateway from the server's own counts.
    """

    name = "V-TOPK"

    def applicable(
        self, predicate: VectorJoinPredicate, context: JoinContext
    ) -> bool:
        return True

    def run(
        self,
        predicate: VectorJoinPredicate,
        rows: Sequence[Row],
        context: JoinContext,
    ) -> VectorExecution:
        self.check_applicable(predicate, context)
        started = time.perf_counter()
        client = context.client
        before = client.ledger.snapshot()
        answers: Dict[str, Tuple[ScoredDocument, ...]] = {}
        searches = 0
        row_matches: List[Tuple[Row, Tuple[ScoredDocument, ...]]] = []
        with client.trace_phase(self.name):
            for row in rows:
                text = _binding(row, predicate)
                if text is None:
                    row_matches.append((row, ()))
                    continue
                if text not in answers:
                    result = client.search(
                        VectorQuery(
                            predicate.field,
                            (text,),
                            top_k=predicate.top_k,
                            threshold=predicate.threshold,
                        )
                    )
                    answers[text] = tuple(
                        ScoredDocument(docid, score)
                        for docid, score in zip(result.docids, result.scores)
                    )
                    searches += 1
                row_matches.append((row, answers[text]))
        return VectorExecution(
            method=self.name,
            row_matches=row_matches,
            cost=client.ledger.diff(before),
            searches=searches,
            wall_seconds=time.perf_counter() - started,
        )


class VectorCorpusScan(VectorJoinStrategy):
    """V-SCAN: dump the corpus once, score every binding locally.

    One empty-query search at a negative threshold transmits every short
    form (score 0, no postings); a local :class:`VectorSpaceEngine` is
    rebuilt from the dump and answers each distinct binding for ``c_a``
    per document (charged through :meth:`TextClient.charge_rtp`).  The
    dump covers the full collection, so the local engine's statistics —
    and therefore its scores and rankings — are identical to the
    server's, and V-SCAN returns exactly V-TOPK's matches.

    Applicable only when the ranked field is short-form visible
    (otherwise the dump carries nothing to score against), mirroring the
    RTP applicability condition.
    """

    name = "V-SCAN"

    def applicable(
        self, predicate: VectorJoinPredicate, context: JoinContext
    ) -> bool:
        return predicate.field in context.client.server.store.short_fields

    def run(
        self,
        predicate: VectorJoinPredicate,
        rows: Sequence[Row],
        context: JoinContext,
    ) -> VectorExecution:
        self.check_applicable(predicate, context)
        started = time.perf_counter()
        client = context.client
        before = client.ledger.snapshot()
        with client.trace_phase(self.name):
            dump = client.search(
                VectorQuery(predicate.field, (), top_k=None, threshold=-1.0)
            )
            local = DocumentStore(
                (predicate.field,), short_fields=(predicate.field,)
            )
            for document in dump.documents:
                local.add(
                    Document(
                        document.docid,
                        {predicate.field: document.field(predicate.field)},
                    )
                )
            engine = VectorSpaceEngine(local, predicate.field)
            answers: Dict[str, Tuple[ScoredDocument, ...]] = {}
            row_matches: List[Tuple[Row, Tuple[ScoredDocument, ...]]] = []
            for row in rows:
                text = _binding(row, predicate)
                if text is None:
                    row_matches.append((row, ()))
                    continue
                if text not in answers:
                    client.charge_rtp(len(local))
                    answers[text] = tuple(
                        engine.search(
                            (text,),
                            top_k=predicate.top_k,
                            threshold=predicate.threshold,
                        )
                    )
                row_matches.append((row, answers[text]))
        return VectorExecution(
            method=self.name,
            row_matches=row_matches,
            cost=client.ledger.diff(before),
            searches=1,
            wall_seconds=time.perf_counter() - started,
        )
