"""Batched tuple substitution (B+TS) — the Section 8 extension, realized.

Ordinary TS pays one invocation per distinct joining tuple.  When the
text system accepts multiple queries per invocation *and returns answers
in correspondence* (:class:`~repro.textsys.batching.BatchingTextServer`),
the same per-tuple searches can travel ``batch_limit`` at a time:
invocation cost drops by that factor while — unlike the OR-batched
semi-join — the tuple ↔ answer correspondence survives, so no relational
re-matching (and no ``c_a``) is needed.

A probing variant (``probe_columns``) composes the Section 3.3 pruning
with batching: probes are batched too.
"""

from __future__ import annotations

import time
from typing import List, Optional

from repro.core.joinmethods.base import (
    JoinContext,
    JoinMethod,
    MethodExecution,
    finalize_execution,
    group_by_columns,
    instantiate_predicates,
    joining_rows,
    selection_nodes,
)
from repro.core.costmodel import CostEstimate, QueryCostInputs
from repro.core.query import JoinedPair, TextJoinQuery
from repro.relational.row import Row
from repro.textsys.query import and_all

__all__ = ["BatchedTupleSubstitution", "cost_batched_ts"]


def _batches(items: list, size: int) -> List[list]:
    return [items[start : start + size] for start in range(0, len(items), size)]


class BatchedTupleSubstitution(JoinMethod):
    """B+TS: one invocation carries up to ``batch_limit`` tuple searches."""

    def __init__(self, batch_limit: Optional[int] = None) -> None:
        if batch_limit is not None and batch_limit < 1:
            raise ValueError("batch_limit must be positive when given")
        self.batch_limit = batch_limit

    @property
    def name(self) -> str:
        return "B+TS"

    def applicable(self, query: TextJoinQuery, context: JoinContext) -> bool:
        """Needs a server with a batched invocation interface."""
        return hasattr(context.client.server, "search_batch")

    def execute(self, query: TextJoinQuery, context: JoinContext) -> MethodExecution:
        self.check_applicable(query, context)
        started_at = time.perf_counter()
        ledger_before = context.client.ledger.snapshot()

        rows = joining_rows(context, query)
        selections = selection_nodes(query)
        limit = self.batch_limit or context.client.server.batch_limit
        limit = min(limit, context.client.server.batch_limit)

        groups: List[List[Row]] = []
        searches = []
        for key, group in group_by_columns(rows, query.join_columns).items():
            instantiated = instantiate_predicates(
                query.join_predicates, group[0]
            )
            if instantiated is None:
                continue
            groups.append(group)
            searches.append(and_all(selections + instantiated))

        pairs: List[JoinedPair] = []
        with context.client.trace_phase("TS"):
            for start in range(0, len(searches), limit):
                batch = searches[start : start + limit]
                batch_groups = groups[start : start + limit]
                results = context.client.search_batch(batch)
                for group, result in zip(batch_groups, results):
                    for document in result:
                        for row in group:
                            pairs.append(JoinedPair(row, document))

        return finalize_execution(
            self.name, query, context, pairs, ledger_before, started_at
        )


def cost_batched_ts(
    inputs: QueryCostInputs,
    query: TextJoinQuery,
    batch_limit: int,
) -> CostEstimate:
    """``C_{B+TS}``: TS with invocations divided by the batch size.

    ``C = c_i ceil(N_K / B) + c_p I(N_K, K) + c_s V(N_K, K)`` — only the
    invocation term changes relative to ``C_TS``.
    """
    import math

    columns = query.join_columns
    n = inputs.distinct(columns)
    constants = inputs.constants
    invocations = math.ceil(n / batch_limit) if n > 0 else 0
    from repro.core.costmodel import _long_form_cost

    return CostEstimate(
        method="B+TS",
        searches=invocations,
        invocation=constants.invocation * invocations,
        processing=constants.per_posting * n * inputs.postings_per_search(columns),
        transmission_short=constants.short_form * inputs.total_documents(n, columns),
        transmission_long=_long_form_cost(inputs, query),
    )
