"""Tuple substitution (TS) — Section 3.1.

The traditional method: a nested loop join with the relation as the
outer operand.  Every tuple is instantiated into a conjunctive search on
the text system (join values become selection terms).  Following the
paper's refinement, only one search is sent per *distinct* projection of
the relation over the join columns ("we need only send a query for each
distinct tuple in the projection of the relational table over the join
columns"); the naive one-search-per-tuple variant is available with
``distinct_only=False`` for the ablation benchmarks.
"""

from __future__ import annotations

import time
from typing import List

from repro.core.joinmethods.base import (
    JoinContext,
    JoinMethod,
    MethodExecution,
    finalize_execution,
    group_by_columns,
    instantiate_predicates,
    joining_rows,
    selection_nodes,
)
from repro.core.query import JoinedPair, TextJoinQuery
from repro.textsys.query import and_all

__all__ = ["TupleSubstitution"]


class TupleSubstitution(JoinMethod):
    """The TS join method (nested loop with instantiated text searches)."""

    def __init__(self, distinct_only: bool = True) -> None:
        self.distinct_only = distinct_only

    @property
    def name(self) -> str:
        return "TS" if self.distinct_only else "TS(naive)"

    def applicable(self, query: TextJoinQuery, context: JoinContext) -> bool:
        """TS is universally applicable (Section 7.2)."""
        return True

    def execute(self, query: TextJoinQuery, context: JoinContext) -> MethodExecution:
        self.check_applicable(query, context)
        started_at = time.perf_counter()
        ledger_before = context.client.ledger.snapshot()

        rows = joining_rows(context, query)
        selections = selection_nodes(query)
        pairs: List[JoinedPair] = []

        if self.distinct_only:
            groups = group_by_columns(rows, query.join_columns)
            work = groups.values()
        else:
            work = [[row] for row in rows]

        with context.client.trace_phase("TS"):
            for group in work:
                representative = group[0]
                instantiated = instantiate_predicates(
                    query.join_predicates, representative
                )
                if instantiated is None:
                    # NULL or unindexable join value: the tuple cannot join
                    # and the search cannot even be expressed; no invocation.
                    continue
                result = context.client.search(
                    and_all(selections + instantiated)
                )
                for document in result:
                    for row in group:
                        pairs.append(JoinedPair(row, document))

        return finalize_execution(
            self.name, query, context, pairs, ledger_before, started_at
        )
