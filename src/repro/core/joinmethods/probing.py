"""Probing-based join methods (P+TS, P+RTP, probe-as-semi-join) — Section 3.3.

A *probe* on a column set ``P`` is the query obtained by removing all
join predicates except those on ``P`` (text selections stay), asking only
whether any document matches.  If the probe instantiated with tuple ``t``
fails, every tuple agreeing with ``t`` on ``P`` yields a fail-query — so
one cheap probe can prune many expensive full searches.

Three methods live here:

- :class:`ProbeTupleSubstitution` (P+TS) — the paper's cache-based
  algorithm: run the full instantiated search first; after a *failure*,
  send the probe (unless cached) so future tuples in the same probe
  group are skipped.
- :class:`ProbeRtp` (P+RTP) — one probe per distinct probe-group; the
  probe's own short-form result set supplies the documents, which are
  matched against the group's tuples relationally for the remaining
  join predicates (Example 3.6).
- :class:`ProbeSemiJoin` — probing alone, "adequate for a semi-join of
  the relation with the text".  With ``probe_columns`` = all join
  columns it computes the exact semi-join; with a proper subset it is
  the *reducer* used between relational joins in PrL trees (its output
  is a superset of the true semi-join, filtered later at the text-join
  node).
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.joinmethods.base import (
    JoinContext,
    JoinMethod,
    MethodExecution,
    finalize_execution,
    group_by_columns,
    instantiate_predicates,
    joining_rows,
    rtp_fields_available,
    rtp_match_pairs,
    selection_nodes,
)
from repro.core.query import JoinedPair, ResultShape, TextJoinQuery
from repro.errors import JoinMethodError, PlanError
from repro.relational.row import Row
from repro.textsys.query import and_all

__all__ = ["ProbeCache", "ProbeTupleSubstitution", "ProbeRtp", "ProbeSemiJoin"]


class ProbeCache:
    """Remembers past probe outcomes for one query execution.

    Keyed by the tuple's projection over the probing columns; ensures no
    duplicate probe is ever sent (Section 3.3's cache).
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[object, ...], bool] = {}
        self.hits = 0
        self.misses = 0

    def get(self, key: Tuple[object, ...]) -> Optional[bool]:
        if key in self._entries:
            self.hits += 1
            return self._entries[key]
        self.misses += 1
        return None

    def put(self, key: Tuple[object, ...], success: bool) -> None:
        self._entries[key] = success

    def __len__(self) -> int:
        return len(self._entries)


def _validate_probe_columns(
    query: TextJoinQuery, probe_columns: Sequence[str]
) -> Tuple[str, ...]:
    columns = tuple(probe_columns)
    if not columns:
        raise PlanError("probe_columns must be non-empty")
    unknown = set(columns) - set(query.join_columns)
    if unknown:
        raise PlanError(
            f"probe columns {sorted(unknown)} are not join columns of the query"
        )
    if len(set(columns)) != len(columns):
        raise PlanError("probe columns must be distinct")
    return columns


def _method_label(base: str, probe_columns: Tuple[str, ...]) -> str:
    bare = ",".join(column.split(".")[-1] for column in probe_columns)
    return f"P({bare})+{base}" if base else f"P({bare})"


class ProbeTupleSubstitution(JoinMethod):
    """P+TS: tuple substitution with probe-cached fail-query avoidance.

    Two execution orders are provided:

    - ``probe_first=True`` (default): for each new probe group, send the
      probe first and run full searches only for groups whose probe
      succeeded.  This matches the Section 4.3 cost formula exactly —
      ``C_P (one probe per distinct probe group) + c_i R`` full searches.
    - ``probe_first=False``: the Section 3.3 pseudo-code order — run the
      full instantiated search first and send a probe only after a
      failure (saving the probe for groups that succeed immediately, at
      the price of one wasted full search per failing probe group).
    """

    def __init__(
        self,
        probe_columns: Sequence[str],
        probe_first: bool = True,
        exploit_grouping: bool = False,
    ) -> None:
        self.probe_columns = tuple(probe_columns)
        self.probe_first = probe_first
        #: Section 3.3's ordered-relation refinement: when the relation is
        #: grouped by the probing columns, "a probe is sent only if there
        #: is at least another tuple in the relation with the same values
        #: in the probing columns as the tuple which resulted in a
        #: fail-query" — a singleton group's failed full query already
        #: answers everything, so its probe would be pure waste.  Only
        #: meaningful with ``probe_first=False``.
        self.exploit_grouping = exploit_grouping

    @property
    def name(self) -> str:
        return _method_label("TS", self.probe_columns)

    def applicable(self, query: TextJoinQuery, context: JoinContext) -> bool:
        """Probing needs the probe columns to be a subset of the join columns.

        Probing pays off when there are *multiple* join predicates (so the
        probe is cheaper/more general than the full query); with
        ``probe_columns`` equal to all join columns it degenerates to TS
        with extra bookkeeping, which the optimizer never picks but which
        remains correct.
        """
        try:
            _validate_probe_columns(query, self.probe_columns)
        except PlanError:
            return False
        return True

    def execute(self, query: TextJoinQuery, context: JoinContext) -> MethodExecution:
        self.check_applicable(query, context)
        probe_columns = _validate_probe_columns(query, self.probe_columns)
        started_at = time.perf_counter()
        ledger_before = context.client.ledger.snapshot()

        rows = joining_rows(context, query)
        selections = selection_nodes(query)
        probe_predicates = query.predicates_on(probe_columns)
        cache = ProbeCache()
        pairs: List[JoinedPair] = []

        # For the grouped-relation refinement: how many distinct full
        # substitutions share each probe key?  A probe can only pay off
        # when that count exceeds one.
        groups = group_by_columns(rows, query.join_columns)
        probe_key_spread: Dict[Tuple[object, ...], int] = {}
        if self.exploit_grouping:
            for group in groups.values():
                spread_key = tuple(
                    group[0][column] for column in probe_columns
                )
                probe_key_spread[spread_key] = (
                    probe_key_spread.get(spread_key, 0) + 1
                )

        with context.client.trace_phase("probe"):
            for key, group in groups.items():
                representative = group[0]
                probe_key = tuple(
                    representative[column] for column in probe_columns
                )

                # A cached fail entry prunes the group outright.
                if cache.get(probe_key) is False:
                    continue

                instantiated = instantiate_predicates(
                    query.join_predicates, representative
                )
                if instantiated is None:
                    continue

                if self.probe_first and cache.get(probe_key) is None:
                    probe_nodes = instantiate_predicates(
                        probe_predicates, representative
                    )
                    if probe_nodes is None:
                        continue
                    probe_success = context.client.probe(
                        and_all(selections + probe_nodes)
                    )
                    cache.put(probe_key, probe_success)
                    if not probe_success:
                        continue

                # Instantiate the full query, as in tuple substitution.
                with context.client.trace_phase("TS"):
                    result = context.client.search(
                        and_all(selections + instantiated)
                    )
                if not result.is_empty:
                    for document in result:
                        for row in group:
                            pairs.append(JoinedPair(row, document))
                    # A successful full query marks the probe entry success
                    # — no probe needs to be sent.
                    cache.put(probe_key, True)
                    continue

                # The full query failed.  Send the probe only if no entry
                # exists yet, so no duplicate probes are generated.
                if cache.get(probe_key) is not None:
                    continue
                if (
                    self.exploit_grouping
                    and probe_key_spread.get(probe_key, 0) <= 1
                ):
                    # No other substitution shares this probe key: the
                    # probe could prune nothing (the grouped refinement).
                    continue
                probe_nodes = instantiate_predicates(
                    probe_predicates, representative
                )
                if probe_nodes is None:
                    continue
                probe_success = context.client.probe(
                    and_all(selections + probe_nodes)
                )
                cache.put(probe_key, probe_success)

        return finalize_execution(
            self.name, query, context, pairs, ledger_before, started_at
        )


class ProbeRtp(JoinMethod):
    """P+RTP: probes double as semi-join fetches, then relational matching.

    One probe is sent per distinct probe-group.  A successful probe's
    short-form result set is exactly the documents matching the text
    selections plus the probe-column predicates for that group; the
    remaining join predicates are then evaluated with SQL string matching
    against the group's tuples.

    ``fetch_cap`` is the runtime guard discussed at the end of Section 5:
    if the selectivity/fanout estimates were unreliable and a probe
    fetches more documents than the cap, the method aborts with
    :class:`JoinMethodError` so a re-optimization can pick another plan.
    """

    def __init__(
        self, probe_columns: Sequence[str], fetch_cap: Optional[int] = None
    ) -> None:
        self.probe_columns = tuple(probe_columns)
        if fetch_cap is not None and fetch_cap < 1:
            raise PlanError("fetch_cap must be positive when given")
        self.fetch_cap = fetch_cap

    @property
    def name(self) -> str:
        return _method_label("RTP", self.probe_columns)

    def applicable(self, query: TextJoinQuery, context: JoinContext) -> bool:
        try:
            _validate_probe_columns(query, self.probe_columns)
        except PlanError:
            return False
        # Only the non-probe predicates are string-matched relationally;
        # their fields must be visible in the short form.
        remaining = tuple(
            predicate
            for predicate in query.join_predicates
            if predicate.column not in self.probe_columns
        )
        return rtp_fields_available(context, remaining)

    def execute(self, query: TextJoinQuery, context: JoinContext) -> MethodExecution:
        self.check_applicable(query, context)
        probe_columns = _validate_probe_columns(query, self.probe_columns)
        started_at = time.perf_counter()
        ledger_before = context.client.ledger.snapshot()

        rows = joining_rows(context, query)
        selections = selection_nodes(query)
        probe_predicates = query.predicates_on(probe_columns)
        remaining_predicates = tuple(
            predicate
            for predicate in query.join_predicates
            if predicate.column not in probe_columns
        )
        pairs: List[JoinedPair] = []
        fetched = 0
        probes_sent = 0
        successes = 0

        for key, group in group_by_columns(rows, probe_columns).items():
            with context.client.trace_phase("probe"):
                probe_nodes = instantiate_predicates(probe_predicates, group[0])
                if probe_nodes is None:
                    continue
                result = context.client.search(
                    and_all(selections + probe_nodes)
                )
            probes_sent += 1
            if result.is_empty:
                continue
            successes += 1
            fetched += len(result)
            if self.fetch_cap is not None and fetched > self.fetch_cap:
                error = JoinMethodError(
                    f"{self.name}: fetched {fetched} documents, cap is "
                    f"{self.fetch_cap}; estimates were unreliable"
                )
                # What the guard actually saw before tripping: runtime
                # re-optimization (core/adaptive) turns these counts into
                # observed statistics, and the feedback store records the
                # abort's true cause as a q-error event.
                error.observed = {
                    "probe_columns": probe_columns,
                    "fields": {
                        predicate.column: predicate.field
                        for predicate in probe_predicates
                    },
                    "probes": probes_sent,
                    "successes": successes,
                    "fetched": fetched,
                }
                raise error
            with context.client.trace_phase("RTP"):
                pairs.extend(
                    rtp_match_pairs(
                        context, list(result), group, remaining_predicates
                    )
                )

        return finalize_execution(
            self.name, query, context, pairs, ledger_before, started_at
        )


class ProbeSemiJoin(JoinMethod):
    """Probing alone: the TUPLES-shaped (semi-join / reducer) method.

    Sends one probe per distinct probe-group and keeps the tuples of
    succeeding groups.  Exact when ``probe_columns`` covers every join
    column; a (sound) over-approximation otherwise — failed probes never
    prune a joining tuple, per the probe soundness property.
    """

    def __init__(self, probe_columns: Optional[Sequence[str]] = None) -> None:
        #: None means "all join columns" (resolved per query at run time).
        self.probe_columns = tuple(probe_columns) if probe_columns else None

    @property
    def name(self) -> str:
        if self.probe_columns is None:
            return "P(all)"
        return _method_label("", self.probe_columns)

    def applicable(self, query: TextJoinQuery, context: JoinContext) -> bool:
        if query.shape is not ResultShape.TUPLES:
            return False
        if self.probe_columns is None:
            return True
        try:
            _validate_probe_columns(query, self.probe_columns)
        except PlanError:
            return False
        return True

    def is_exact_for(self, query: TextJoinQuery) -> bool:
        """True when the probe covers every join predicate of the query."""
        if self.probe_columns is None:
            return True
        return set(self.probe_columns) == set(query.join_columns)

    def execute(self, query: TextJoinQuery, context: JoinContext) -> MethodExecution:
        self.check_applicable(query, context)
        probe_columns = (
            query.join_columns
            if self.probe_columns is None
            else _validate_probe_columns(query, self.probe_columns)
        )
        started_at = time.perf_counter()
        ledger_before = context.client.ledger.snapshot()

        rows = joining_rows(context, query)
        selections = selection_nodes(query)
        probe_predicates = query.predicates_on(probe_columns)
        kept: List[Row] = []

        with context.client.trace_phase("probe"):
            for key, group in group_by_columns(rows, probe_columns).items():
                probe_nodes = instantiate_predicates(probe_predicates, group[0])
                if probe_nodes is None:
                    continue
                if context.client.probe(and_all(selections + probe_nodes)):
                    kept.extend(group)

        execution = MethodExecution(method=self.name, shape=ResultShape.TUPLES)
        execution.tuples = kept
        execution.cost = context.client.ledger.diff(ledger_before)
        execution.wall_seconds = time.perf_counter() - started_at
        return execution
