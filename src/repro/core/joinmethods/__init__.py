"""The foreign-join execution methods of Section 3.

- :class:`TupleSubstitution` (TS) — one instantiated search per distinct
  joining tuple;
- :class:`RelationalTextProcessing` (RTP) — one selection-only search,
  then SQL string matching;
- :class:`SemiJoin` (SJ) / :class:`SemiJoinRtp` (SJ+RTP) — OR-batched
  searches within the term limit M;
- :class:`ProbeTupleSubstitution` (P+TS), :class:`ProbeRtp` (P+RTP),
  :class:`ProbeSemiJoin` — probing-based methods that prune fail-queries.

Ranked (vector) backends get a separate strategy space —
:class:`VectorTopKProbe` (V-TOPK) and :class:`VectorCorpusScan` (V-SCAN)
— because every Section 3 method assumes Boolean monotone semantics;
:func:`ensure_method_legal` enforces the split.
"""

from repro.core.joinmethods.base import (
    JoinContext,
    JoinMethod,
    MethodExecution,
    ensure_method_legal,
    group_by_columns,
    instantiate_predicates,
    joining_rows,
    rtp_match,
    selection_node,
    selection_nodes,
)
from repro.core.joinmethods.batched import BatchedTupleSubstitution, cost_batched_ts
from repro.core.joinmethods.probing import (
    ProbeCache,
    ProbeRtp,
    ProbeSemiJoin,
    ProbeTupleSubstitution,
)
from repro.core.joinmethods.rtp import RelationalTextProcessing
from repro.core.joinmethods.semijoin import (
    SemiJoin,
    SemiJoinRtp,
    SingleColumnSemiJoinRtp,
    batch_conjuncts,
)
from repro.core.joinmethods.tuple_substitution import TupleSubstitution
from repro.core.joinmethods.vector import (
    VectorCorpusScan,
    VectorExecution,
    VectorJoinStrategy,
    VectorTopKProbe,
    vector_joining_rows,
)

__all__ = [
    "JoinContext",
    "JoinMethod",
    "MethodExecution",
    "ensure_method_legal",
    "VectorExecution",
    "VectorJoinStrategy",
    "VectorTopKProbe",
    "VectorCorpusScan",
    "vector_joining_rows",
    "TupleSubstitution",
    "BatchedTupleSubstitution",
    "cost_batched_ts",
    "RelationalTextProcessing",
    "SemiJoin",
    "SemiJoinRtp",
    "SingleColumnSemiJoinRtp",
    "batch_conjuncts",
    "ProbeCache",
    "ProbeTupleSubstitution",
    "ProbeRtp",
    "ProbeSemiJoin",
    "joining_rows",
    "selection_node",
    "selection_nodes",
    "instantiate_predicates",
    "group_by_columns",
    "rtp_match",
]
