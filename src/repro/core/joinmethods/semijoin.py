"""Semi-join methods (SJ and SJ+RTP) — Section 3.2.

TS turns each relational tuple into one conjunctive search.  The
semi-join idea packages many such conjuncts into a single search using
the ``or`` connector:

    sel_1 and ... and sel_m and (conj(t_1) or conj(t_2) or ... )

Text systems allow a fairly large number of basic terms per search
(Mercury allowed M = 70), so this cuts the invocation count by roughly a
factor of M/k.  When the disjunction does not fit in one search,
``ceil(|terms| / M)`` searches are sent.

**SJ** answers docid-shaped queries directly (the result set is exactly
the union of the per-tuple searches).  **SJ+RTP** generalizes to full
joins: the fetched documents are matched back to tuples with relational
text processing, which re-establishes the tuple ↔ document
correspondence that OR-batching loses.
"""

from __future__ import annotations

import time
from typing import Dict, List, Optional, Sequence

from repro.core.joinmethods.base import (
    JoinContext,
    JoinMethod,
    MethodExecution,
    effective_term_limit,
    finalize_execution,
    group_by_columns,
    instantiate_predicates,
    joining_rows,
    rtp_fields_available,
    rtp_match_pairs,
    selection_nodes,
)
from repro.core.query import ResultShape, TextJoinQuery
from repro.errors import JoinMethodError
from repro.relational.row import Row
from repro.textsys.documents import Document
from repro.textsys.query import SearchNode, and_all, or_all

__all__ = ["SemiJoin", "SemiJoinRtp", "SingleColumnSemiJoinRtp", "batch_conjuncts"]


def batch_conjuncts(
    conjuncts: Sequence[SearchNode],
    selection_terms: int,
    term_limit: int,
) -> List[List[SearchNode]]:
    """Greedily pack conjuncts into batches within the term limit.

    Each batch search re-sends the text selections, so every batch has
    ``term_limit - selection_terms`` basic terms available for the
    disjunction.  Raises when even a single conjunct does not fit.
    """
    capacity = term_limit - selection_terms
    if capacity < 1:
        raise JoinMethodError(
            f"text selections already use {selection_terms} of {term_limit} terms"
        )
    batches: List[List[SearchNode]] = []
    current: List[SearchNode] = []
    used = 0
    for conjunct in conjuncts:
        weight = conjunct.term_count()
        if weight > capacity:
            raise JoinMethodError(
                f"a single conjunct needs {weight} terms; only {capacity} available"
            )
        if used + weight > capacity:
            batches.append(current)
            current = []
            used = 0
        current.append(conjunct)
        used += weight
    if current:
        batches.append(current)
    return batches


def _run_semijoin_searches(
    query: TextJoinQuery, context: JoinContext, rows: Sequence[Row]
) -> List[Document]:
    """Send the OR-batched searches; return fetched documents (deduped)."""
    selections = selection_nodes(query)
    selection_terms = sum(node.term_count() for node in selections)

    conjuncts: List[SearchNode] = []
    for key, group in group_by_columns(rows, query.join_columns).items():
        instantiated = instantiate_predicates(query.join_predicates, group[0])
        if instantiated is None:
            continue
        conjuncts.append(and_all(instantiated))

    documents: Dict[str, Document] = {}
    if conjuncts:
        batches = batch_conjuncts(
            conjuncts, selection_terms, effective_term_limit(context)
        )
        for batch in batches:
            node = and_all(selections + [or_all(batch)])
            result = context.client.search(node)
            for document in result:
                documents.setdefault(document.docid, document)
    return list(documents.values())


class SemiJoin(JoinMethod):
    """SJ: OR-batched searches answering a docid-shaped (semi-join) query."""

    name = "SJ"

    def applicable(self, query: TextJoinQuery, context: JoinContext) -> bool:
        """SJ alone only answers queries that are themselves semi-joins.

        The OR-batched result set loses the tuple ↔ document
        correspondence, so only the DOCIDS shape can be delivered.
        """
        return query.shape is ResultShape.DOCIDS

    def execute(self, query: TextJoinQuery, context: JoinContext) -> MethodExecution:
        self.check_applicable(query, context)
        started_at = time.perf_counter()
        ledger_before = context.client.ledger.snapshot()

        with context.client.trace_phase("SJ-batch"):
            rows = joining_rows(context, query)
            documents = _run_semijoin_searches(query, context, rows)

        execution = MethodExecution(method=self.name, shape=ResultShape.DOCIDS)
        execution.docids = [document.docid for document in documents]
        execution.cost = context.client.ledger.diff(ledger_before)
        execution.wall_seconds = time.perf_counter() - started_at
        return execution


class SemiJoinRtp(JoinMethod):
    """SJ+RTP: OR-batched fetch, then relational matching back to tuples.

    Works for every result shape and — unlike plain RTP — even without
    text selections, because the disjunction of instantiated join
    predicates bounds the search by itself.
    """

    name = "SJ+RTP"

    def applicable(self, query: TextJoinQuery, context: JoinContext) -> bool:
        """The RTP phase needs every predicate field in the short form."""
        return rtp_fields_available(context, query.join_predicates)

    def execute(self, query: TextJoinQuery, context: JoinContext) -> MethodExecution:
        self.check_applicable(query, context)
        started_at = time.perf_counter()
        ledger_before = context.client.ledger.snapshot()

        with context.client.trace_phase("SJ-batch"):
            rows = joining_rows(context, query)
            documents = _run_semijoin_searches(query, context, rows)

        # Relational text processing re-matches documents to tuples.
        with context.client.trace_phase("RTP"):
            pairs = rtp_match_pairs(context, documents, rows, query.join_predicates)

        return finalize_execution(
            self.name, query, context, pairs, ledger_before, started_at
        )


class SingleColumnSemiJoinRtp(JoinMethod):
    """SJ1+RTP: the classic distributed semi-join, on ONE join column.

    Instead of OR-ing full per-tuple conjuncts, this variant ships only
    the distinct values of a single join column (the textbook semi-join
    on one attribute [BGWR81]) — fetching every document matching the
    text selections plus *that* column's predicate — and evaluates all
    remaining join predicates relationally.

    Compared with the full-conjunct :class:`SemiJoinRtp`: fewer terms per
    tuple (more tuples per batch, fewer invocations) but a *larger*
    fetch (documents need only match one predicate), so more short-form
    transmission and more relational matching.  The optimizer-facing
    column choice is the one with minimal fanout; the ablation bench
    compares both batching disciplines.
    """

    def __init__(self, column: Optional[str] = None) -> None:
        #: None = pick the minimum-fanout column at execution time (by
        #: measuring each column's value frequencies is the optimizer's
        #: job; at execution we default to the first join column).
        self.column = column

    @property
    def name(self) -> str:
        if self.column is None:
            return "SJ1+RTP"
        return f"SJ1({self.column.split('.')[-1]})+RTP"

    def applicable(self, query: TextJoinQuery, context: JoinContext) -> bool:
        if self.column is not None and self.column not in query.join_columns:
            return False
        return rtp_fields_available(context, query.join_predicates)

    def execute(self, query: TextJoinQuery, context: JoinContext) -> MethodExecution:
        self.check_applicable(query, context)
        started_at = time.perf_counter()
        ledger_before = context.client.ledger.snapshot()

        with context.client.trace_phase("SJ-batch"):
            rows = joining_rows(context, query)
            column = self.column or query.join_columns[0]
            column_predicate = query.predicate_on(column)
            selections = selection_nodes(query)
            selection_terms = sum(node.term_count() for node in selections)

            conjuncts: List[SearchNode] = []
            for key, group in group_by_columns(rows, (column,)).items():
                instantiated = instantiate_predicates(
                    (column_predicate,), group[0]
                )
                if instantiated is None:
                    continue
                conjuncts.append(instantiated[0])

            documents: Dict[str, Document] = {}
            if conjuncts:
                for batch in batch_conjuncts(
                    conjuncts, selection_terms, effective_term_limit(context)
                ):
                    node = and_all(selections + [or_all(batch)])
                    result = context.client.search(node)
                    for document in result:
                        documents.setdefault(document.docid, document)

        with context.client.trace_phase("RTP"):
            pairs = rtp_match_pairs(
                context, list(documents.values()), rows, query.join_predicates
            )

        return finalize_execution(
            self.name, query, context, pairs, ledger_before, started_at
        )
