"""Heterogeneous plans: one query, one optimizer, two text backends.

Section 8 observes that the paper's techniques "rely on the traditional
semantics of predicates" and are not directly applicable to ranking
models.  This module is the constructive answer: a
:class:`HeterogeneousJoinQuery` joins one stored relation against a
Boolean source *and* a vector source in a single query, and the planner
restricts each predicate to the method space that is sound for its
backend:

- the Boolean half keeps the full Section 3–5 space (TS, RTP, SJ,
  probing variants), priced by :func:`~repro.core.optimizer.
  enumerate_method_choices` with the Boolean backend's constants;
- the ranked half gets the V-TOPK / V-SCAN strategies only, priced by
  :func:`~repro.core.costmodel.cost_vector_topk` /
  :func:`~repro.core.costmodel.cost_vector_scan` with the vector
  backend's constants.

Execution runs the Boolean winner first (it is selective: a tuple with
no Boolean match cannot appear in the result), then the vector winner
over the survivors; each phase charges its own backend's ledger (DESIGN
invariant 15).  :func:`explain_heterogeneous` renders both ranked method
tables with per-backend "Chosen:" lines — the joint EXPLAIN the
multibackend scenario asserts on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.reporting import ascii_table
from repro.core.costmodel import (
    CostEstimate,
    VectorCostInputs,
    cost_vector_scan,
    cost_vector_topk,
)
from repro.core.inputs import build_cost_inputs
from repro.core.joinmethods.base import JoinContext, MethodExecution
from repro.core.joinmethods.vector import (
    VectorCorpusScan,
    VectorExecution,
    VectorJoinStrategy,
    VectorTopKProbe,
    vector_joining_rows,
)
from repro.core.optimizer.single_join import MethodChoice, enumerate_method_choices
from repro.core.query import ResultShape, TextJoinQuery, VectorJoinPredicate
from repro.errors import OptimizationError, PlanError
from repro.relational.row import Row
from repro.textsys.analysis import tokenize

__all__ = [
    "HeterogeneousJoinQuery",
    "VectorMethodChoice",
    "HeterogeneousPlan",
    "HeterogeneousExecution",
    "build_vector_cost_inputs",
    "enumerate_vector_choices",
    "choose_vector_strategy",
    "plan_heterogeneous",
    "execute_heterogeneous",
    "explain_heterogeneous",
]


@dataclass(frozen=True)
class HeterogeneousJoinQuery:
    """One relation joined against a Boolean and a vector text source.

    ``boolean`` carries the relation name, the local selection, the text
    selections and the Boolean join predicates; ``vector`` is the ranked
    predicate answered by the second backend.  The result is the set of
    tuples that satisfy *both* halves, each tuple paired with its ranked
    matches.
    """

    boolean: TextJoinQuery
    vector: VectorJoinPredicate

    def __post_init__(self) -> None:
        if self.boolean.shape is not ResultShape.TUPLES:
            raise PlanError(
                "the Boolean half of a heterogeneous query reduces the "
                "relation, so it must be TUPLES-shaped"
            )

    @property
    def relation(self) -> str:
        return self.boolean.relation

    def __repr__(self) -> str:
        return (
            f"HeterogeneousJoinQuery({self.boolean!r} AND {self.vector!r})"
        )


@dataclass(frozen=True)
class VectorMethodChoice:
    """A configured vector strategy with its predicted cost."""

    strategy: VectorJoinStrategy
    estimate: CostEstimate

    @property
    def name(self) -> str:
        return self.estimate.method

    def __repr__(self) -> str:
        return f"VectorMethodChoice({self.name}, {self.estimate.total:.2f}s)"


def build_vector_cost_inputs(
    predicate: VectorJoinPredicate,
    rows: Sequence[Row],
    context: JoinContext,
) -> VectorCostInputs:
    """Measure what the V-TOPK / V-SCAN formulas need for one predicate.

    Per-binding postings come from the backend's published per-term
    document frequencies (the Section 2.3 meta interface — free, like
    ``exact_predicate_statistics``).  The expected result size is
    ``min(top_k, candidate documents)`` with the candidate count
    *overestimated* by the summed frequencies — a deliberate bias in the
    same spirit as the paper's distinct-count default: it favors V-SCAN
    only when V-TOPK is expected to be significantly worse.
    """
    client = context.client
    bindings: List[str] = []
    seen = set()
    for row in rows:
        value = row[predicate.column]
        if value is None:
            continue
        text = str(value)
        if text in seen or not tokenize(text):
            continue
        seen.add(text)
        bindings.append(text)

    total_postings = 0.0
    total_results = 0.0
    document_count = client.document_count
    for text in bindings:
        postings = sum(
            client.server.document_frequency(predicate.field, token)
            for token in set(tokenize(text))
        )
        total_postings += postings
        candidates = min(float(postings), float(document_count))
        if predicate.top_k is not None:
            candidates = min(candidates, float(predicate.top_k))
        total_results += candidates
    n = len(bindings)
    return VectorCostInputs(
        constants=client.ledger.constants,
        document_count=document_count,
        binding_count=float(n),
        postings_per_search=total_postings / n if n else 0.0,
        expected_results=total_results / n if n else 0.0,
        top_k=predicate.top_k,
        threshold=predicate.threshold,
        scan_visible=predicate.field in client.server.store.short_fields,
    )


def enumerate_vector_choices(
    predicate: VectorJoinPredicate, inputs: VectorCostInputs
) -> List[VectorMethodChoice]:
    """Every applicable vector strategy, ranked cheapest first."""
    choices = [VectorMethodChoice(VectorTopKProbe(), cost_vector_topk(inputs))]
    if inputs.scan_visible:
        choices.append(
            VectorMethodChoice(VectorCorpusScan(), cost_vector_scan(inputs))
        )
    choices.sort(key=lambda choice: choice.estimate.total)
    return choices


def choose_vector_strategy(
    predicate: VectorJoinPredicate, inputs: VectorCostInputs
) -> VectorMethodChoice:
    """The cheapest applicable vector strategy."""
    choices = enumerate_vector_choices(predicate, inputs)
    if not choices:
        raise OptimizationError(
            f"no applicable vector strategy for {predicate!r}"
        )
    return choices[0]


@dataclass
class HeterogeneousPlan:
    """Both halves planned: per-backend ranked choices plus their inputs."""

    query: HeterogeneousJoinQuery
    boolean_choices: List[MethodChoice]
    vector_choices: List[VectorMethodChoice]
    boolean_inputs: object = None
    vector_inputs: Optional[VectorCostInputs] = None

    @property
    def boolean_choice(self) -> MethodChoice:
        return self.boolean_choices[0]

    @property
    def vector_choice(self) -> VectorMethodChoice:
        return self.vector_choices[0]

    @property
    def total_estimate(self) -> float:
        return (
            self.boolean_choice.estimate.total
            + self.vector_choice.estimate.total
        )

    def __repr__(self) -> str:
        return (
            f"HeterogeneousPlan({self.boolean_choice.name} + "
            f"{self.vector_choice.name}, {self.total_estimate:.2f}s)"
        )


def plan_heterogeneous(
    query: HeterogeneousJoinQuery,
    boolean_context: JoinContext,
    vector_context: JoinContext,
    registry=None,
    g: int = 1,
    exhaustive_probes: bool = False,
    feedback=None,
) -> HeterogeneousPlan:
    """Plan both halves, each against its own backend's method space.

    The two contexts carry the two backends' metered clients — typically
    ``registry.client(name)`` for each — so every estimate is priced
    with the right backend's constants.  A Boolean client on the vector
    context (or vice versa) fails the per-backend legality checks
    downstream rather than silently mispricing.
    """
    boolean_inputs = build_cost_inputs(
        query.boolean,
        boolean_context,
        registry=registry,
        g=g,
        feedback=feedback,
    )
    boolean_choices = enumerate_method_choices(
        query.boolean, boolean_inputs, exhaustive_probes=exhaustive_probes
    )
    if not boolean_choices:
        raise OptimizationError(
            f"no applicable join method for {query.boolean!r}"
        )
    rows = vector_joining_rows(
        vector_context, query.relation, base_query=query.boolean
    )
    vector_inputs = build_vector_cost_inputs(query.vector, rows, vector_context)
    vector_choices = enumerate_vector_choices(query.vector, vector_inputs)
    if not vector_choices:
        raise OptimizationError(
            f"no applicable vector strategy for {query.vector!r}"
        )
    return HeterogeneousPlan(
        query=query,
        boolean_choices=boolean_choices,
        vector_choices=vector_choices,
        boolean_inputs=boolean_inputs,
        vector_inputs=vector_inputs,
    )


@dataclass
class HeterogeneousExecution:
    """The outcome of one heterogeneous query: both phases, combined."""

    plan: HeterogeneousPlan
    boolean_execution: MethodExecution
    vector_execution: VectorExecution
    #: Survivors of both halves: tuples with a Boolean match AND at least
    #: one ranked match, each paired with its ranked matches (best first).
    row_matches: List[Tuple[Row, tuple]] = field(default_factory=list)

    @property
    def rows(self) -> List[Row]:
        return [row for row, _ in self.row_matches]

    @property
    def simulated_seconds(self) -> float:
        """Total simulated spend, summed across both backends' charges."""
        return (
            self.boolean_execution.cost.total
            + self.vector_execution.cost.total
        )

    def __repr__(self) -> str:
        return (
            f"HeterogeneousExecution({self.plan.boolean_choice.name} + "
            f"{self.plan.vector_choice.name}, {len(self.row_matches)} rows, "
            f"{self.simulated_seconds:.3f}s)"
        )


def execute_heterogeneous(
    query: HeterogeneousJoinQuery,
    boolean_context: JoinContext,
    vector_context: JoinContext,
    plan: Optional[HeterogeneousPlan] = None,
    registry=None,
    g: int = 1,
) -> HeterogeneousExecution:
    """Run the planned (or freshly planned) heterogeneous query.

    Phase order follows the reducing half: the Boolean winner runs
    first and shrinks the relation, then the vector winner ranks only
    the survivors' bindings.  Each phase's charges land on its own
    context's ledger — with registry-built clients, that is the
    backend's attributed ledger (invariant 15).
    """
    if plan is None:
        plan = plan_heterogeneous(
            query, boolean_context, vector_context, registry=registry, g=g
        )
    boolean_execution = plan.boolean_choice.method.execute(
        query.boolean, boolean_context
    )
    survivors = boolean_execution.tuples
    vector_execution = plan.vector_choice.strategy.run(
        query.vector, survivors, vector_context
    )
    row_matches = [
        (row, matches)
        for row, matches in vector_execution.row_matches
        if matches
    ]
    return HeterogeneousExecution(
        plan=plan,
        boolean_execution=boolean_execution,
        vector_execution=vector_execution,
        row_matches=row_matches,
    )


def explain_heterogeneous(plan: HeterogeneousPlan) -> str:
    """A joint EXPLAIN: per-backend method rankings and chosen methods."""
    query = plan.query
    lines: List[str] = []
    lines.append(f"Heterogeneous query over relation {query.relation!r}")
    lines.append(f"  Boolean half: {query.boolean!r}")
    lines.append(f"  Vector half:  {query.vector!r}")

    def method_table(title: str, choices) -> str:
        rows = []
        for rank, choice in enumerate(choices, start=1):
            estimate = choice.estimate
            rows.append(
                [
                    rank,
                    estimate.method,
                    round(estimate.total, 2),
                    round(estimate.invocation, 2),
                    round(estimate.processing, 2),
                    round(estimate.transmission_short, 2),
                    round(estimate.rtp, 2),
                    round(estimate.searches, 1),
                ]
            )
        return ascii_table(
            ["#", "method", "total", "invoke", "process", "short", "rtp",
             "searches"],
            rows,
            title=title,
        )

    lines.append("")
    lines.append(
        method_table(
            "Boolean backend (Section 3 method space)", plan.boolean_choices
        )
    )
    lines.append(f"Chosen: {plan.boolean_choice.name}")
    lines.append("")
    lines.append(
        method_table(
            "Vector backend (ranked strategy space)", plan.vector_choices
        )
    )
    lines.append(f"Chosen: {plan.vector_choice.name}")
    lines.append("")
    lines.append(
        f"Predicted total: {plan.total_estimate:.2f}s "
        f"({plan.boolean_choice.name}: "
        f"{plan.boolean_choice.estimate.total:.2f}s + "
        f"{plan.vector_choice.name}: "
        f"{plan.vector_choice.estimate.total:.2f}s)"
    )
    return "\n".join(lines)
