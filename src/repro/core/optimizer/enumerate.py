"""The modified join-enumeration algorithm (Section 6).

The traditional System-R dynamic program sequences the ``n`` relations
(plus the text system, treated as one more unit in the order) into the
best left-deep tree.  The modified algorithm enumerates the same
subsets, but at each extension step considers the four PrL alternatives:

    (a) joinPlan(optPlan(S_j), R_i)
    (b) joinPlan(probe(optPlan(S_j)), R_i)
    (c) joinPlan(optPlan(S_j), probe(R_i))
    (d) joinPlan(probe(optPlan(S_j)), probe(R_i))

Probe nodes are only legal before the text system's position in the
order, and probe-column sets are chosen with the Section 5 machinery
(bounded by Theorem 5.3 to at most ``min(k, 2g)`` columns).

Because alternative (a) is always considered, the chosen plan's
estimated cost is never worse than the best left-deep plan — the
paper's first desideratum.  The enumerator also exposes counters
(``join_tasks``, ``plans_considered``) so the E9 benchmark can verify
the ``O(n^2 2^{n-1})`` complexity claim.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.core.optimizer.estimator import PlanEstimator
from repro.core.optimizer.multiquery import TEXT_SOURCE, MultiJoinQuery
from repro.core.optimizer.plan import (
    JoinNode,
    PlanNode,
    ProbeNode,
    ScanNode,
    TextJoinNode,
    TextScanNode,
    plan_signature,
)
from repro.core.query import TextJoinPredicate
from repro.errors import OptimizationError

__all__ = ["OptimizedPlan", "SubsetDecision", "optimize_multijoin"]


@dataclass
class SubsetDecision:
    """The enumerator's record for one DP subset: what it weighed."""

    subset: FrozenSet[str]
    candidates: Tuple[Tuple[str, float], ...]  # (signature, estimated cost)
    winner: str

    def considered(self, fragment: str) -> bool:
        """Did any candidate's plan signature contain ``fragment``?"""
        return any(fragment in signature for signature, _ in self.candidates)


@dataclass
class OptimizedPlan:
    """The enumerator's output: the winning plan plus search statistics."""

    plan: PlanNode
    estimated_cost: float
    estimated_rows: float
    join_tasks: int
    plans_considered: int
    subsets_enumerated: int
    #: Per-subset decision log (Example 6.2's "the optimizer also
    #: considers the costs of {student', faculty}, ...").
    trace: Tuple[SubsetDecision, ...] = ()

    def describe(self) -> str:
        return self.plan.describe()

    def decision_for(self, relations: Iterable[str]) -> Optional[SubsetDecision]:
        """The decision log entry for one subset of relations."""
        wanted = frozenset(relations)
        for decision in self.trace:
            if decision.subset == wanted:
                return decision
        return None


def _probe_candidates(
    query: MultiJoinQuery,
    plan: PlanNode,
    estimator: PlanEstimator,
) -> List[Tuple[TextJoinPredicate, ...]]:
    """Probe-predicate subsets applicable to ``plan`` (Theorem 5.3 bound)."""
    if plan.includes_text:
        return []
    relations = sorted(plan.relations())
    available = [
        predicate
        for predicate in query.text_predicates_within(relations)
        if predicate.column not in plan.probed_columns()
    ]
    if not available:
        return []
    max_size = min(len(available), 2 * estimator.g)
    subsets: List[Tuple[TextJoinPredicate, ...]] = []
    for size in range(1, max_size + 1):
        subsets.extend(itertools.combinations(available, size))
    return subsets


def _with_probes(
    query: MultiJoinQuery,
    plan: PlanNode,
    estimator: PlanEstimator,
) -> List[PlanNode]:
    """The plan itself plus every single-probe-reduced variant of it."""
    variants: List[PlanNode] = [plan]
    for subset in _probe_candidates(query, plan, estimator):
        probe = ProbeNode(
            child=plan,
            probe_columns=tuple(predicate.column for predicate in subset),
            probe_predicates=subset,
            selections=query.text_selections,
        )
        estimator.annotate(probe)
        variants.append(probe)
    return variants


def _join_alternatives(
    query: MultiJoinQuery,
    left_plan: PlanNode,
    right_relation: str,
    estimator: PlanEstimator,
    enable_probes: bool,
) -> List[PlanNode]:
    """All (a)-(d) ways to extend ``left_plan`` with ``right_relation``."""
    right_scan = ScanNode(
        relation=right_relation,
        predicate=query.local_predicate(right_relation),
    )
    estimator.annotate(right_scan)

    if enable_probes and not left_plan.includes_text:
        lefts = _with_probes(query, left_plan, estimator)
        rights = _with_probes(query, right_scan, estimator)
    else:
        # Probe nodes may only precede the text join node ("any probes
        # following the text join node will be redundant").
        lefts = [left_plan]
        rights = [right_scan]

    done = sorted(left_plan.relations() - {TEXT_SOURCE})
    relational = query.join_predicates_between(done, right_relation)
    text_matches = (
        query.text_predicates_of(right_relation)
        if left_plan.includes_text
        else ()
    )

    plans: List[PlanNode] = []
    for left in lefts:
        for right in rights:
            join = JoinNode(
                left=left,
                right=right,
                relational_predicates=relational,
                text_match_predicates=text_matches,
            )
            estimator.annotate(join)
            plans.append(join)
    return plans


def _bushy_join_alternatives(
    query: MultiJoinQuery,
    left_plan: PlanNode,
    right_plan: PlanNode,
    estimator: PlanEstimator,
    enable_probes: bool,
) -> List[PlanNode]:
    """Join two composite plans (bushy trees).

    At most one side may carry the text source; the non-text side's text
    predicates become local ``TextMatch`` filters when the other side
    already fetched documents.
    """
    if left_plan.includes_text and right_plan.includes_text:
        return []
    left_relations = sorted(left_plan.relations() - {TEXT_SOURCE})
    right_relations = sorted(right_plan.relations() - {TEXT_SOURCE})
    relational = query.join_predicates_across(left_relations, right_relations)
    if left_plan.includes_text:
        text_matches = query.text_predicates_within(right_relations)
    elif right_plan.includes_text:
        text_matches = query.text_predicates_within(left_relations)
    else:
        text_matches = ()

    lefts = (
        _with_probes(query, left_plan, estimator)
        if enable_probes and not left_plan.includes_text
        else [left_plan]
    )
    rights = (
        _with_probes(query, right_plan, estimator)
        if enable_probes and not right_plan.includes_text
        else [right_plan]
    )
    plans: List[PlanNode] = []
    for left in lefts:
        for right in rights:
            join = JoinNode(
                left=left,
                right=right,
                relational_predicates=relational,
                text_match_predicates=text_matches,
            )
            estimator.annotate(join)
            plans.append(join)
    return plans


def _text_join_alternatives(
    query: MultiJoinQuery,
    child: PlanNode,
    estimator: PlanEstimator,
) -> List[PlanNode]:
    """Ways to place the text system on top of ``child``."""
    relations = sorted(child.relations())
    available = query.text_predicates_within(relations)
    if not available:
        return []
    plans: List[PlanNode] = []
    for choice in estimator.text_join_choices(child, available):
        node = TextJoinNode(
            child=child,
            method=choice.method,
            available_predicates=available,
            selections=query.text_selections,
        )
        estimator.annotate(node)
        plans.append(node)
    return plans


def optimize_multijoin(
    query: MultiJoinQuery,
    estimator: PlanEstimator,
    enable_probes: bool = True,
    space: Optional[str] = None,
) -> OptimizedPlan:
    """Dynamic-programming enumeration over an execution space.

    ``space`` selects the execution space:

    - ``"traditional"`` — the paper's baseline: left-deep trees where the
      text join node evaluates *all* text join predicates together (so it
      must follow every relation carrying one), no probe nodes, no text
      scans;
    - ``"prl"`` — the paper's contribution: traditional plus probe nodes
      before the text join (alternatives (a)–(d));
    - ``"extended"`` (default) — this library's superset: additionally
      allows the text source as the outer operand (fetch by selections,
      then match locally) and deferring text predicates of later-joined
      relations to local ``TextMatch`` filters;
    - ``"bushy"`` — extended plus bushy join trees: a join's right input
      may itself be a composite plan, so the DP considers every 2-way
      partition of each subset (the "[CDY] other choices of execution
      space" direction).

    ``enable_probes=False`` is shorthand for disabling probes in any
    space (kept for convenience; ``space="traditional"`` implies it).
    """
    if space is None:
        space = "extended"
    if space not in ("traditional", "prl", "extended", "bushy"):
        raise OptimizationError(f"unknown execution space {space!r}")
    if space == "traditional":
        enable_probes = False
    allow_text_scan = space in ("extended", "bushy") and bool(query.text_selections)
    defer_text_predicates = space in ("extended", "bushy")
    bushy = space == "bushy"
    text_pred_relations = frozenset(query.relations_with_text_predicates())

    units: Tuple[str, ...] = tuple(query.relations) + (TEXT_SOURCE,)
    best: Dict[FrozenSet[str], PlanNode] = {}
    plans_considered = 0
    subsets_enumerated = 0
    trace: List[SubsetDecision] = []

    # ------------------------------------------------------------------
    # size-1 subsets
    # ------------------------------------------------------------------
    for relation in query.relations:
        scan = ScanNode(relation=relation, predicate=query.local_predicate(relation))
        estimator.annotate(scan)
        best[frozenset({relation})] = scan
        plans_considered += 1
    if allow_text_scan:
        text_scan = TextScanNode(selections=query.text_selections)
        estimator.annotate(text_scan)
        best[frozenset({TEXT_SOURCE})] = text_scan
        plans_considered += 1

    # ------------------------------------------------------------------
    # larger subsets
    # ------------------------------------------------------------------
    for size in range(2, len(units) + 1):
        for subset in itertools.combinations(units, size):
            key = frozenset(subset)
            subsets_enumerated += 1
            candidates: List[PlanNode] = []
            for unit in subset:
                remainder = key - {unit}
                left_plan = best.get(remainder)
                if left_plan is None:
                    continue
                if unit == TEXT_SOURCE:
                    if not defer_text_predicates and not (
                        text_pred_relations <= remainder
                    ):
                        # Traditional/PrL spaces evaluate all text join
                        # predicates together at the text join node.
                        continue
                    candidates.extend(
                        _text_join_alternatives(query, left_plan, estimator)
                    )
                else:
                    if TEXT_SOURCE in remainder and not defer_text_predicates:
                        if unit in text_pred_relations:
                            continue
                    candidates.extend(
                        _join_alternatives(
                            query, left_plan, unit, estimator, enable_probes
                        )
                    )
            if bushy:
                # Every 2-way partition with a composite (size >= 2) right
                # side; composite-left/single-right is covered above.
                members = sorted(key)
                for mask in range(1, 1 << len(members)):
                    left_side = frozenset(
                        members[i]
                        for i in range(len(members))
                        if mask & (1 << i)
                    )
                    right_side = key - left_side
                    if len(right_side) < 2 or not left_side:
                        continue
                    left_plan = best.get(left_side)
                    right_plan = best.get(right_side)
                    if left_plan is None or right_plan is None:
                        continue
                    candidates.extend(
                        _bushy_join_alternatives(
                            query, left_plan, right_plan, estimator, enable_probes
                        )
                    )
            plans_considered += len(candidates)
            if candidates:
                winner = min(candidates, key=lambda plan: plan.estimated_cost)
                best[key] = winner
                trace.append(
                    SubsetDecision(
                        subset=key,
                        candidates=tuple(
                            (plan_signature(plan), plan.estimated_cost)
                            for plan in candidates
                        ),
                        winner=plan_signature(winner),
                    )
                )

    full = frozenset(units)
    plan = best.get(full)
    if plan is None:
        # Queries with text predicates but no selections cannot start from
        # a TextScan; the full set is reachable only through a TextJoin.
        raise OptimizationError(
            "no plan covers every relation and the text source; the query "
            "may lack both text selections and usable text predicates"
        )
    return OptimizedPlan(
        plan=plan,
        estimated_cost=plan.estimated_cost,
        estimated_rows=plan.estimated_rows,
        join_tasks=estimator.join_tasks,
        plans_considered=plans_considered,
        subsets_enumerated=subsets_enumerated,
        trace=tuple(trace),
    )
