"""Single-foreign-join optimization (Section 5).

"Optimization of queries that involve a single stored relation and the
text retrieval system reduces to the problem of choosing among the join
methods presented in Section 3 based on the ... cost model.  However, for
probe-based methods, we must also determine an optimal set of probe
columns."

:func:`enumerate_method_choices` prices every applicable method — TS,
RTP, SJ, SJ+RTP, and the probing methods with their *optimal* probe
column sets — and returns them ranked; :func:`choose_join_method` picks
the winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.costmodel import (
    CostEstimate,
    QueryCostInputs,
    cost_probe_semijoin,
    cost_rtp,
    cost_sj,
    cost_sj_rtp,
    cost_ts,
)
from repro.core.joinmethods import (
    JoinMethod,
    ProbeRtp,
    ProbeSemiJoin,
    ProbeTupleSubstitution,
    RelationalTextProcessing,
    SemiJoin,
    SemiJoinRtp,
    TupleSubstitution,
)
from repro.core.probe_select import optimal_probe_columns
from repro.core.query import ResultShape, TextJoinQuery
from repro.errors import OptimizationError

__all__ = ["MethodChoice", "enumerate_method_choices", "choose_join_method"]


@dataclass(frozen=True)
class MethodChoice:
    """A configured join method with its predicted cost."""

    method: JoinMethod
    estimate: CostEstimate

    @property
    def name(self) -> str:
        return self.estimate.method

    def __repr__(self) -> str:
        return f"MethodChoice({self.name}, {self.estimate.total:.2f}s)"


def enumerate_method_choices(
    query: TextJoinQuery,
    inputs: QueryCostInputs,
    exhaustive_probes: bool = False,
) -> List[MethodChoice]:
    """All applicable methods for the query, ranked cheapest first.

    Applicability follows Section 3: TS and SJ+RTP are universal; RTP
    needs text selections; SJ answers only semi-join (docid-shaped)
    queries; probing variants need at least two join predicates (a probe
    must be a proper, non-empty subset of the join columns); the pure
    probe method answers only tuple-shaped semi-joins.
    """
    source_kind = getattr(inputs, "source_kind", "boolean")
    if source_kind != "boolean":
        # Per-backend method legality: every method below assumes Boolean
        # monotone semantics (probing prunes, semijoins batch term
        # subsets), which ranking backends violate — Section 8.  Vector
        # predicates are planned by the heterogeneous planner's own
        # strategy space (V-TOPK / V-SCAN), never this one.
        raise OptimizationError(
            f"the Section 3 method space is sound only for Boolean "
            f"sources; this backend is {source_kind!r} (see "
            f"repro.core.heterogeneous for ranked predicates)"
        )
    choices: List[MethodChoice] = []
    predicate_fields = [p.field for p in query.join_predicates]
    rtp_possible = inputs.fields_visible(predicate_fields)

    choices.append(MethodChoice(TupleSubstitution(), cost_ts(inputs, query)))
    if rtp_possible:
        choices.append(MethodChoice(SemiJoinRtp(), cost_sj_rtp(inputs, query)))

    if inputs.batch_limit is not None:
        from repro.core.joinmethods.batched import (
            BatchedTupleSubstitution,
            cost_batched_ts,
        )

        choices.append(
            MethodChoice(
                BatchedTupleSubstitution(inputs.batch_limit),
                cost_batched_ts(inputs, query, inputs.batch_limit),
            )
        )

    if query.text_selections and rtp_possible:
        choices.append(
            MethodChoice(RelationalTextProcessing(), cost_rtp(inputs, query))
        )

    if query.shape is ResultShape.DOCIDS:
        choices.append(MethodChoice(SemiJoin(), cost_sj(inputs, query)))

    if query.shape is ResultShape.TUPLES:
        full = tuple(query.join_columns)
        choices.append(
            MethodChoice(
                ProbeSemiJoin(full), cost_probe_semijoin(inputs, query, full)
            )
        )

    if len(query.join_predicates) >= 2:
        p_ts = optimal_probe_columns(
            inputs, query, variant="P+TS", exhaustive=exhaustive_probes
        )
        if p_ts is not None:
            choices.append(
                MethodChoice(ProbeTupleSubstitution(p_ts.columns), p_ts.estimate)
            )
        if rtp_possible:
            p_rtp = optimal_probe_columns(
                inputs, query, variant="P+RTP", exhaustive=exhaustive_probes
            )
            if p_rtp is not None:
                choices.append(
                    MethodChoice(ProbeRtp(p_rtp.columns), p_rtp.estimate)
                )

    choices.sort(key=lambda choice: choice.estimate.total)
    return choices


def choose_join_method(
    query: TextJoinQuery,
    inputs: QueryCostInputs,
    exhaustive_probes: bool = False,
) -> MethodChoice:
    """The cheapest applicable method for the query."""
    choices = enumerate_method_choices(
        query, inputs, exhaustive_probes=exhaustive_probes
    )
    if not choices:
        raise OptimizationError(f"no applicable join method for {query!r}")
    return choices[0]
