"""Query optimization: single-join method choice and multi-join PrL search.

- :mod:`single_join` — Section 5: pick the cheapest join method (and
  optimal probe columns) for one relation joined with the text source;
- :mod:`multiquery` / :mod:`plan` / :mod:`estimator` / :mod:`enumerate` —
  Section 6: the extended PrL execution space and the modified System-R
  dynamic-programming enumerator.
"""

from repro.core.optimizer.enumerate import OptimizedPlan, optimize_multijoin
from repro.core.optimizer.estimator import INTERMEDIATE, PlanEstimator
from repro.core.optimizer.multiquery import (
    TEXT_SOURCE,
    MultiJoinQuery,
    RelationalJoinPredicate,
)
from repro.core.optimizer.plan import (
    JoinNode,
    PlanNode,
    ProbeNode,
    ScanNode,
    TextJoinNode,
    TextScanNode,
    plan_signature,
)
from repro.core.optimizer.single_join import (
    MethodChoice,
    choose_join_method,
    enumerate_method_choices,
)

__all__ = [
    "MethodChoice",
    "choose_join_method",
    "enumerate_method_choices",
    "MultiJoinQuery",
    "RelationalJoinPredicate",
    "TEXT_SOURCE",
    "INTERMEDIATE",
    "PlanEstimator",
    "OptimizedPlan",
    "optimize_multijoin",
    "PlanNode",
    "ScanNode",
    "TextScanNode",
    "ProbeNode",
    "JoinNode",
    "TextJoinNode",
    "plan_signature",
]
