"""Cost and cardinality estimation for multi-join plans (Section 6).

The estimator prices whole PrL trees.  Text-system work uses the Section
4 cost model; relational joins use a simple nested-loop model at
``join_comparison_cost`` seconds per tuple comparison (the paper's
experiments ran relational joins locally — any monotone per-comparison
model preserves the Example 6.1 effect that reducing an input reduces
the relational join's cost).

Cardinality rules:

- scans are exact (the relational engine can count after local
  selections — what a real catalog estimates, made exact here so that
  measured and predicted plan rankings can be compared cleanly);
- relational join selectivity: ``1/max(d_a, d_b)`` for equality,
  ``1 - 1/max(d_a, d_b)`` for inequality, ``1/3`` for ranges, ``0.1``
  otherwise;
- a probe on columns ``J`` keeps ``S_{g,J}`` of the child's rows;
- a text-match predicate (post-text-join filtering) keeps ``f_c / D`` of
  the tuple-document pairs;
- the text join produces ``N * F_{g,K_avail}`` pairs.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence

from repro.core.costmodel import (
    CostEstimate,
    QueryCostInputs,
    SelectionStatistics,
)
from repro.core.joinmethods.base import JoinContext, selection_node
from repro.core.optimizer.multiquery import MultiJoinQuery, RelationalJoinPredicate
from repro.core.optimizer.plan import (
    JoinNode,
    PlanNode,
    ProbeNode,
    ScanNode,
    TextJoinNode,
    TextScanNode,
)
from repro.core.optimizer.single_join import MethodChoice, enumerate_method_choices
from repro.core.query import ResultShape, TextJoinPredicate, TextJoinQuery
from repro.errors import OptimizationError, PlanError, StatisticsError
from repro.gateway.sampling import exact_predicate_statistics
from repro.gateway.statistics import (
    PredicateStatistics,
    TextStatisticsRegistry,
    joint_selectivity,
)
from repro.relational.expressions import Comparison, ColumnRef
from repro.textsys.query import and_all

__all__ = ["PlanEstimator", "INTERMEDIATE"]

#: Pseudo-relation name used for text joins over intermediates.
INTERMEDIATE = "~intermediate~"


class PlanEstimator:
    """Annotates plan trees with estimated rows and cumulative cost."""

    def __init__(
        self,
        query: MultiJoinQuery,
        context: JoinContext,
        registry: Optional[TextStatisticsRegistry] = None,
        g: int = 1,
        join_comparison_cost: float = 0.0001,
        feedback=None,
    ) -> None:
        self.query = query
        self.context = context
        self.registry = registry or TextStatisticsRegistry()
        self.g = g
        self.join_comparison_cost = join_comparison_cost
        #: Optional :class:`~repro.core.feedback.FeedbackStore`: observed
        #: execution statistics are blended into every text-predicate
        #: prior (prior-vs-observed weighting lives on the store).
        self.feedback = feedback
        self.join_tasks = 0  # complexity counter for E9

        self._scan_rows: Dict[str, List] = {}
        self._column_distinct: Dict[str, int] = {}
        self._predicate_stats: Dict[str, PredicateStatistics] = {}
        self._selection = self._measure_selections()
        self._prepare_relational_statistics()
        self._prepare_text_statistics()

    # ------------------------------------------------------------------
    # preparation
    # ------------------------------------------------------------------
    def _measure_selections(self) -> SelectionStatistics:
        if not self.query.text_selections:
            return SelectionStatistics.absent()
        nodes = [selection_node(selection) for selection in self.query.text_selections]
        result = self.context.client.server.search(and_all(nodes))
        return SelectionStatistics(
            result_size=float(len(result)),
            postings=float(result.postings_processed),
            term_count=sum(node.term_count() for node in nodes),
            present=True,
        )

    def _filtered_rows(self, relation: str) -> List:
        if relation not in self._scan_rows:
            table = self.context.catalog.table(relation)
            predicate = self.query.local_predicate(relation)
            rows = [
                row
                for row in table.scan()
                if predicate is None or predicate.evaluate(row) is True
            ]
            self._scan_rows[relation] = rows
        return self._scan_rows[relation]

    def _prepare_relational_statistics(self) -> None:
        for relation in self.query.relations:
            rows = self._filtered_rows(relation)
            table = self.context.catalog.table(relation)
            for column in table.schema.names():
                seen = {row[column] for row in rows if row[column] is not None}
                self._column_distinct[column] = len(seen)

    def _prepare_text_statistics(self) -> None:
        for predicate in self.query.text_predicates:
            if self.registry.has(predicate.column, predicate.field):
                stats = self.registry.get(predicate.column, predicate.field)
            else:
                relation = predicate.column.split(".", 1)[0]
                values = [
                    row[predicate.column] for row in self._filtered_rows(relation)
                ]
                if not any(value is not None for value in values):
                    # An all-NULL join column never matches anything.
                    stats = PredicateStatistics(
                        column=predicate.column,
                        field=predicate.field,
                        selectivity=0.0,
                        fanout=0.0,
                    )
                else:
                    stats = exact_predicate_statistics(
                        self.context.client.server,
                        predicate.column,
                        predicate.field,
                        values,
                    )
                self.registry.put(stats)
            if self.feedback is not None:
                from repro.core.feedback import corpus_fingerprint

                stats = self.feedback.blend(
                    stats, corpus_fingerprint(self.context.client.server)
                )
            self._predicate_stats[predicate.column] = stats

    # ------------------------------------------------------------------
    # statistics access
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return self.context.client.document_count

    def predicate_stats(self, column: str) -> PredicateStatistics:
        try:
            return self._predicate_stats[column]
        except KeyError:
            raise OptimizationError(
                f"no text statistics for column {column!r}"
            ) from None

    def base_distinct(self, column: str) -> int:
        try:
            return self._column_distinct[column]
        except KeyError:
            raise OptimizationError(
                f"no distinct count for column {column!r}"
            ) from None

    def probe_success(self, columns: Sequence[str]) -> float:
        """``S_{g,J}`` including the selection's all-or-nothing effect."""
        if self._selection.present and self._selection.result_size <= 0:
            return 0.0
        return joint_selectivity(
            [self.predicate_stats(column).selectivity for column in columns], self.g
        )

    # ------------------------------------------------------------------
    # plan annotation
    # ------------------------------------------------------------------
    def annotate(self, plan: PlanNode) -> PlanNode:
        """Fill ``estimated_rows`` / ``estimated_cost`` over the subtree.

        Degenerate statistics (empty corpus, zero-distinct or all-NULL
        join columns, empty relations) surface as a typed
        :class:`OptimizationError` naming the node — never a bare
        :class:`StatisticsError` or a ZeroDivisionError from deep inside
        a cost formula.
        """
        try:
            return self._annotate(plan)
        except StatisticsError as error:
            raise OptimizationError(
                f"cannot estimate {type(plan).__name__}: {error}"
            ) from error

    def _annotate(self, plan: PlanNode) -> PlanNode:
        if isinstance(plan, ScanNode):
            plan.estimated_rows = float(len(self._filtered_rows(plan.relation)))
            plan.estimated_cost = 0.0
            return plan

        if isinstance(plan, TextScanNode):
            constants = self.context.client.ledger.constants
            plan.estimated_rows = self._selection.result_size
            plan.estimated_cost = (
                constants.invocation
                + constants.per_posting * self._selection.postings
                + constants.short_form * self._selection.result_size
            )
            return plan

        if isinstance(plan, ProbeNode):
            self.annotate(plan.child)
            estimate = self._probe_cost(plan)
            reduction = self.probe_success(
                tuple(
                    column
                    for column in plan.probe_columns
                    if column not in plan.child.probed_columns()
                )
                or plan.probe_columns
            )
            plan.estimated_rows = plan.child.estimated_rows * reduction
            plan.estimated_cost = plan.child.estimated_cost + estimate.total
            return plan

        if isinstance(plan, JoinNode):
            self.annotate(plan.left)
            self.annotate(plan.right)
            self.join_tasks += 1
            pairs = plan.left.estimated_rows * plan.right.estimated_rows
            selectivity = 1.0
            for predicate in plan.relational_predicates:
                selectivity *= self._relational_selectivity(predicate)
            for text_predicate in plan.text_match_predicates:
                stats = self.predicate_stats(text_predicate.column)
                selectivity *= min(1.0, stats.fanout / max(self.document_count, 1))
            # Joins over fetched documents are relational text processing
            # (c_a per pair); pure relational joins cost c_j per pair.
            if plan.left.includes_text or plan.right.includes_text:
                per_pair = self.context.client.ledger.constants.rtp_per_document
            else:
                per_pair = self.join_comparison_cost
            plan.estimated_rows = pairs * selectivity
            plan.estimated_cost = (
                plan.left.estimated_cost
                + plan.right.estimated_cost
                + per_pair * pairs
            )
            return plan

        if isinstance(plan, TextJoinNode):
            self.annotate(plan.child)
            choice = self._best_text_join_choice(plan)
            inputs = self.text_join_inputs(plan.child, plan.available_predicates)
            columns = tuple(p.column for p in plan.available_predicates)
            plan.estimated_rows = inputs.total_documents(
                inputs.tuple_count, columns
            )
            plan.estimated_cost = plan.child.estimated_cost + choice.estimate.total
            return plan

        raise PlanError(f"unknown plan node {type(plan).__name__}")

    # ------------------------------------------------------------------
    # node pricing helpers (also used by the enumerator)
    # ------------------------------------------------------------------
    def _relational_selectivity(self, predicate: RelationalJoinPredicate) -> float:
        expression = predicate.expression
        if isinstance(expression, Comparison):
            left, right = expression.left, expression.right
            if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
                d_left = max(self._column_distinct.get(left.name, 1), 1)
                d_right = max(self._column_distinct.get(right.name, 1), 1)
                top = max(d_left, d_right)
                if expression.op == "=":
                    return 1.0 / top
                if expression.op == "!=":
                    return 1.0 - 1.0 / top
                return 1.0 / 3.0
        return 0.1

    def text_join_inputs(
        self, child: PlanNode, predicates: Sequence[TextJoinPredicate]
    ) -> QueryCostInputs:
        """Section 4 cost inputs for a text join over an intermediate.

        Distinct counts of intermediate columns are estimated as the base
        distinct count, scaled by any probe reduction on that column and
        capped by the intermediate's cardinality.
        """
        rows = max(child.estimated_rows, 0.0)
        probed = child.probed_columns()
        distinct_counts: Dict[FrozenSet[str], int] = {}
        for predicate in predicates:
            base = self.base_distinct(predicate.column)
            if predicate.column in probed:
                base = base * self.predicate_stats(predicate.column).selectivity
            distinct_counts[frozenset([predicate.column])] = max(
                1, int(round(min(float(base), rows)))
            ) if rows >= 1 else 0
        return QueryCostInputs(
            constants=self.context.client.ledger.constants,
            document_count=self.document_count,
            term_limit=self.context.client.term_limit,
            g=self.g,
            tuple_count=int(round(rows)),
            predicate_stats={
                predicate.column: self.predicate_stats(predicate.column)
                for predicate in predicates
            },
            selection=self._selection,
            distinct_counts=distinct_counts,
            batch_limit=getattr(self.context.client.server, "batch_limit", None),
            rtp_fields=frozenset(self.context.client.server.store.short_fields),
        )

    def _synthetic_query(
        self, predicates: Sequence[TextJoinPredicate]
    ) -> TextJoinQuery:
        return TextJoinQuery(
            relation=INTERMEDIATE,
            join_predicates=tuple(predicates),
            text_selections=self.query.text_selections,
            shape=ResultShape.PAIRS,
            long_form=self.query.long_form,
        )

    def text_join_choices(
        self, child: PlanNode, predicates: Sequence[TextJoinPredicate]
    ) -> List[MethodChoice]:
        """Ranked join-method choices for a text join over ``child``.

        Degenerate statistics (an empty corpus most prominently) surface
        as a typed :class:`OptimizationError`, matching :meth:`annotate`.
        """
        self.join_tasks += 1
        inputs = self.text_join_inputs(child, predicates)
        synthetic = self._synthetic_query(predicates)
        try:
            return enumerate_method_choices(synthetic, inputs)
        except StatisticsError as error:
            raise OptimizationError(
                f"cannot enumerate text-join methods over "
                f"{sorted(p.column for p in predicates)}: {error}"
            ) from error

    def _best_text_join_choice(self, plan: TextJoinNode) -> MethodChoice:
        choices = self.text_join_choices(plan.child, plan.available_predicates)
        for choice in choices:
            if choice.estimate.method == plan.method.name:
                return choice
        return choices[0]

    def _probe_cost(self, plan: ProbeNode) -> CostEstimate:
        """``C_P`` for a probe node over its child."""
        from repro.core.costmodel import cost_probe_phase

        inputs = self.text_join_inputs(plan.child, plan.probe_predicates)
        synthetic = self._synthetic_query(plan.probe_predicates)
        return cost_probe_phase(inputs, synthetic, plan.probe_columns)
