"""Plan trees for multi-join queries: left-deep trees and PrL trees.

Section 6 defines the extended execution space:

    (1) A left-deep tree is a PrL tree.
    (2) Every left-deep tree augmented with additional probe nodes placed
        between two relational join nodes or between a scan node and a
        relational join node is a PrL tree.  The probe nodes must precede
        the join node with the text system.

Plan nodes here mirror that definition: :class:`ScanNode` leaves,
:class:`JoinNode` relational joins, :class:`ProbeNode` reducers, and the
text system's position in the order — :class:`TextJoinNode` (foreign join
of the running intermediate with the text source) or
:class:`TextScanNode` (the text source as the outer-most operand,
fetched through its selections).

Nodes carry mutable ``estimated_rows`` / ``estimated_cost`` annotations
filled by the cost estimator; ``estimated_cost`` is cumulative (the cost
of the whole subtree).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional, Tuple

from repro.core.joinmethods.base import JoinMethod
from repro.core.optimizer.multiquery import (
    TEXT_SOURCE,
    RelationalJoinPredicate,
)
from repro.core.query import TextJoinPredicate, TextSelection
from repro.errors import PlanError
from repro.relational.expressions import Expression

__all__ = [
    "PlanNode",
    "ScanNode",
    "TextScanNode",
    "ProbeNode",
    "JoinNode",
    "TextJoinNode",
    "plan_signature",
]


@dataclass
class PlanNode:
    """Base class for plan nodes with cost annotations."""

    estimated_rows: float = field(default=0.0, init=False)
    estimated_cost: float = field(default=0.0, init=False)

    def relations(self) -> FrozenSet[str]:
        """The relations (and possibly the text source) this subtree covers."""
        raise NotImplementedError

    @property
    def includes_text(self) -> bool:
        return TEXT_SOURCE in self.relations()

    def probed_columns(self) -> FrozenSet[str]:
        """Text-predicate columns already reduced by probe nodes below."""
        raise NotImplementedError

    def describe(self, indent: int = 0) -> str:
        """A readable indented tree rendering."""
        raise NotImplementedError

    def _annotation(self) -> str:
        return f"[rows={self.estimated_rows:.1f} cost={self.estimated_cost:.2f}s]"


@dataclass
class ScanNode(PlanNode):
    """Scan of one base relation, applying its local selection."""

    relation: str
    predicate: Optional[Expression] = None

    def relations(self) -> FrozenSet[str]:
        return frozenset({self.relation})

    def probed_columns(self) -> FrozenSet[str]:
        return frozenset()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        filter_text = f" where {self.predicate!r}" if self.predicate else ""
        return f"{pad}Scan({self.relation}{filter_text}) {self._annotation()}"


@dataclass
class TextScanNode(PlanNode):
    """The text source as the outer operand: fetch by selections only."""

    selections: Tuple[TextSelection, ...]

    def __post_init__(self) -> None:
        if not self.selections:
            raise PlanError(
                "the text source can only be scanned through text selections"
            )

    def relations(self) -> FrozenSet[str]:
        return frozenset({TEXT_SOURCE})

    def probed_columns(self) -> FrozenSet[str]:
        return frozenset()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        sels = " and ".join(repr(selection) for selection in self.selections)
        return f"{pad}TextScan({sels}) {self._annotation()}"


@dataclass
class ProbeNode(PlanNode):
    """A probe reducer: semi-join the child by the text source.

    Sends one probe per distinct projection of the child over
    ``probe_columns`` (text selections included in every probe) and keeps
    only tuples of succeeding groups.  Must precede the text join node.
    """

    child: PlanNode
    probe_columns: Tuple[str, ...]
    probe_predicates: Tuple[TextJoinPredicate, ...]
    selections: Tuple[TextSelection, ...] = ()

    def __post_init__(self) -> None:
        if not self.probe_columns:
            raise PlanError("probe node needs at least one probe column")
        if self.child.includes_text:
            raise PlanError("probe nodes must precede the text join node")

    def relations(self) -> FrozenSet[str]:
        return self.child.relations()

    def probed_columns(self) -> FrozenSet[str]:
        return self.child.probed_columns() | frozenset(self.probe_columns)

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        columns = ", ".join(self.probe_columns)
        return (
            f"{pad}Probe({columns}) {self._annotation()}\n"
            f"{self.child.describe(indent + 1)}"
        )


@dataclass
class JoinNode(PlanNode):
    """A relational join between the running intermediate and one input.

    ``text_match_predicates`` are text join predicates that become
    locally evaluable at this join because one side already carries
    fetched documents (post-text-join filtering via ``TextMatch``).
    """

    left: PlanNode
    right: PlanNode
    relational_predicates: Tuple[RelationalJoinPredicate, ...] = ()
    text_match_predicates: Tuple[TextJoinPredicate, ...] = ()

    def __post_init__(self) -> None:
        overlap = self.left.relations() & self.right.relations()
        if overlap:
            raise PlanError(f"join inputs overlap on {sorted(overlap)}")
        if self.text_match_predicates and not (
            self.left.includes_text or self.right.includes_text
        ):
            raise PlanError(
                "text-match predicates need fetched documents on one side"
            )

    def relations(self) -> FrozenSet[str]:
        return self.left.relations() | self.right.relations()

    def probed_columns(self) -> FrozenSet[str]:
        return self.left.probed_columns() | self.right.probed_columns()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        parts: List[str] = [repr(p) for p in self.relational_predicates]
        parts.extend(repr(p) for p in self.text_match_predicates)
        on = f" on {', '.join(parts)}" if parts else " (cross)"
        return (
            f"{pad}Join{on} {self._annotation()}\n"
            f"{self.left.describe(indent + 1)}\n"
            f"{self.right.describe(indent + 1)}"
        )


@dataclass
class TextJoinNode(PlanNode):
    """The foreign join: the text system's position in the join order.

    Evaluates the text join predicates available from the child (plus all
    text selections) with the annotated join ``method``, producing
    (tuple, document) rows.  Text predicates of relations joined later
    are handled downstream as ``text_match_predicates``.
    """

    child: PlanNode
    method: JoinMethod
    available_predicates: Tuple[TextJoinPredicate, ...]
    selections: Tuple[TextSelection, ...] = ()

    def __post_init__(self) -> None:
        if self.child.includes_text:
            raise PlanError("a plan may contain only one text join node")
        if not self.available_predicates:
            raise PlanError(
                "a text join node needs at least one available text predicate"
            )

    def relations(self) -> FrozenSet[str]:
        return self.child.relations() | frozenset({TEXT_SOURCE})

    def probed_columns(self) -> FrozenSet[str]:
        return self.child.probed_columns()

    def describe(self, indent: int = 0) -> str:
        pad = "  " * indent
        preds = ", ".join(repr(p) for p in self.available_predicates)
        return (
            f"{pad}TextJoin[{self.method.name}]({preds}) {self._annotation()}\n"
            f"{self.child.describe(indent + 1)}"
        )


def plan_signature(plan: PlanNode) -> str:
    """A compact structural signature (for tests and deduplication)."""
    if isinstance(plan, ScanNode):
        return plan.relation
    if isinstance(plan, TextScanNode):
        return "textscan"
    if isinstance(plan, ProbeNode):
        columns = ",".join(plan.probe_columns)
        return f"probe[{columns}]({plan_signature(plan.child)})"
    if isinstance(plan, JoinNode):
        return f"join({plan_signature(plan.left)},{plan_signature(plan.right)})"
    if isinstance(plan, TextJoinNode):
        return f"textjoin[{plan.method.name}]({plan_signature(plan.child)})"
    raise PlanError(f"unknown plan node {type(plan).__name__}")
