"""Multi-query/multi-join optimization: shared work across queries.

Two layers live here:

- :class:`MultiJoinQuery` (Section 6): several stored relations plus the
  text source in ONE query — the shape of Q5:

      select student.name, mercury.docid
      from student, faculty, mercury
      where student.name in mercury.author
        and faculty.name in mercury.author
        and faculty.dept != student.dept
        and 'may 1993' in mercury.year

  Text join predicate columns are qualified with their relation
  (``student.name``); relational join predicates are arbitrary
  expressions whose referenced columns span exactly two relations.

- **cross-query share detection** (ROADMAP item 5): under the concurrent
  serving front-end, different tenants' plans issue overlapping search
  subexpressions.  :func:`share_key` canonicalizes a search into the key
  under which two searches are *guaranteed* to return the same
  :class:`~repro.textsys.result.ResultSet` — flatten same-connective
  nesting and sort commutative operands, but **keep duplicate
  operands**: the engine's charge identity (DESIGN invariant 11) makes
  ``postings_processed`` a function of the leaf *multiset*, so dropping
  a duplicate (as the cost-oriented rewriter may) would merge two
  searches whose answers agree but whose charges differ.
  :class:`SharedWorkGraph` groups many requests' searches by that key
  into :class:`SharedWork` units — what the serving layer's
  :class:`~repro.serving.sharing.SharedSearchExecutor` executes once and
  fans out.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from repro.core.query import TextJoinPredicate, TextSelection
from repro.errors import PlanError
from repro.relational.expressions import Expression
from repro.textsys.parser import parse_search
from repro.textsys.query import AndQuery, NotQuery, OrQuery, SearchNode

__all__ = [
    "RelationalJoinPredicate",
    "MultiJoinQuery",
    "TEXT_SOURCE",
    "canonicalize_for_sharing",
    "share_key",
    "SharedWork",
    "SharedWorkGraph",
]

#: The pseudo-relation name standing for the external text system in join
#: orders and plan descriptions.
TEXT_SOURCE = "~text~"


def _relation_of_column(column: str) -> str:
    if "." not in column:
        raise PlanError(
            f"multi-join text predicate column {column!r} must be qualified "
            "with its relation (e.g. 'student.name')"
        )
    return column.split(".", 1)[0]


@dataclass(frozen=True)
class RelationalJoinPredicate:
    """A join predicate between two stored relations."""

    expression: Expression
    relations: Tuple[str, str]

    def __post_init__(self) -> None:
        if len(set(self.relations)) != 2:
            raise PlanError("a relational join predicate spans two distinct relations")

    def covers(self, available: FrozenSet[str]) -> bool:
        """True when both sides' relations are in ``available``."""
        return set(self.relations) <= set(available)

    def __repr__(self) -> str:
        return f"JoinPred({self.relations[0]} ~ {self.relations[1]}: {self.expression!r})"


@dataclass(frozen=True)
class MultiJoinQuery:
    """A conjunctive query over ``n`` relations and one text source."""

    relations: Tuple[str, ...]
    text_predicates: Tuple[TextJoinPredicate, ...]
    text_selections: Tuple[TextSelection, ...] = ()
    join_predicates: Tuple[RelationalJoinPredicate, ...] = ()
    local_predicates: Tuple[Tuple[str, Expression], ...] = ()
    long_form: bool = False
    #: Qualifier for document pseudo-columns in results ("mercury.docid").
    text_source: str = "text"

    def __post_init__(self) -> None:
        if not self.relations:
            raise PlanError("a multi-join query needs at least one relation")
        if len(set(self.relations)) != len(self.relations):
            raise PlanError("duplicate relations in query")
        if self.text_source in self.relations:
            raise PlanError(
                f"text source name {self.text_source!r} collides with a relation"
            )
        if not self.text_predicates and not self.text_selections:
            raise PlanError(
                "a multi-join query must reference the text source through "
                "at least one text predicate or selection"
            )
        known = set(self.relations)
        for predicate in self.text_predicates:
            relation = _relation_of_column(predicate.column)
            if relation not in known:
                raise PlanError(
                    f"text predicate column {predicate.column!r} references "
                    f"unknown relation {relation!r}"
                )
        for join_predicate in self.join_predicates:
            unknown = set(join_predicate.relations) - known
            if unknown:
                raise PlanError(f"join predicate over unknown relations {unknown}")
        for relation, _ in self.local_predicates:
            if relation not in known:
                raise PlanError(f"local predicate on unknown relation {relation!r}")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def local_predicate(self, relation: str) -> Optional[Expression]:
        """The (single) local selection on a relation, if any."""
        for name, expression in self.local_predicates:
            if name == relation:
                return expression
        return None

    def text_predicates_of(self, relation: str) -> Tuple[TextJoinPredicate, ...]:
        """The text join predicates whose column lives in ``relation``."""
        return tuple(
            predicate
            for predicate in self.text_predicates
            if _relation_of_column(predicate.column) == relation
        )

    def text_predicates_within(
        self, relations: Sequence[str]
    ) -> Tuple[TextJoinPredicate, ...]:
        """Text predicates whose columns are available given ``relations``."""
        available = set(relations)
        return tuple(
            predicate
            for predicate in self.text_predicates
            if _relation_of_column(predicate.column) in available
        )

    def join_predicates_between(
        self, done: Sequence[str], incoming: str
    ) -> Tuple[RelationalJoinPredicate, ...]:
        """Relational join predicates connecting ``incoming`` to ``done``."""
        done_set = set(done)
        out = []
        for predicate in self.join_predicates:
            a, b = predicate.relations
            if (a == incoming and b in done_set) or (b == incoming and a in done_set):
                out.append(predicate)
        return tuple(out)

    def join_predicates_across(
        self, left: Sequence[str], right: Sequence[str]
    ) -> Tuple[RelationalJoinPredicate, ...]:
        """Relational join predicates with one side in each relation set."""
        left_set, right_set = set(left), set(right)
        out = []
        for predicate in self.join_predicates:
            a, b = predicate.relations
            if (a in left_set and b in right_set) or (
                b in left_set and a in right_set
            ):
                out.append(predicate)
        return tuple(out)

    def relations_with_text_predicates(self) -> Tuple[str, ...]:
        """Relations that carry at least one text join predicate."""
        seen = []
        for predicate in self.text_predicates:
            relation = _relation_of_column(predicate.column)
            if relation not in seen:
                seen.append(relation)
        return tuple(seen)


# ----------------------------------------------------------------------
# cross-query share detection (ROADMAP item 5)
# ----------------------------------------------------------------------
def canonicalize_for_sharing(node: SearchNode) -> SearchNode:
    """The sharing-safe canonical form of a search expression.

    Same-connective nesting is flattened and commutative operands are
    sorted by their rendering, so ``(a and b) and c`` and ``c and (b and
    a)`` share one form.  Unlike the cost rewriter
    (:mod:`repro.textsys.rewriter`), duplicate operands are **kept**:
    ``a and a and b`` answers like ``a and b`` but reads ``a``'s
    inverted list twice, so its charge differs — merging the two would
    break the as-if-alone accounting (DESIGN invariant 16).
    """
    if isinstance(node, (AndQuery, OrQuery)):
        connective = type(node)
        flat: List[SearchNode] = []
        for operand in node.operands:
            canonical = canonicalize_for_sharing(operand)
            if isinstance(canonical, connective):
                flat.extend(canonical.operands)
            else:
                flat.append(canonical)
        flat.sort(key=lambda child: child.to_expression())
        if len(flat) == 1:
            return flat[0]
        return connective(tuple(flat))
    if isinstance(node, NotQuery):
        return NotQuery(canonicalize_for_sharing(node.operand))
    return node


def share_key(query: Union[SearchNode, str]) -> str:
    """The key under which two searches may share one execution.

    Equal keys guarantee identical result sets *and* identical charges
    (the canonical form preserves the leaf multiset); unequal keys are
    never merged by the share detector, however similar the answers
    might happen to be.
    """
    if isinstance(query, str):
        query = parse_search(query)
    return canonicalize_for_sharing(query).to_expression()


@dataclass
class SharedWork:
    """One distinct search and every request that wants its answer."""

    key: str
    query: SearchNode
    requests: List[str] = field(default_factory=list)

    @property
    def fan_out(self) -> int:
        return len(self.requests)

    @property
    def saved_executions(self) -> int:
        """Executions avoided by running this unit once."""
        return max(0, len(self.requests) - 1)


class SharedWorkGraph:
    """Searches from many requests, factored by :func:`share_key`.

    The serving window builds one of these per batch: each distinct key
    becomes one :class:`SharedWork` executed once through
    ``search_batch``, with the answer fanned out to every request listed
    under it.
    """

    def __init__(self) -> None:
        self._units: Dict[str, SharedWork] = {}

    def add(self, request_id: str, query: Union[SearchNode, str]) -> SharedWork:
        """Register one request's search; returns its work unit."""
        if isinstance(query, str):
            query = parse_search(query)
        key = share_key(query)
        unit = self._units.get(key)
        if unit is None:
            unit = SharedWork(key=key, query=query)
            self._units[key] = unit
        unit.requests.append(request_id)
        return unit

    def units(self) -> List[SharedWork]:
        """The distinct work units, in first-seen order."""
        return list(self._units.values())

    @property
    def distinct_searches(self) -> int:
        return len(self._units)

    @property
    def total_requests(self) -> int:
        return sum(unit.fan_out for unit in self._units.values())

    @property
    def saved_executions(self) -> int:
        return sum(unit.saved_executions for unit in self._units.values())

    def __len__(self) -> int:
        return len(self._units)

    def __repr__(self) -> str:
        return (
            f"SharedWorkGraph({self.distinct_searches} distinct / "
            f"{self.total_requests} requested)"
        )
