"""Multi-join queries (Section 6): several relations plus the text source.

A :class:`MultiJoinQuery` extends the single-join model with multiple
stored relations and relational join predicates between them — the shape
of Q5:

    select student.name, mercury.docid
    from student, faculty, mercury
    where student.name in mercury.author
      and faculty.name in mercury.author
      and faculty.dept != student.dept
      and 'may 1993' in mercury.year

Text join predicate columns are qualified with their relation
(``student.name``); relational join predicates are arbitrary expressions
whose referenced columns span exactly two relations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional, Sequence, Tuple

from repro.core.query import TextJoinPredicate, TextSelection
from repro.errors import PlanError
from repro.relational.expressions import Expression

__all__ = ["RelationalJoinPredicate", "MultiJoinQuery", "TEXT_SOURCE"]

#: The pseudo-relation name standing for the external text system in join
#: orders and plan descriptions.
TEXT_SOURCE = "~text~"


def _relation_of_column(column: str) -> str:
    if "." not in column:
        raise PlanError(
            f"multi-join text predicate column {column!r} must be qualified "
            "with its relation (e.g. 'student.name')"
        )
    return column.split(".", 1)[0]


@dataclass(frozen=True)
class RelationalJoinPredicate:
    """A join predicate between two stored relations."""

    expression: Expression
    relations: Tuple[str, str]

    def __post_init__(self) -> None:
        if len(set(self.relations)) != 2:
            raise PlanError("a relational join predicate spans two distinct relations")

    def covers(self, available: FrozenSet[str]) -> bool:
        """True when both sides' relations are in ``available``."""
        return set(self.relations) <= set(available)

    def __repr__(self) -> str:
        return f"JoinPred({self.relations[0]} ~ {self.relations[1]}: {self.expression!r})"


@dataclass(frozen=True)
class MultiJoinQuery:
    """A conjunctive query over ``n`` relations and one text source."""

    relations: Tuple[str, ...]
    text_predicates: Tuple[TextJoinPredicate, ...]
    text_selections: Tuple[TextSelection, ...] = ()
    join_predicates: Tuple[RelationalJoinPredicate, ...] = ()
    local_predicates: Tuple[Tuple[str, Expression], ...] = ()
    long_form: bool = False
    #: Qualifier for document pseudo-columns in results ("mercury.docid").
    text_source: str = "text"

    def __post_init__(self) -> None:
        if not self.relations:
            raise PlanError("a multi-join query needs at least one relation")
        if len(set(self.relations)) != len(self.relations):
            raise PlanError("duplicate relations in query")
        if self.text_source in self.relations:
            raise PlanError(
                f"text source name {self.text_source!r} collides with a relation"
            )
        if not self.text_predicates and not self.text_selections:
            raise PlanError(
                "a multi-join query must reference the text source through "
                "at least one text predicate or selection"
            )
        known = set(self.relations)
        for predicate in self.text_predicates:
            relation = _relation_of_column(predicate.column)
            if relation not in known:
                raise PlanError(
                    f"text predicate column {predicate.column!r} references "
                    f"unknown relation {relation!r}"
                )
        for join_predicate in self.join_predicates:
            unknown = set(join_predicate.relations) - known
            if unknown:
                raise PlanError(f"join predicate over unknown relations {unknown}")
        for relation, _ in self.local_predicates:
            if relation not in known:
                raise PlanError(f"local predicate on unknown relation {relation!r}")

    # ------------------------------------------------------------------
    # derived views
    # ------------------------------------------------------------------
    def local_predicate(self, relation: str) -> Optional[Expression]:
        """The (single) local selection on a relation, if any."""
        for name, expression in self.local_predicates:
            if name == relation:
                return expression
        return None

    def text_predicates_of(self, relation: str) -> Tuple[TextJoinPredicate, ...]:
        """The text join predicates whose column lives in ``relation``."""
        return tuple(
            predicate
            for predicate in self.text_predicates
            if _relation_of_column(predicate.column) == relation
        )

    def text_predicates_within(
        self, relations: Sequence[str]
    ) -> Tuple[TextJoinPredicate, ...]:
        """Text predicates whose columns are available given ``relations``."""
        available = set(relations)
        return tuple(
            predicate
            for predicate in self.text_predicates
            if _relation_of_column(predicate.column) in available
        )

    def join_predicates_between(
        self, done: Sequence[str], incoming: str
    ) -> Tuple[RelationalJoinPredicate, ...]:
        """Relational join predicates connecting ``incoming`` to ``done``."""
        done_set = set(done)
        out = []
        for predicate in self.join_predicates:
            a, b = predicate.relations
            if (a == incoming and b in done_set) or (b == incoming and a in done_set):
                out.append(predicate)
        return tuple(out)

    def join_predicates_across(
        self, left: Sequence[str], right: Sequence[str]
    ) -> Tuple[RelationalJoinPredicate, ...]:
        """Relational join predicates with one side in each relation set."""
        left_set, right_set = set(left), set(right)
        out = []
        for predicate in self.join_predicates:
            a, b = predicate.relations
            if (a in left_set and b in right_set) or (
                b in left_set and a in right_set
            ):
                out.append(predicate)
        return tuple(out)

    def relations_with_text_predicates(self) -> Tuple[str, ...]:
        """Relations that carry at least one text join predicate."""
        seen = []
        for predicate in self.text_predicates:
            relation = _relation_of_column(predicate.column)
            if relation not in seen:
                seen.append(relation)
        return tuple(seen)
