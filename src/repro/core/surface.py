"""An SQL-like surface syntax for text-join queries (Section 2.2).

The paper writes its queries in "SQL-like syntax" where the external
text source appears as a relation and text predicates use
``<search term> in <field>``:

    select * from student, mercury
    where student.area = 'AI' and student.year > 3
    and 'belief update' in mercury.title
    and student.name in mercury.author

:func:`parse_query` turns that syntax into a
:class:`~repro.core.query.TextJoinQuery` (one stored relation) or a
:class:`~repro.core.optimizer.multiquery.MultiJoinQuery` (several),
classifying each WHERE conjunct:

- ``'<constant>' in <text>.<field>``      → text selection
- ``<rel>.<col> in <text>.<field>``       → text join predicate
- ``<rel>.<col> <op> <literal>``          → relational selection
- ``<relA>.<col> <op> <relB>.<col>``      → relational join predicate

The result shape follows the select list: ``select docid`` asks for
docids only; ``select *`` asks for full pairs with long-form documents;
a list naming only stored-relation columns asks for relation tuples.
"""

from __future__ import annotations

import re
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.core.optimizer.multiquery import MultiJoinQuery, RelationalJoinPredicate
from repro.core.query import (
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
)
from repro.errors import PlanError
from repro.relational.expressions import (
    ColumnRef,
    Comparison,
    Expression,
    conjoin,
)

__all__ = ["parse_query", "render_query"]

_TOKEN_RE = re.compile(
    r"""
    \s*(
        '(?:[^'])*'                    # quoted string
        | [A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z_][A-Za-z0-9_]*)?  # ident / qualified
        | -?\d+\.\d+ | -?\d+           # numbers
        | != | <= | >= | [=<>,*]       # operators and punctuation
    )
    """,
    re.VERBOSE,
)

_OPERATORS = ("=", "!=", "<", "<=", ">", ">=")


def _lex(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    stripped = text.strip()
    while position < len(stripped):
        match = _TOKEN_RE.match(stripped, position)
        if match is None:
            raise PlanError(
                f"cannot tokenize query at {stripped[position:position + 20]!r}"
            )
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    def __init__(self, tokens: List[str]) -> None:
        self._tokens = tokens
        self._position = 0

    def _peek(self) -> Optional[str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> str:
        token = self._peek()
        if token is None:
            raise PlanError("unexpected end of query")
        self._position += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        token = self._advance()
        if token.lower() != keyword:
            raise PlanError(f"expected {keyword!r}, found {token!r}")

    def _at_keyword(self, keyword: str) -> bool:
        token = self._peek()
        return token is not None and token.lower() == keyword

    # ------------------------------------------------------------------
    def parse(self):
        self._expect_keyword("select")
        select_list = self._select_list()
        self._expect_keyword("from")
        relations = self._relation_list()
        conjuncts: List[Tuple[str, Any]] = []
        if self._peek() is not None:
            self._expect_keyword("where")
            conjuncts = self._conjuncts()
        if self._peek() is not None:
            raise PlanError(f"trailing tokens at {self._peek()!r}")
        return select_list, relations, conjuncts

    def _select_list(self) -> List[str]:
        items = [self._advance()]
        if items[0] != "*" and not re.match(r"^[A-Za-z_]", items[0]):
            raise PlanError(f"bad select item {items[0]!r}")
        while self._peek() == ",":
            self._advance()
            items.append(self._advance())
        return items

    def _relation_list(self) -> List[str]:
        relations = [self._advance()]
        while self._peek() == ",":
            self._advance()
            relations.append(self._advance())
        for relation in relations:
            if "." in relation or not re.match(r"^[A-Za-z_]", relation):
                raise PlanError(f"bad relation name {relation!r}")
        return relations

    def _conjuncts(self) -> List[Tuple[str, Any]]:
        out = [self._conjunct()]
        while self._at_keyword("and"):
            self._advance()
            out.append(self._conjunct())
        return out

    def _conjunct(self) -> Tuple[str, Any]:
        left = self._advance()
        connector = self._advance()
        if connector.lower() == "in":
            right = self._advance()
            if "." not in right:
                raise PlanError(
                    f"'in' predicate needs a qualified text field, got {right!r}"
                )
            return ("in", (left, right))
        if connector not in _OPERATORS:
            raise PlanError(f"unknown operator {connector!r}")
        right = self._advance()
        return ("op", (left, connector, right))


def _literal_value(token: str) -> Any:
    if token.startswith("'") and token.endswith("'"):
        return token[1:-1]
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    if re.fullmatch(r"-?\d+\.\d+", token):
        return float(token)
    return None


def parse_query(
    text: str,
    text_source: str = "mercury",
) -> Union[TextJoinQuery, MultiJoinQuery]:
    """Parse the paper's SQL-like syntax into a query object.

    ``text_source`` names the FROM entry that is the external text
    system; every other FROM entry is a stored relation.
    """
    select_list, relations, raw_conjuncts = _Parser(_lex(text)).parse()

    if text_source not in relations:
        raise PlanError(
            f"the text source {text_source!r} must appear in FROM "
            f"(got {relations})"
        )
    stored = [relation for relation in relations if relation != text_source]
    if not stored:
        raise PlanError("the query needs at least one stored relation")
    stored_set = set(stored)

    text_selections: List[TextSelection] = []
    text_predicates: List[TextJoinPredicate] = []
    local: Dict[str, List[Expression]] = {}
    join_predicates: List[RelationalJoinPredicate] = []

    for kind, payload in raw_conjuncts:
        if kind == "in":
            left, right = payload
            field_qualifier, field = right.split(".", 1)
            if field_qualifier != text_source:
                raise PlanError(
                    f"'in' field {right!r} must belong to the text source "
                    f"{text_source!r}"
                )
            if left.startswith("'"):
                text_selections.append(TextSelection(left[1:-1], field))
            else:
                if "." not in left:
                    raise PlanError(
                        f"join value {left!r} must be a qualified column"
                    )
                relation = left.split(".", 1)[0]
                if relation not in stored_set:
                    raise PlanError(f"unknown relation in {left!r}")
                text_predicates.append(TextJoinPredicate(left, field))
            continue

        left, op, right = payload
        if "." not in left:
            raise PlanError(f"comparison column {left!r} must be qualified")
        left_relation = left.split(".", 1)[0]
        if left_relation not in stored_set:
            raise PlanError(f"unknown relation in {left!r}")
        literal = _literal_value(right)
        if literal is not None:
            from repro.relational.expressions import Literal

            expression = Comparison(op, ColumnRef(left), Literal(literal))
            local.setdefault(left_relation, []).append(expression)
            continue
        if "." not in right:
            raise PlanError(f"comparison operand {right!r} must be qualified")
        right_relation = right.split(".", 1)[0]
        if right_relation not in stored_set:
            raise PlanError(f"unknown relation in {right!r}")
        if right_relation == left_relation:
            expression = Comparison(op, ColumnRef(left), ColumnRef(right))
            local.setdefault(left_relation, []).append(expression)
            continue
        join_predicates.append(
            RelationalJoinPredicate(
                Comparison(op, ColumnRef(left), ColumnRef(right)),
                (left_relation, right_relation),
            )
        )

    # ------------------------------------------------------------------
    # result shape from the select list
    # ------------------------------------------------------------------
    wants_star = select_list == ["*"]
    bare_items = [item.split(".", 1)[-1] for item in select_list]
    wants_docids_only = not wants_star and set(bare_items) == {"docid"}
    references_text = wants_star or any(
        item.split(".", 1)[0] == text_source for item in select_list if "." in item
    ) or "docid" in bare_items

    if len(stored) == 1:
        if not text_predicates:
            raise PlanError("a text-join query needs at least one join predicate")
        if wants_docids_only:
            shape, long_form = ResultShape.DOCIDS, False
        elif not references_text:
            shape, long_form = ResultShape.TUPLES, False
        else:
            shape, long_form = ResultShape.PAIRS, wants_star
        return TextJoinQuery(
            relation=stored[0],
            join_predicates=tuple(text_predicates),
            text_selections=tuple(text_selections),
            relation_predicate=conjoin(local.get(stored[0], [])),
            shape=shape,
            long_form=long_form,
        )

    return MultiJoinQuery(
        relations=tuple(stored),
        text_predicates=tuple(text_predicates),
        text_selections=tuple(text_selections),
        join_predicates=tuple(join_predicates),
        local_predicates=tuple(
            (relation, conjoin(expressions))
            for relation, expressions in local.items()
        ),
        long_form=wants_star,
        text_source=text_source,
    )


# ----------------------------------------------------------------------
# rendering (the inverse of parse_query, for logging and round-trips)
# ----------------------------------------------------------------------
def _render_literal(value: Any) -> str:
    if isinstance(value, str):
        return f"'{value}'"
    return str(value)


def _render_expression(expression: Expression) -> List[str]:
    """Render a parser-produced expression back to WHERE conjunct strings."""
    from repro.relational.expressions import And, Literal

    if isinstance(expression, And):
        out: List[str] = []
        for operand in expression.operands:
            out.extend(_render_expression(operand))
        return out
    if isinstance(expression, Comparison):
        left = expression.left
        right = expression.right
        if isinstance(left, ColumnRef):
            if isinstance(right, Literal):
                return [f"{left.name} {expression.op} {_render_literal(right.value)}"]
            if isinstance(right, ColumnRef):
                return [f"{left.name} {expression.op} {right.name}"]
    raise PlanError(f"cannot render expression {expression!r} to surface syntax")


def render_query(
    query: Union[TextJoinQuery, MultiJoinQuery],
    text_source: str = "mercury",
) -> str:
    """Render a query back to the SQL-like surface syntax.

    ``parse_query(render_query(q)) == q`` for every query the parser can
    produce (property-tested); only expressions the parser itself emits
    (conjunctions of column-vs-literal / column-vs-column comparisons)
    are renderable.
    """
    conjuncts: List[str] = []
    if isinstance(query, TextJoinQuery):
        source = text_source
        relations = [query.relation, source]
        if query.shape is ResultShape.DOCIDS:
            select = "docid"
        elif query.shape is ResultShape.TUPLES:
            select = ", ".join(
                f"{query.relation}.{column.split('.', 1)[-1]}"
                for column in query.join_columns
            )
        elif query.long_form:
            select = "*"
        else:
            select = f"{query.relation}.{query.join_columns[0].split('.', 1)[-1]}, {source}.title"
        if query.relation_predicate is not None:
            conjuncts.extend(_render_expression(query.relation_predicate))
        for selection in query.text_selections:
            conjuncts.append(f"'{selection.term}' in {source}.{selection.field}")
        for predicate in query.join_predicates:
            conjuncts.append(f"{predicate.column} in {source}.{predicate.field}")
    else:
        source = query.text_source
        relations = list(query.relations) + [source]
        # The multi-join select list only carries long_form; any explicit
        # column list round-trips to long_form=False.
        if query.long_form:
            select = "*"
        else:
            select = f"{query.relations[0]}.name, {source}.docid"
        for relation, expression in query.local_predicates:
            conjuncts.extend(_render_expression(expression))
        for join_predicate in query.join_predicates:
            conjuncts.extend(_render_expression(join_predicate.expression))
        for selection in query.text_selections:
            conjuncts.append(f"'{selection.term}' in {source}.{selection.field}")
        for predicate in query.text_predicates:
            conjuncts.append(f"{predicate.column} in {source}.{predicate.field}")

    text = f"select {select} from {', '.join(relations)}"
    if conjuncts:
        text += " where " + " and ".join(conjuncts)
    return text
