"""Runtime re-optimization (the [CDY] guard, sketched at the end of
Section 5, implemented).

"Although probe, followed by relational text processing is an attractive
join method, it suffers from the danger that if the selectivity and
fanout estimates are unreliable, then too many documents are fetched.
We rely on runtime optimization techniques to address such difficulties."

:func:`execute_adaptively` runs the optimizer's ranked method choices in
order.  Fetch-bounded methods (P+RTP) are armed with a cap derived from
their own cost prediction (``cap = safety_factor * predicted fetch``);
when a method aborts because reality blew past its estimate, execution
falls back to the next-ranked method, accumulating the cost already
spent — exactly what a runtime re-optimizer pays for a mis-estimate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.core.costmodel import QueryCostInputs
from repro.core.joinmethods import JoinContext, MethodExecution, ProbeRtp
from repro.core.optimizer.single_join import MethodChoice, enumerate_method_choices
from repro.core.query import TextJoinQuery
from repro.errors import JoinMethodError, OptimizationError

__all__ = ["AdaptiveAttempt", "AdaptiveExecution", "execute_adaptively"]


@dataclass(frozen=True)
class AdaptiveAttempt:
    """One attempted method: either completed or aborted by its guard."""

    method: str
    predicted_cost: float
    aborted: bool
    reason: Optional[str] = None


@dataclass
class AdaptiveExecution:
    """The final execution plus the attempt trail and total cost."""

    execution: MethodExecution
    attempts: List[AdaptiveAttempt]
    total_cost: float

    @property
    def fell_back(self) -> bool:
        return len(self.attempts) > 1


def _armed(choice: MethodChoice, inputs: QueryCostInputs, safety_factor: float):
    """Arm fetch-bounded methods with a prediction-derived cap."""
    method = choice.method
    if isinstance(method, ProbeRtp):
        predicted_fetch = inputs.total_documents(
            inputs.distinct(method.probe_columns), method.probe_columns
        )
        cap = max(1, math.ceil(safety_factor * max(predicted_fetch, 1.0)))
        return ProbeRtp(method.probe_columns, fetch_cap=cap)
    return method


def execute_adaptively(
    query: TextJoinQuery,
    context: JoinContext,
    inputs: QueryCostInputs,
    safety_factor: float = 4.0,
) -> AdaptiveExecution:
    """Run the ranked choices with runtime guards and fallback.

    ``safety_factor`` scales each guarded method's predicted document
    fetch into its runtime cap; 4x tolerates ordinary estimation noise
    while still catching order-of-magnitude misestimates.
    """
    if safety_factor <= 0:
        raise OptimizationError("safety_factor must be positive")
    choices = enumerate_method_choices(query, inputs)
    if not choices:
        raise OptimizationError(f"no applicable method for {query!r}")

    attempts: List[AdaptiveAttempt] = []
    before = context.client.ledger.snapshot()
    for choice in choices:
        method = _armed(choice, inputs, safety_factor)
        try:
            execution = method.execute(query, context)
        except JoinMethodError as error:
            attempts.append(
                AdaptiveAttempt(
                    method=method.name,
                    predicted_cost=choice.estimate.total,
                    aborted=True,
                    reason=str(error),
                )
            )
            continue
        attempts.append(
            AdaptiveAttempt(
                method=method.name,
                predicted_cost=choice.estimate.total,
                aborted=False,
            )
        )
        total = context.client.ledger.diff(before).total
        return AdaptiveExecution(
            execution=execution, attempts=attempts, total_cost=total
        )
    raise OptimizationError(
        "every applicable method aborted; raise safety_factor or fix the "
        "statistics"
    )
