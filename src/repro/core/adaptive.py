"""Runtime re-optimization (the [CDY] guard, sketched at the end of
Section 5, implemented).

"Although probe, followed by relational text processing is an attractive
join method, it suffers from the danger that if the selectivity and
fanout estimates are unreliable, then too many documents are fetched.
We rely on runtime optimization techniques to address such difficulties."

:func:`execute_adaptively` runs the optimizer's ranked method choices in
order.  Fetch-bounded methods (P+RTP) are armed with a cap derived from
their own cost prediction (``cap = safety_factor * predicted fetch``).
When a method aborts because reality blew past its estimate, the guard
does not merely fall back — it *re-optimizes*: the aborted attempt's
observed counters (probes sent, successes, documents fetched) become
fresh :class:`~repro.gateway.statistics.PredicateStatistics`, the method
ranking is recomputed with them injected, and execution continues with
the best not-yet-attempted method under the corrected ranking.  A wrong
probe-column choice flips (the corrected fanout re-ranks the probe
sets), and so does wrong SJ batching (distinct-document expectations are
re-derived from the corrected fanouts).

Cost accounting is pinned by regression tests: every attempt's
already-spent ledger charges appear exactly once in ``total_cost`` —
never dropped, never double-counted — whether or not a warm
:class:`~repro.gateway.cache.GatewayCache` answers the fallback's
re-fetches, and when *every* method aborts the raised
:class:`OptimizationError` carries the spent cost and attempt trail
instead of dropping them.

With a :class:`~repro.core.feedback.FeedbackStore` attached, each
abort's true cause is recorded as a q-error event, the observed
statistics persist for future planning, and completed methods record
predicted-vs-measured cost.  Feedback is read-only with respect to the
ledger: it changes plan choice, never the accounting of the plan that
runs (DESIGN invariant 14).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.core.costmodel import QueryCostInputs
from repro.core.feedback import FeedbackStore, corpus_fingerprint, query_key
from repro.core.joinmethods import JoinContext, MethodExecution, ProbeRtp
from repro.core.optimizer.single_join import MethodChoice, enumerate_method_choices
from repro.core.query import TextJoinQuery
from repro.errors import JoinMethodError, OptimizationError, StatisticsError
from repro.gateway.sampling import observed_predicate_statistics

__all__ = ["AdaptiveAttempt", "AdaptiveExecution", "execute_adaptively"]


@dataclass(frozen=True)
class AdaptiveAttempt:
    """One attempted method: either completed or aborted by its guard."""

    method: str
    predicted_cost: float
    aborted: bool
    reason: Optional[str] = None
    #: Ledger charges this attempt alone spent (simulated seconds).  An
    #: abort's sunk cost stays visible instead of vanishing into the sum.
    spent_cost: float = 0.0


@dataclass
class AdaptiveExecution:
    """The final execution plus the attempt trail and total cost."""

    execution: MethodExecution
    attempts: List[AdaptiveAttempt]
    total_cost: float
    #: How many times the ranking was recomputed with observed statistics.
    reoptimizations: int = 0

    @property
    def fell_back(self) -> bool:
        return len(self.attempts) > 1


def _predicted_fetch(method: ProbeRtp, inputs: QueryCostInputs) -> float:
    """The cost model's document-fetch prediction for a P+RTP method.

    Degenerate inputs (empty relations, zero-distinct or all-NULL probe
    columns, an empty corpus) must yield a finite, non-negative number
    or a typed :class:`OptimizationError` — never NaN, a negative cap,
    or a bare ZeroDivisionError.
    """
    try:
        fetch = inputs.total_documents(
            inputs.distinct(method.probe_columns), method.probe_columns
        )
    except StatisticsError as error:
        raise OptimizationError(
            f"cannot arm {method.name}: {error}"
        ) from error
    if not math.isfinite(fetch) or fetch < 0:
        raise OptimizationError(
            f"cannot arm {method.name}: predicted fetch {fetch!r} is not a "
            "finite non-negative number"
        )
    return fetch


def _armed(choice: MethodChoice, inputs: QueryCostInputs, safety_factor: float):
    """Arm fetch-bounded methods with a prediction-derived cap."""
    method = choice.method
    if isinstance(method, ProbeRtp):
        predicted = _predicted_fetch(method, inputs)
        cap = max(1, math.ceil(safety_factor * max(predicted, 1.0)))
        return ProbeRtp(method.probe_columns, fetch_cap=cap)
    return method


def _inputs_with_observation(
    inputs: QueryCostInputs, observed: Dict[str, object]
) -> QueryCostInputs:
    """Cost inputs with an aborted attempt's measurements injected.

    The abort's counters give the probe columns' *joint* behaviour:
    ``successes / probes`` matched, ``fetched / probes`` documents per
    probe (a lower bound — the guard stopped counting at the cap, which
    only understates how wrong the prior was).  Each probed column's
    statistics are replaced with that joint observation; under the
    paper's validated 1-correlated model the joint statistic is the
    minimum, so assigning the joint to every probed column reproduces
    exactly what the guard measured.
    """
    columns = tuple(observed.get("probe_columns", ()))
    probes = int(observed.get("probes", 0))
    if not columns or probes < 1:
        return inputs
    successes = int(observed.get("successes", 0))
    fetched = float(observed.get("fetched", 0.0))
    fields = observed.get("fields", {})
    stats = dict(inputs.predicate_stats)
    for column in columns:
        prior = stats.get(column)
        if prior is None:
            continue
        stats[column] = observed_predicate_statistics(
            column,
            fields.get(column, prior.field),
            probes,
            successes,
            fetched,
        )
    return replace(inputs, predicate_stats=stats)


def _record_abort(
    feedback: Optional[FeedbackStore],
    fingerprint: str,
    method_name: str,
    predicted_fetch: Optional[float],
    observed: Optional[Dict[str, object]],
    reason: str,
) -> None:
    if feedback is None or observed is None:
        return
    feedback.record_event(
        kind="abort",
        label=f"guard:{method_name}",
        estimated=float(predicted_fetch or 0.0),
        actual=float(observed.get("fetched", 0.0)),
        unit="documents",
        detail=reason,
    )
    columns = tuple(observed.get("probe_columns", ()))
    fields = observed.get("fields", {})
    probes = int(observed.get("probes", 0))
    for column in columns:
        field_name = fields.get(column)
        if field_name is None:
            continue
        feedback.observe_predicate(
            fingerprint,
            column,
            field_name,
            searches=probes,
            matched=int(observed.get("successes", 0)),
            documents=float(observed.get("fetched", 0.0)),
        )


def execute_adaptively(
    query: TextJoinQuery,
    context: JoinContext,
    inputs: QueryCostInputs,
    safety_factor: float = 4.0,
    feedback: Optional[FeedbackStore] = None,
    reoptimize: bool = True,
    max_reoptimizations: int = 2,
) -> AdaptiveExecution:
    """Run the ranked choices with runtime guards, re-ranking on abort.

    ``safety_factor`` scales each guarded method's predicted document
    fetch into its runtime cap; 4x tolerates ordinary estimation noise
    while still catching order-of-magnitude misestimates.  With
    ``reoptimize`` (the default) an abort whose guard observed real
    statistics triggers re-enumeration of the method ranking with those
    statistics injected (at most ``max_reoptimizations`` times); already
    attempted methods are never retried.  ``feedback``, when given,
    records abort causes, observed predicate statistics, and completed
    methods' predicted-vs-measured cost — without touching the ledger.
    """
    if safety_factor <= 0:
        raise OptimizationError("safety_factor must be positive")
    choices = enumerate_method_choices(query, inputs)
    if not choices:
        raise OptimizationError(f"no applicable method for {query!r}")

    fingerprint = corpus_fingerprint(context.client.server)
    attempts: List[AdaptiveAttempt] = []
    attempted_names = set()
    reoptimizations = 0
    current_inputs = inputs
    ledger = context.client.ledger
    before = ledger.snapshot()

    queue = list(choices)
    while queue:
        choice = queue.pop(0)
        if choice.name in attempted_names:
            continue
        attempted_names.add(choice.name)
        method = _armed(choice, current_inputs, safety_factor)
        predicted_fetch = (
            _predicted_fetch(choice.method, current_inputs)
            if isinstance(choice.method, ProbeRtp)
            else None
        )
        attempt_before = ledger.snapshot()
        try:
            execution = method.execute(query, context)
        except JoinMethodError as error:
            spent = ledger.diff(attempt_before).total
            attempts.append(
                AdaptiveAttempt(
                    method=method.name,
                    predicted_cost=choice.estimate.total,
                    aborted=True,
                    reason=str(error),
                    spent_cost=spent,
                )
            )
            observed = getattr(error, "observed", None)
            _record_abort(
                feedback,
                fingerprint,
                method.name,
                predicted_fetch,
                observed,
                str(error),
            )
            if (
                observed
                and reoptimize
                and reoptimizations < max_reoptimizations
            ):
                current_inputs = _inputs_with_observation(
                    current_inputs, observed
                )
                reoptimizations += 1
                queue = [
                    fresh
                    for fresh in enumerate_method_choices(query, current_inputs)
                    if fresh.name not in attempted_names
                ]
            continue
        spent = ledger.diff(attempt_before).total
        attempts.append(
            AdaptiveAttempt(
                method=method.name,
                predicted_cost=choice.estimate.total,
                aborted=False,
                spent_cost=spent,
            )
        )
        if feedback is not None:
            feedback.observe_method(
                fingerprint,
                query_key(query),
                method.name,
                estimated_cost=choice.estimate.total,
                actual_cost=spent,
            )
        total = ledger.diff(before).total
        return AdaptiveExecution(
            execution=execution,
            attempts=attempts,
            total_cost=total,
            reoptimizations=reoptimizations,
        )

    spent_total = ledger.diff(before).total
    error = OptimizationError(
        f"every applicable method aborted after spending {spent_total:.3f}s; "
        "raise safety_factor or fix the statistics"
    )
    # The sunk charges and the attempt trail stay visible to the caller
    # (they are on the ledger regardless — dropping them from the error
    # was the accounting bug this module's tests pin).
    error.attempts = attempts
    error.spent_cost = spent_total
    raise error
