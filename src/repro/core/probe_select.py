"""Optimal probe-column selection (Section 5).

Choosing probe columns trades two opposing factors: adding columns makes
the probe *more selective* (more fail-queries avoided) but raises ``N_J``
(more probes sent).  In the worst case all ``2^k`` subsets must be
compared, but Theorem 5.3 bounds the useful probe size: under a
*g*-correlated cost model the optimal probe set has at most
``min(k, 2g)`` columns — so for the 1-correlated model only one- and
two-column probes need be enumerated, an ``O(k^2)`` search.

Example 5.1 shows why the minimum-selectivity column is not necessarily
optimal (``N_i + s_i N`` is what matters), and Example 5.2 shows a
two-column probe dominating every one-column probe; both are reproduced
in the test suite and the E10 benchmark.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.costmodel import (
    CostEstimate,
    QueryCostInputs,
    cost_p_rtp,
    cost_p_ts,
    cost_probe_semijoin,
)
from repro.core.query import TextJoinQuery
from repro.errors import OptimizationError

__all__ = ["ProbeChoice", "candidate_probe_sets", "optimal_probe_columns"]

#: Cost functions per probing variant.
_VARIANTS: dict = {
    "P+TS": cost_p_ts,
    "P+RTP": cost_p_rtp,
    "P": cost_probe_semijoin,
}


@dataclass(frozen=True)
class ProbeChoice:
    """A chosen probe-column set and its predicted cost."""

    columns: Tuple[str, ...]
    estimate: CostEstimate


def candidate_probe_sets(
    query: TextJoinQuery,
    g: int,
    exhaustive: bool = False,
    allow_full: bool = False,
) -> List[Tuple[str, ...]]:
    """Enumerate probe-column subsets to consider.

    By Theorem 5.3 the bounded search stops at ``min(k, 2g)`` columns;
    ``exhaustive=True`` enumerates all ``2^k - 1`` subsets (used by the
    tests to verify the theorem's bound loses nothing).  ``allow_full``
    admits the full join-column set — meaningful for the probe-as-reducer
    (semi-join) variant, pointless for P+TS/P+RTP where the probe would
    duplicate the full query.
    """
    columns = query.join_columns
    k = len(columns)
    max_size = k if exhaustive else min(k, 2 * g)
    out: List[Tuple[str, ...]] = []
    for size in range(1, max_size + 1):
        for subset in itertools.combinations(columns, size):
            if not allow_full and len(subset) == k:
                continue
            out.append(subset)
    return out


def optimal_probe_columns(
    inputs: QueryCostInputs,
    query: TextJoinQuery,
    variant: str = "P+TS",
    exhaustive: bool = False,
) -> Optional[ProbeChoice]:
    """The cheapest probe-column set for a probing variant, or ``None``.

    Returns ``None`` when no candidate subset exists (e.g. a single join
    predicate, where any proper probe subset is empty).
    """
    try:
        cost_function = _VARIANTS[variant]
    except KeyError:
        raise OptimizationError(
            f"unknown probing variant {variant!r}; expected one of "
            f"{sorted(_VARIANTS)}"
        ) from None
    allow_full = variant == "P"
    candidates = candidate_probe_sets(
        query, inputs.g, exhaustive=exhaustive, allow_full=allow_full
    )
    best: Optional[ProbeChoice] = None
    for subset in candidates:
        estimate = cost_function(inputs, query, subset)
        if best is None or estimate.total < best.estimate.total:
            best = ProbeChoice(columns=subset, estimate=estimate)
    return best
