"""EXPLAIN for text-join queries: a readable cost breakdown.

:func:`explain_query` renders what the optimizer sees — the gathered
statistics, every applicable method with its predicted cost decomposed
into the Section-4 components, and the chosen winner — the report a
downstream user reads before trusting a plan.
"""

from __future__ import annotations

from typing import List

from repro.bench.reporting import ascii_table
from repro.core.costmodel import QueryCostInputs
from repro.core.optimizer.single_join import enumerate_method_choices
from repro.core.query import TextJoinQuery

__all__ = ["explain_query"]


def explain_query(
    query: TextJoinQuery,
    inputs: QueryCostInputs,
    exhaustive_probes: bool = False,
    feedback=None,
    fingerprint: str = "",
) -> str:
    """A textual EXPLAIN: statistics, ranked methods, cost components.

    With a :class:`~repro.core.feedback.FeedbackStore` (and the corpus
    ``fingerprint`` its observations were recorded under), the report
    additionally shows which predicates carry runtime observations and
    the store's accumulated q-error summary — what the optimizer has
    *learned* on top of the one-shot statistics.
    """
    lines: List[str] = []
    lines.append(f"Query: {query!r}")
    lines.append("")
    lines.append(
        f"Environment: D={inputs.document_count} documents, "
        f"M={inputs.term_limit} terms/search, g={inputs.g}-correlated model"
    )
    lines.append(
        f"Joining relation: N={inputs.tuple_count} tuples after local selection"
    )

    stat_rows = []
    for column, stats in inputs.predicate_stats.items():
        stat_rows.append(
            [
                column,
                stats.field,
                round(stats.selectivity, 4),
                round(stats.fanout, 4),
                int(inputs.distinct([column])),
            ]
        )
    lines.append("")
    lines.append(
        ascii_table(
            ["join column", "text field", "s_i", "f_i", "N_i"],
            stat_rows,
            title="Predicate statistics",
        )
    )

    if inputs.selection.present:
        lines.append("")
        lines.append(
            f"Text selections: E_sel={inputs.selection.result_size:.0f} "
            f"documents, I_sel={inputs.selection.postings:.0f} postings, "
            f"{inputs.selection.term_count} basic terms"
        )

    choices = enumerate_method_choices(
        query, inputs, exhaustive_probes=exhaustive_probes
    )
    method_rows = []
    for rank, choice in enumerate(choices, start=1):
        estimate = choice.estimate
        method_rows.append(
            [
                rank,
                estimate.method,
                round(estimate.total, 2),
                round(estimate.invocation, 2),
                round(estimate.processing, 2),
                round(estimate.transmission_short, 2),
                round(estimate.transmission_long, 2),
                round(estimate.rtp, 2),
                round(estimate.searches, 1),
            ]
        )
    lines.append("")
    lines.append(
        ascii_table(
            ["#", "method", "total", "invoke", "process", "short", "long",
             "rtp", "searches"],
            method_rows,
            title="Method ranking (predicted seconds)",
        )
    )
    lines.append("")
    lines.append(f"Chosen: {choices[0].estimate.method}")

    if feedback is not None:
        observation_rows = []
        for column, stats in inputs.predicate_stats.items():
            observation = feedback.observation(
                fingerprint, column, stats.field
            )
            if observation is None:
                continue
            observed = observation.statistics()
            observation_rows.append(
                [
                    column,
                    observation.searches,
                    round(observed.selectivity, 4),
                    round(observed.fanout, 4),
                ]
            )
        lines.append("")
        if observation_rows:
            lines.append(
                ascii_table(
                    ["join column", "searches", "observed s_i", "observed f_i"],
                    observation_rows,
                    title="Runtime feedback (blended into the statistics above)",
                )
            )
        else:
            lines.append("Runtime feedback: no observations for this corpus yet")
        report = feedback.report()
        if len(report):
            lines.append("")
            lines.append(report.render(top=5))
    return "\n".join(lines)
