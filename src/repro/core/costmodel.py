"""The cost model for foreign-join methods (Sections 4.1–4.3).

The model prices each join method from:

- the cost constants ``c_i, c_p, c_s, c_l, c_a`` (Section 4.1, Table 1);
- per-predicate selectivity ``s_i`` and fanout ``f_i`` under a
  *g*-correlated joint model (Section 4.2);
- relational-side statistics: ``N`` (joining tuples) and distinct counts
  ``N_J`` over column sets ``J``.

Useful expressions (Section 4.3), for ``n`` searches over columns ``J``:

- ``V(n, J) = n * F_{g,J}``           — total documents returned;
- ``U(n, J) = D * (1 - (1 - F/D)^n)`` — *distinct* documents returned;
- ``I(n, J) = n * sum_{i in J} f_i``  — postings processed (unit column
  width / one-document postings, as the paper assumes).

Text *selections* participate as a pseudo-predicate: their conjunction
has a known (measured or estimated) result size ``E_sel`` and postings
footprint ``I_sel``, which join the fanout pool for the g-correlated
joint fanout and add to the postings of every search that carries them.
Under the paper's validated 1-correlated model this makes a highly
selective selection cap every per-search result size — exactly the
effect seen in the Q1/Q3 experiments.

Formulas for TS and P+TS follow the paper verbatim; the RTP/SJ formula
details were left to the companion technical report ([CDY]), so we derive
them from the same components (each derivation is documented on the
function).  Long-form transmission is modeled uniformly: every method
that must deliver long-form pairs retrieves each distinct matching
document once at ``c_l`` — Section 7.2's "the number of long-form
documents transmitted is the same for both methods".
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.query import ResultShape, TextJoinQuery
from repro.errors import StatisticsError
from repro.gateway.costs import CostConstants
from repro.gateway.statistics import PredicateStatistics, joint_fanout, joint_selectivity

__all__ = [
    "SelectionStatistics",
    "QueryCostInputs",
    "VectorCostInputs",
    "CostEstimate",
    "cost_ts",
    "cost_probe_phase",
    "cost_p_ts",
    "cost_rtp",
    "cost_sj",
    "cost_sj_rtp",
    "cost_p_rtp",
    "cost_probe_semijoin",
    "cost_vector_topk",
    "cost_vector_scan",
]


@dataclass(frozen=True)
class SelectionStatistics:
    """Aggregate statistics for the query's text-selection conjunction.

    ``result_size`` (``E_sel``) is the number of documents matching all
    text selections together; ``postings`` (``I_sel``) the inverted-list
    postings read to evaluate them; ``term_count`` the basic terms they
    occupy in each search (relevant to semi-join batching).
    """

    result_size: float = 0.0
    postings: float = 0.0
    term_count: int = 0
    present: bool = False

    @classmethod
    def absent(cls) -> "SelectionStatistics":
        return cls()


@dataclass
class QueryCostInputs:
    """Everything the Section 4.3 formulas need for one query.

    ``predicate_stats`` maps each join column to its
    :class:`PredicateStatistics`; ``distinct_counts`` maps frozensets of
    join columns to exact joint distinct counts when known (missing
    entries fall back to the paper's ``min(prod N_i, N)`` overestimate,
    which "ensures that probing is favored only when the default method
    ... is expected to perform significantly worse").
    """

    constants: CostConstants
    document_count: int  # D
    term_limit: int  # M
    g: int  # correlation parameter
    tuple_count: int  # N: joining tuples after the relational selection
    predicate_stats: Dict[str, PredicateStatistics]
    selection: SelectionStatistics = field(default_factory=SelectionStatistics.absent)
    distinct_counts: Dict[FrozenSet[str], int] = field(default_factory=dict)
    #: Batched-invocation limit when the text system supports the Section 8
    #: multi-query interface; ``None`` for a plain server.
    batch_limit: Optional[int] = None
    #: Fields visible in short-form results (``None`` = all).  RTP-family
    #: methods can only string-match predicates on visible fields.
    rtp_fields: Optional[FrozenSet[str]] = None
    #: The backend's predicate semantics.  The Section 3–5 method space
    #: is priced for Boolean sources only; the enumerator refuses these
    #: inputs for any other kind (per-backend method legality).
    source_kind: str = "boolean"

    def fields_visible(self, fields) -> bool:
        """Can RTP see all of these fields in short-form documents?"""
        if self.rtp_fields is None:
            return True
        return set(fields) <= set(self.rtp_fields)

    # ------------------------------------------------------------------
    # statistics accessors
    # ------------------------------------------------------------------
    @property
    def join_columns(self) -> Tuple[str, ...]:
        return tuple(self.predicate_stats)

    def stats_for(self, columns: Sequence[str]) -> List[PredicateStatistics]:
        out = []
        for column in columns:
            try:
                out.append(self.predicate_stats[column])
            except KeyError:
                raise StatisticsError(
                    f"no predicate statistics for column {column!r}"
                ) from None
        return out

    def distinct(self, columns: Sequence[str]) -> float:
        """``N_J``: distinct tuples in the projection over ``columns``.

        Exact when registered; otherwise ``min(prod_i N_i, N)``.
        """
        key = frozenset(columns)
        if key in self.distinct_counts:
            return float(self.distinct_counts[key])
        product = 1.0
        for column in columns:
            single = frozenset([column])
            if single in self.distinct_counts:
                product *= self.distinct_counts[single]
            else:
                raise StatisticsError(
                    f"no distinct count for column {column!r}"
                )
        return float(min(product, self.tuple_count))

    # ------------------------------------------------------------------
    # Section 4.3 expressions
    # ------------------------------------------------------------------
    def search_fanout(self, columns: Sequence[str]) -> float:
        """``F_{g,J}`` for a search carrying selections + predicates on J.

        The selection conjunction contributes its result size to the
        fanout pool (it behaves like one more predicate whose per-term
        fanout is ``E_sel``).
        """
        fanouts = [stats.fanout for stats in self.stats_for(columns)]
        if self.selection.present:
            fanouts.append(self.selection.result_size)
        return joint_fanout(fanouts, self.g, self.document_count)

    def probe_success(self, columns: Sequence[str]) -> float:
        """``S_{g,J}``: probability a probe on ``J`` succeeds.

        An empty selection result makes every probe fail.
        """
        selectivities = [stats.selectivity for stats in self.stats_for(columns)]
        if self.selection.present and self.selection.result_size <= 0:
            return 0.0
        return joint_selectivity(selectivities, self.g)

    def postings_per_search(self, columns: Sequence[str]) -> float:
        """Postings read by one search: selection lists + one list per pred."""
        postings = sum(stats.fanout for stats in self.stats_for(columns))
        if self.selection.present:
            postings += self.selection.postings
        return postings

    def total_documents(self, n: float, columns: Sequence[str]) -> float:
        """``V(n, J) = n * F_{g,J}``."""
        return n * self.search_fanout(columns)

    def distinct_documents(self, n: float, columns: Sequence[str]) -> float:
        """``U(n, J) = D (1 - (1 - F/D)^n)`` — distinct docs over n searches."""
        if n <= 0:
            return 0.0
        fanout = self.search_fanout(columns)
        d = float(self.document_count)
        if d <= 0:
            return 0.0
        ratio = min(max(fanout / d, 0.0), 1.0)
        return d * (1.0 - (1.0 - ratio) ** n)

    def expected_join_documents(self) -> float:
        """Distinct documents in the final join result (long-form count)."""
        return self.distinct_documents(
            self.distinct(self.join_columns), self.join_columns
        )


@dataclass(frozen=True)
class CostEstimate:
    """A priced plan fragment, broken down by cost component."""

    method: str
    invocation: float = 0.0
    processing: float = 0.0
    transmission_short: float = 0.0
    transmission_long: float = 0.0
    rtp: float = 0.0
    searches: float = 0.0  # predicted number of invocations

    @property
    def total(self) -> float:
        return (
            self.invocation
            + self.processing
            + self.transmission_short
            + self.transmission_long
            + self.rtp
        )

    def plus(self, other: "CostEstimate", method: Optional[str] = None) -> "CostEstimate":
        """Component-wise sum (for composing probe + substitution phases)."""
        return CostEstimate(
            method=method or self.method,
            invocation=self.invocation + other.invocation,
            processing=self.processing + other.processing,
            transmission_short=self.transmission_short + other.transmission_short,
            transmission_long=self.transmission_long + other.transmission_long,
            rtp=self.rtp + other.rtp,
            searches=self.searches + other.searches,
        )

    def __repr__(self) -> str:
        return f"CostEstimate({self.method}, total={self.total:.2f}s)"


def _long_form_cost(inputs: QueryCostInputs, query: TextJoinQuery) -> float:
    """Long-form retrieval cost, identical across methods (Section 7.2)."""
    if query.shape is ResultShape.PAIRS and query.long_form:
        return inputs.constants.long_form * inputs.expected_join_documents()
    return 0.0


# ----------------------------------------------------------------------
# method cost formulas
# ----------------------------------------------------------------------
def cost_ts(inputs: QueryCostInputs, query: TextJoinQuery) -> CostEstimate:
    """``C_TS = c_i n + c_p I(n,K) + c_s V(n,K)`` with ``n = N_K``.

    ``n`` is the number of distinct joining tuples over the join columns
    (the paper's distinct-only TS variant used in the experiments).
    """
    columns = query.join_columns
    n = inputs.distinct(columns)
    constants = inputs.constants
    return CostEstimate(
        method="TS",
        searches=n,
        invocation=constants.invocation * n,
        processing=constants.per_posting * n * inputs.postings_per_search(columns),
        transmission_short=constants.short_form * inputs.total_documents(n, columns),
        transmission_long=_long_form_cost(inputs, query),
    )


def cost_probe_phase(
    inputs: QueryCostInputs, query: TextJoinQuery, probe_columns: Sequence[str]
) -> CostEstimate:
    """``C_P = c_i N_J + c_p I(N_J, J) + c_s V(N_J, J)``.

    Probes request the short form, so they pay short-form transmission on
    every matching document (the paper's ``c_s V`` term).
    """
    n = inputs.distinct(probe_columns)
    constants = inputs.constants
    return CostEstimate(
        method="P",
        searches=n,
        invocation=constants.invocation * n,
        processing=constants.per_posting
        * n
        * inputs.postings_per_search(probe_columns),
        transmission_short=constants.short_form
        * inputs.total_documents(n, probe_columns),
    )


def cost_p_ts(
    inputs: QueryCostInputs, query: TextJoinQuery, probe_columns: Sequence[str]
) -> CostEstimate:
    """``C_{P+TS} = C_P + c_i R + c_p I(R,K) + c_s V(R,K)``, ``R = N_K S_{g,J}``.

    The substitution phase runs only for tuples whose probes succeed.
    """
    columns = query.join_columns
    probe = cost_probe_phase(inputs, query, probe_columns)
    survivors = inputs.distinct(columns) * inputs.probe_success(probe_columns)
    constants = inputs.constants
    substitution = CostEstimate(
        method="TS-phase",
        searches=survivors,
        invocation=constants.invocation * survivors,
        processing=constants.per_posting
        * survivors
        * inputs.postings_per_search(columns),
        transmission_short=constants.short_form
        * inputs.total_documents(survivors, columns),
        transmission_long=_long_form_cost(inputs, query),
    )
    bare = ",".join(column.split(".")[-1] for column in probe_columns)
    return probe.plus(substitution, method=f"P({bare})+TS")


def cost_rtp(inputs: QueryCostInputs, query: TextJoinQuery) -> CostEstimate:
    """One selection-only search, then ``c_a`` per (document, tuple) match.

    ``C_RTP = c_i + c_p I_sel + c_s E_sel + c_a E_sel N`` (derived; the
    paper omits the formula but describes exactly these components).
    """
    if not inputs.selection.present:
        raise StatisticsError("RTP requires text selections")
    constants = inputs.constants
    e_sel = inputs.selection.result_size
    return CostEstimate(
        method="RTP",
        searches=1,
        invocation=constants.invocation,
        processing=constants.per_posting * inputs.selection.postings,
        transmission_short=constants.short_form * e_sel,
        rtp=constants.rtp_per_document * e_sel * inputs.tuple_count,
        transmission_long=_long_form_cost(inputs, query),
    )


def _sj_batches(inputs: QueryCostInputs, query: TextJoinQuery) -> float:
    """Number of OR-batched searches: ``ceil(N_K k / (M - sel_terms))``."""
    columns = query.join_columns
    terms_per_conjunct = len(columns)
    capacity = inputs.term_limit - inputs.selection.term_count
    if capacity < terms_per_conjunct:
        raise StatisticsError(
            "semi-join conjunct does not fit in the term limit"
        )
    n_k = inputs.distinct(columns)
    return math.ceil(n_k * terms_per_conjunct / capacity) if n_k > 0 else 0.0


def cost_sj(inputs: QueryCostInputs, query: TextJoinQuery) -> CostEstimate:
    """Semi-join: few big searches; result is the distinct-document union.

    ``C_SJ = c_i n_b + c_p (I(N_K, K) + n_b I_sel) + c_s U(N_K, K)``.
    The postings term charges each conjunct's inverted lists once plus
    the selection lists once per batch (they are re-sent with every
    batch); transmission uses ``U`` because the batched result set is
    de-duplicated by the text system.
    """
    columns = query.join_columns
    constants = inputs.constants
    n_k = inputs.distinct(columns)
    batches = _sj_batches(inputs, query)
    conjunct_postings = n_k * sum(
        stats.fanout for stats in inputs.stats_for(columns)
    )
    selection_postings = batches * inputs.selection.postings
    return CostEstimate(
        method="SJ",
        searches=batches,
        invocation=constants.invocation * batches,
        processing=constants.per_posting * (conjunct_postings + selection_postings),
        transmission_short=constants.short_form
        * inputs.distinct_documents(n_k, columns),
    )


def cost_sj_rtp(inputs: QueryCostInputs, query: TextJoinQuery) -> CostEstimate:
    """``C_{SJ+RTP} = C_SJ + c_a U(N_K,K) N`` plus long-form retrieval."""
    base = cost_sj(inputs, query)
    columns = query.join_columns
    documents = inputs.distinct_documents(inputs.distinct(columns), columns)
    extra = CostEstimate(
        method="RTP-phase",
        rtp=inputs.constants.rtp_per_document * documents * inputs.tuple_count,
        transmission_long=_long_form_cost(inputs, query),
    )
    return base.plus(extra, method="SJ+RTP")


def cost_p_rtp(
    inputs: QueryCostInputs, query: TextJoinQuery, probe_columns: Sequence[str]
) -> CostEstimate:
    """Probes double as fetches; remaining predicates matched relationally.

    ``C_{P+RTP} = C_P(J) + c_a V(N_J, J) (N / N_J)`` plus long-form
    retrieval: each fetched document is compared against its probe
    group's tuples (average group size ``N / N_J``).
    """
    probe = cost_probe_phase(inputs, query, probe_columns)
    n_j = inputs.distinct(probe_columns)
    fetched = inputs.total_documents(n_j, probe_columns)
    group_size = inputs.tuple_count / n_j if n_j > 0 else 0.0
    extra = CostEstimate(
        method="RTP-phase",
        rtp=inputs.constants.rtp_per_document * fetched * group_size,
        transmission_long=_long_form_cost(inputs, query),
    )
    bare = ",".join(column.split(".")[-1] for column in probe_columns)
    return probe.plus(extra, method=f"P({bare})+RTP")


def cost_probe_semijoin(
    inputs: QueryCostInputs, query: TextJoinQuery, probe_columns: Sequence[str]
) -> CostEstimate:
    """Probing alone (the TUPLES-shaped reducer): exactly the probe phase."""
    probe = cost_probe_phase(inputs, query, probe_columns)
    bare = ",".join(column.split(".")[-1] for column in probe_columns)
    return CostEstimate(
        method=f"P({bare})",
        invocation=probe.invocation,
        processing=probe.processing,
        transmission_short=probe.transmission_short,
        searches=probe.searches,
    )


# ----------------------------------------------------------------------
# vector-backend method cost formulas (Section 8 / heterogeneous plans)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class VectorCostInputs:
    """What the vector-backend strategies need for one ranked predicate.

    The Section 4.3 machinery does not transfer: a ranked predicate has
    no selectivity/fanout in the Boolean sense — its result size is the
    query's own ``top_k`` (or the threshold survivors), so the two
    strategies are priced directly from the backend's constants:

    - ``binding_count`` (``n``): distinct non-NULL join bindings;
    - ``postings_per_search``: mean inverted-list postings one ranked
      search reads (measured from per-binding document frequencies);
    - ``expected_results``: mean short-form documents one search returns
      (bounded above by ``top_k``);
    - ``scan_visible``: whether the ranked field travels in short forms,
      which is what lets V-SCAN score locally (the RTP applicability
      condition, transplanted).
    """

    constants: CostConstants
    document_count: int  # D
    binding_count: float  # n
    postings_per_search: float
    expected_results: float
    top_k: Optional[int] = 10
    threshold: float = 0.0
    scan_visible: bool = True

    def __post_init__(self) -> None:
        if self.binding_count < 0:
            raise StatisticsError("binding count must be non-negative")
        if self.document_count < 0:
            raise StatisticsError("document count must be non-negative")
        if self.postings_per_search < 0:
            raise StatisticsError("postings per search must be non-negative")
        if self.expected_results < 0:
            raise StatisticsError("expected results must be non-negative")


def cost_vector_topk(inputs: VectorCostInputs) -> CostEstimate:
    """One ranked search per distinct binding (the TS analogue).

    ``C_V-TOPK = c_i n + c_p n I + c_s n E`` where ``I`` is the mean
    postings per search and ``E <= top_k`` the mean result size.
    """
    n = inputs.binding_count
    constants = inputs.constants
    k = "all" if inputs.top_k is None else inputs.top_k
    return CostEstimate(
        method=f"V-TOPK(k={k})",
        searches=n,
        invocation=constants.invocation * n,
        processing=constants.per_posting * n * inputs.postings_per_search,
        transmission_short=constants.short_form * n * inputs.expected_results,
    )


def cost_vector_scan(inputs: VectorCostInputs) -> CostEstimate:
    """One corpus dump, then local scoring per (document, binding) pair.

    ``C_V-SCAN = c_i + c_s D + c_a D n``: a single empty-query search at
    a negative threshold transmits every short form once (no postings —
    nothing is looked up), after which each binding is scored locally
    against all ``D`` documents at ``c_a`` apiece (the RTP analogue).
    Only applicable when the ranked field is short-form visible.
    """
    if not inputs.scan_visible:
        raise StatisticsError(
            "V-SCAN needs the ranked field in short-form results"
        )
    constants = inputs.constants
    d = float(inputs.document_count)
    return CostEstimate(
        method="V-SCAN",
        searches=1,
        invocation=constants.invocation,
        transmission_short=constants.short_form * d,
        rtp=constants.rtp_per_document * d * inputs.binding_count,
    )
