"""The paper's primary contribution: text-join execution and optimization.

- :mod:`query` — the text-join query model;
- :mod:`joinmethods` — TS, RTP, SJ, SJ+RTP, P+TS, P+RTP;
- :mod:`costmodel` / :mod:`inputs` — the Section 4 cost model;
- :mod:`probe_select` — Section 5 optimal probe columns (Theorem 5.3);
- :mod:`optimizer` — single-join choice and the PrL-tree enumerator;
- :mod:`executor` — runs multi-join plans end to end.
"""

from repro.core.costmodel import (
    CostEstimate,
    QueryCostInputs,
    SelectionStatistics,
    cost_p_rtp,
    cost_p_ts,
    cost_probe_phase,
    cost_probe_semijoin,
    cost_rtp,
    cost_sj,
    cost_sj_rtp,
    cost_ts,
)
from repro.core.adaptive import (
    AdaptiveAttempt,
    AdaptiveExecution,
    execute_adaptively,
)
from repro.core.executor import NodeActual, PlanExecution, execute_plan
from repro.core.feedback import (
    EstimateRecord,
    FeedbackStore,
    PredicateObservation,
    QErrorReport,
    corpus_fingerprint,
    plan_qerror_report,
    qerror,
    query_key,
)
from repro.core.inputs import build_cost_inputs, distinct_counts_for
from repro.core.joinmethods import (
    BatchedTupleSubstitution,
    JoinContext,
    JoinMethod,
    MethodExecution,
    ProbeRtp,
    cost_batched_ts,
    ProbeSemiJoin,
    ProbeTupleSubstitution,
    RelationalTextProcessing,
    SemiJoin,
    SemiJoinRtp,
    TupleSubstitution,
)
from repro.core.optimizer import (
    MethodChoice,
    MultiJoinQuery,
    OptimizedPlan,
    PlanEstimator,
    RelationalJoinPredicate,
    choose_join_method,
    enumerate_method_choices,
    optimize_multijoin,
)
from repro.core.probe_select import (
    ProbeChoice,
    candidate_probe_sets,
    optimal_probe_columns,
)
from repro.core.query import (
    JoinedPair,
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
)
from repro.core.explain import explain_query
from repro.core.surface import parse_query, render_query
from repro.core.textmatch import TextMatch, value_matches_field

__all__ = [
    "TextJoinQuery",
    "TextJoinPredicate",
    "TextSelection",
    "ResultShape",
    "JoinedPair",
    "JoinContext",
    "JoinMethod",
    "MethodExecution",
    "TupleSubstitution",
    "RelationalTextProcessing",
    "SemiJoin",
    "SemiJoinRtp",
    "ProbeTupleSubstitution",
    "ProbeRtp",
    "ProbeSemiJoin",
    "QueryCostInputs",
    "SelectionStatistics",
    "CostEstimate",
    "cost_ts",
    "cost_probe_phase",
    "cost_p_ts",
    "cost_rtp",
    "cost_sj",
    "cost_sj_rtp",
    "cost_p_rtp",
    "cost_probe_semijoin",
    "build_cost_inputs",
    "distinct_counts_for",
    "ProbeChoice",
    "candidate_probe_sets",
    "optimal_probe_columns",
    "MethodChoice",
    "choose_join_method",
    "enumerate_method_choices",
    "MultiJoinQuery",
    "RelationalJoinPredicate",
    "PlanEstimator",
    "OptimizedPlan",
    "optimize_multijoin",
    "PlanExecution",
    "execute_plan",
    "TextMatch",
    "value_matches_field",
    "BatchedTupleSubstitution",
    "cost_batched_ts",
    "AdaptiveAttempt",
    "AdaptiveExecution",
    "execute_adaptively",
    "NodeActual",
    "EstimateRecord",
    "FeedbackStore",
    "PredicateObservation",
    "QErrorReport",
    "corpus_fingerprint",
    "plan_qerror_report",
    "qerror",
    "query_key",
    "parse_query",
    "render_query",
    "explain_query",
]
