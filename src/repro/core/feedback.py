"""Closing the estimator loop: q-error feedback statistics (ROADMAP item 3).

Section 5 ends with the [CDY] warning that probe-based plans are only
attractive "if the selectivity and fanout estimates are reliable" and
points at runtime optimization as the remedy.  ``core/adaptive.py``
implements the abort-and-fallback guard; this module makes the optimizer
*learn* from the misestimate it just paid for:

- :func:`qerror` and :class:`EstimateRecord` pair one estimated quantity
  with its measured actual; :class:`QErrorReport` aggregates them
  (max/median q-error, worst-offender ranking) over plan nodes, method
  costs, and predicate statistics;
- :class:`PredicateObservation` accumulates the per-predicate evidence
  execution already produced — searches sent, searches that matched,
  documents returned — for free (the :class:`~repro.gateway.costs.
  CostLedger` charged them anyway);
- :class:`FeedbackStore` persists those observations as JSON on disk,
  keyed by corpus fingerprint plus canonical predicate/query key, and
  blends them into future :class:`~repro.gateway.statistics.
  PredicateStatistics` with a configurable prior-vs-observed weighting.

The charge-identity contract (DESIGN invariant 14): feedback reads the
ledger and the result sets — it never issues a foreign call and never
alters what an executing plan charges.  Feedback changes *plan choice*,
not the accounting of the plan that runs.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Dict, List, Optional, Sequence

from repro.errors import FeedbackError
from repro.gateway.sampling import observed_predicate_statistics
from repro.gateway.statistics import PredicateStatistics, blend_statistics

__all__ = [
    "qerror",
    "EstimateRecord",
    "QErrorReport",
    "PredicateObservation",
    "FeedbackStore",
    "corpus_fingerprint",
    "query_key",
    "plan_qerror_report",
]

#: Current on-disk payload format.
STORE_FORMAT = 1

#: Rolling caps: the store keeps the most recent entries, never grows
#: without bound across long-lived serving processes.
MAX_EVENTS = 256
MAX_METHOD_RUNS = 64

#: Default equivalent sample size granted to the prior estimate when
#: blending (16 ~ one short sampling round: observations need comparable
#: evidence before they move the estimate materially).
DEFAULT_PRIOR_WEIGHT = 16.0


def qerror(estimated: float, actual: float, floor: float = 1.0) -> float:
    """The q-error ``max(est/act, act/est)`` with both sides floored.

    The floor keeps the ratio defined when either side is zero (an
    estimated-empty result that came back non-empty is exactly the case
    feedback must flag, not crash on).  1.0 is the natural floor for
    cardinalities; pass a smaller one for quantities measured in seconds.
    """
    if floor <= 0:
        raise FeedbackError("qerror floor must be positive")
    est = max(abs(estimated), floor)
    act = max(abs(actual), floor)
    return max(est / act, act / est)


@dataclass(frozen=True)
class EstimateRecord:
    """One estimated quantity paired with its measured actual."""

    label: str  # what was estimated ("node:TextJoin", "method:TS", ...)
    kind: str  # "node" | "method" | "predicate" | "abort"
    estimated: float
    actual: float
    unit: str = "rows"  # "rows" | "seconds" | "documents" | "fanout"
    detail: str = ""

    @property
    def q(self) -> float:
        floor = 0.001 if self.unit == "seconds" else 1.0
        return qerror(self.estimated, self.actual, floor=floor)

    def as_dict(self) -> Dict[str, Any]:
        return {
            "label": self.label,
            "kind": self.kind,
            "estimated": self.estimated,
            "actual": self.actual,
            "unit": self.unit,
            "detail": self.detail,
            "qerror": self.q,
        }


@dataclass
class QErrorReport:
    """Aggregated estimate-vs-actual records for one or many runs."""

    records: List[EstimateRecord] = field(default_factory=list)

    def add(self, record: EstimateRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def max_q(self) -> float:
        return max((record.q for record in self.records), default=1.0)

    @property
    def median_q(self) -> float:
        if not self.records:
            return 1.0
        ordered = sorted(record.q for record in self.records)
        mid = len(ordered) // 2
        if len(ordered) % 2:
            return ordered[mid]
        return (ordered[mid - 1] + ordered[mid]) / 2.0

    def worst(self, n: int = 5) -> List[EstimateRecord]:
        """The ``n`` records with the largest q-error, worst first."""
        return sorted(self.records, key=lambda r: r.q, reverse=True)[:n]

    def for_kind(self, kind: str) -> "QErrorReport":
        return QErrorReport(
            [record for record in self.records if record.kind == kind]
        )

    def as_dict(self) -> Dict[str, Any]:
        return {
            "records": len(self.records),
            "max_qerror": self.max_q,
            "median_qerror": self.median_q,
            "worst": [record.as_dict() for record in self.worst()],
        }

    def render(self, top: int = 10) -> str:
        """Human-readable report: summary line plus worst offenders."""
        from repro.bench.reporting import ascii_table

        lines = [
            f"{len(self.records)} estimate/actual pairs, "
            f"median q-error {self.median_q:.2f}, max {self.max_q:.2f}"
        ]
        if self.records:
            rows = [
                [
                    record.label,
                    record.kind,
                    round(record.estimated, 3),
                    round(record.actual, 3),
                    record.unit,
                    round(record.q, 2),
                ]
                for record in self.worst(top)
            ]
            lines.append(
                ascii_table(
                    ["label", "kind", "estimated", "actual", "unit", "q"],
                    rows,
                    title="Worst offenders (by q-error)",
                )
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class PredicateObservation:
    """Accumulated runtime evidence for one ``column in field`` predicate."""

    column: str
    field: str
    searches: int
    matched: int
    documents: float

    def merge(self, other: "PredicateObservation") -> "PredicateObservation":
        return replace(
            self,
            searches=self.searches + other.searches,
            matched=self.matched + other.matched,
            documents=self.documents + other.documents,
        )

    def statistics(self) -> PredicateStatistics:
        """The observation as well-formed :class:`PredicateStatistics`."""
        return observed_predicate_statistics(
            self.column, self.field, self.searches, self.matched, self.documents
        )


def corpus_fingerprint(server: Any) -> str:
    """A stable identity for the corpus feedback was observed against.

    Combines document count, the store's mutation version, and the field
    vocabulary — any corpus mutation or swap changes at least one of
    them, so stale observations are never blended into a different
    collection's estimates.  Works on anything that quacks like a server
    (remote transports publish the same meta properties).
    """
    count = getattr(server, "document_count", "?")
    version = getattr(server, "data_version", "?")
    store = getattr(server, "store", None)
    fields = ",".join(sorted(getattr(store, "field_names", ()) or ()))
    return f"D{count}.v{version}.f[{fields}]"


def query_key(query: Any) -> str:
    """A canonical key for a text-join query's search-expression shape.

    Join predicates are instantiated per tuple at run time, so the key
    uses their *template* (``column in field``, sorted) plus the
    canonical selection conjunction — the same for every tuple the query
    substitutes, and stable across predicate declaration order.
    """
    predicates = ";".join(
        sorted(f"{p.column} in {p.field}" for p in query.join_predicates)
    )
    selections = ""
    if getattr(query, "text_selections", ()):
        from repro.core.joinmethods.base import selection_node

        nodes = [selection_node(s) for s in query.text_selections]
        selections = " AND ".join(sorted(node.to_expression() for node in nodes))
    return f"{predicates}|{selections}"


def plan_qerror_report(execution: Any) -> QErrorReport:
    """Per-plan-node q-errors from an executed, annotated plan.

    ``execution`` is a :class:`~repro.core.executor.PlanExecution`; its
    ``node_actuals`` pair each node's estimated rows and cumulative cost
    with what the run measured.  Nodes executed without annotation
    (estimates ``None``) are skipped — there is no estimate to grade.
    """
    report = QErrorReport()
    for actual in getattr(execution, "node_actuals", ()):
        if actual.estimated_rows is not None:
            report.add(
                EstimateRecord(
                    label=actual.label,
                    kind="node",
                    estimated=float(actual.estimated_rows),
                    actual=float(actual.actual_rows),
                    unit="rows",
                )
            )
        if actual.estimated_cost is not None:
            report.add(
                EstimateRecord(
                    label=actual.label,
                    kind="node",
                    estimated=float(actual.estimated_cost),
                    actual=float(actual.actual_cost),
                    unit="seconds",
                )
            )
    return report


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise FeedbackError(f"feedback store payload invalid: {message}")


def _check_number(value: Any, message: str) -> float:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        message,
    )
    number = float(value)
    _require(number == number and abs(number) != float("inf"), message)
    return number


class FeedbackStore:
    """Persistent estimate-vs-actual feedback, blended into planning.

    Three tables, all keyed under the observing corpus' fingerprint:

    - *predicates*: accumulated :class:`PredicateObservation` per
      ``column in field`` — the statistics the estimator blends;
    - *methods*: per canonical query key and method, predicted vs
      measured cost of completed executions;
    - *events*: notable misestimates (guard aborts with their true
      cause, re-optimizations), a bounded journal.

    Thread-safe: serving workers may record concurrently.  Persistence
    is explicit (:meth:`save`) and atomic (temp file + rename); loading
    a corrupt or truncated file raises :class:`FeedbackError` — the
    store never degrades into silently wrong estimates.
    """

    def __init__(
        self,
        path: Optional[str] = None,
        prior_weight: float = DEFAULT_PRIOR_WEIGHT,
    ) -> None:
        if prior_weight < 0:
            raise FeedbackError("prior_weight must be non-negative")
        self.path = path
        self.prior_weight = float(prior_weight)
        self._lock = threading.RLock()
        self._predicates: Dict[str, Dict[str, Any]] = {}
        self._methods: Dict[str, Dict[str, Any]] = {}
        self._events: List[Dict[str, Any]] = []

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    @staticmethod
    def _predicate_key(fingerprint: str, column: str, field_name: str) -> str:
        return f"{fingerprint}|{column}|{field_name}"

    def observe_predicate(
        self,
        fingerprint: str,
        column: str,
        field_name: str,
        searches: int,
        matched: int,
        documents: float,
    ) -> None:
        """Fold one run's evidence for ``column in field`` into the store."""
        if searches < 1:
            return
        observation = PredicateObservation(
            column=column,
            field=field_name,
            searches=int(searches),
            matched=min(max(int(matched), 0), int(searches)),
            documents=max(float(documents), 0.0),
        )
        key = self._predicate_key(fingerprint, column, field_name)
        with self._lock:
            entry = self._predicates.get(key)
            if entry is not None:
                observation = self._entry_observation(entry).merge(observation)
            self._predicates[key] = {
                "fingerprint": fingerprint,
                "column": column,
                "field": field_name,
                "searches": observation.searches,
                "matched": observation.matched,
                "documents": observation.documents,
            }

    @staticmethod
    def _entry_observation(entry: Dict[str, Any]) -> PredicateObservation:
        return PredicateObservation(
            column=entry["column"],
            field=entry["field"],
            searches=entry["searches"],
            matched=entry["matched"],
            documents=entry["documents"],
        )

    def observation(
        self, fingerprint: str, column: str, field_name: str
    ) -> Optional[PredicateObservation]:
        """This corpus' accumulated observation, or None."""
        key = self._predicate_key(fingerprint, column, field_name)
        with self._lock:
            entry = self._predicates.get(key)
        if entry is None or entry["fingerprint"] != fingerprint:
            return None
        return self._entry_observation(entry)

    def observe_method(
        self,
        fingerprint: str,
        key: str,
        method: str,
        estimated_cost: float,
        actual_cost: float,
    ) -> None:
        """Record one completed method execution's predicted vs measured cost."""
        entry_key = f"{fingerprint}|{key}|{method}"
        with self._lock:
            entry = self._methods.setdefault(
                entry_key,
                {
                    "fingerprint": fingerprint,
                    "query": key,
                    "method": method,
                    "runs": [],
                },
            )
            entry["runs"].append(
                {"estimated": float(estimated_cost), "actual": float(actual_cost)}
            )
            del entry["runs"][:-MAX_METHOD_RUNS]

    def record_event(
        self,
        kind: str,
        label: str,
        estimated: float,
        actual: float,
        unit: str = "rows",
        detail: str = "",
    ) -> None:
        """Append one misestimate event (guard abort, re-optimization)."""
        with self._lock:
            self._events.append(
                {
                    "kind": kind,
                    "label": label,
                    "estimated": float(estimated),
                    "actual": float(actual),
                    "unit": unit,
                    "detail": detail,
                }
            )
            del self._events[:-MAX_EVENTS]

    # ------------------------------------------------------------------
    # estimation
    # ------------------------------------------------------------------
    def blend(
        self, prior: PredicateStatistics, fingerprint: str
    ) -> PredicateStatistics:
        """The prior blended with this corpus' observations (if any).

        Observations recorded under a different fingerprint never apply:
        a mutated or swapped corpus falls back to the prior untouched.
        """
        observation = self.observation(fingerprint, prior.column, prior.field)
        if observation is None:
            return prior
        return blend_statistics(
            prior, observation.statistics(), self.prior_weight
        )

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def report(self) -> QErrorReport:
        """Everything graded: method runs and recorded misestimate events."""
        report = QErrorReport()
        with self._lock:
            methods = [dict(entry) for entry in self._methods.values()]
            events = [dict(event) for event in self._events]
        for entry in methods:
            for run in entry["runs"]:
                report.add(
                    EstimateRecord(
                        label=f"method:{entry['method']}",
                        kind="method",
                        estimated=run["estimated"],
                        actual=run["actual"],
                        unit="seconds",
                        detail=entry["query"],
                    )
                )
        for event in events:
            report.add(
                EstimateRecord(
                    label=event["label"],
                    kind=event["kind"],
                    estimated=event["estimated"],
                    actual=event["actual"],
                    unit=event["unit"],
                    detail=event["detail"],
                )
            )
        return report

    def summary(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "predicates": len(self._predicates),
                "methods": len(self._methods),
                "events": len(self._events),
                "prior_weight": self.prior_weight,
            }

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    def to_payload(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "format": STORE_FORMAT,
                "prior_weight": self.prior_weight,
                "predicates": {
                    key: dict(entry) for key, entry in self._predicates.items()
                },
                "methods": {
                    key: {
                        "fingerprint": entry["fingerprint"],
                        "query": entry["query"],
                        "method": entry["method"],
                        "runs": [dict(run) for run in entry["runs"]],
                    }
                    for key, entry in self._methods.items()
                },
                "events": [dict(event) for event in self._events],
            }

    @classmethod
    def from_payload(
        cls, payload: Any, path: Optional[str] = None
    ) -> "FeedbackStore":
        """Validate and hydrate a payload; corrupt input → FeedbackError."""
        _require(isinstance(payload, dict), "top level must be an object")
        _require(
            payload.get("format") == STORE_FORMAT,
            f"unsupported format {payload.get('format')!r}",
        )
        prior_weight = _check_number(
            payload.get("prior_weight", DEFAULT_PRIOR_WEIGHT),
            "prior_weight must be a finite number",
        )
        _require(prior_weight >= 0, "prior_weight must be non-negative")
        store = cls(path=path, prior_weight=prior_weight)

        predicates = payload.get("predicates", {})
        _require(isinstance(predicates, dict), "predicates must be an object")
        for key, entry in predicates.items():
            _require(isinstance(entry, dict), f"predicate entry {key!r}")
            for text_field in ("fingerprint", "column", "field"):
                _require(
                    isinstance(entry.get(text_field), str),
                    f"predicate entry {key!r} field {text_field!r}",
                )
            searches = _check_number(
                entry.get("searches"), f"predicate entry {key!r} searches"
            )
            matched = _check_number(
                entry.get("matched"), f"predicate entry {key!r} matched"
            )
            documents = _check_number(
                entry.get("documents"), f"predicate entry {key!r} documents"
            )
            _require(
                searches >= 1 and 0 <= matched <= searches and documents >= 0,
                f"predicate entry {key!r} counts out of range",
            )
            store._predicates[key] = {
                "fingerprint": entry["fingerprint"],
                "column": entry["column"],
                "field": entry["field"],
                "searches": int(searches),
                "matched": int(matched),
                "documents": documents,
            }

        methods = payload.get("methods", {})
        _require(isinstance(methods, dict), "methods must be an object")
        for key, entry in methods.items():
            _require(isinstance(entry, dict), f"method entry {key!r}")
            for text_field in ("fingerprint", "query", "method"):
                _require(
                    isinstance(entry.get(text_field), str),
                    f"method entry {key!r} field {text_field!r}",
                )
            runs = entry.get("runs")
            _require(isinstance(runs, list), f"method entry {key!r} runs")
            clean_runs = []
            for run in runs:
                _require(isinstance(run, dict), f"method entry {key!r} run")
                clean_runs.append(
                    {
                        "estimated": _check_number(
                            run.get("estimated"), f"method {key!r} estimated"
                        ),
                        "actual": _check_number(
                            run.get("actual"), f"method {key!r} actual"
                        ),
                    }
                )
            store._methods[key] = {
                "fingerprint": entry["fingerprint"],
                "query": entry["query"],
                "method": entry["method"],
                "runs": clean_runs[-MAX_METHOD_RUNS:],
            }

        events = payload.get("events", [])
        _require(isinstance(events, list), "events must be a list")
        for event in events:
            _require(isinstance(event, dict), "event must be an object")
            for text_field in ("kind", "label", "unit", "detail"):
                _require(
                    isinstance(event.get(text_field), str),
                    f"event field {text_field!r}",
                )
            store._events.append(
                {
                    "kind": event["kind"],
                    "label": event["label"],
                    "estimated": _check_number(
                        event.get("estimated"), "event estimated"
                    ),
                    "actual": _check_number(event.get("actual"), "event actual"),
                    "unit": event["unit"],
                    "detail": event["detail"],
                }
            )
        del store._events[:-MAX_EVENTS]
        return store

    def save(self, path: Optional[str] = None) -> str:
        """Write the store atomically; returns the path written."""
        target = path or self.path
        if target is None:
            raise FeedbackError("no path to save the feedback store to")
        payload = self.to_payload()
        directory = os.path.dirname(os.path.abspath(target))
        os.makedirs(directory, exist_ok=True)
        handle, temp_path = tempfile.mkstemp(
            dir=directory, prefix=".feedback-", suffix=".tmp"
        )
        try:
            with os.fdopen(handle, "w", encoding="utf-8") as out:
                json.dump(payload, out, indent=1, sort_keys=True)
            os.replace(temp_path, target)
        except BaseException:
            try:
                os.unlink(temp_path)
            except OSError:
                pass
            raise
        self.path = target
        return target

    @classmethod
    def load(cls, path: str) -> "FeedbackStore":
        """Read a store from disk; corrupt/truncated → FeedbackError."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except FileNotFoundError:
            raise FeedbackError(f"no feedback store at {path!r}") from None
        except (OSError, ValueError) as error:
            raise FeedbackError(
                f"feedback store {path!r} unreadable: {error}"
            ) from None
        return cls.from_payload(payload, path=path)

    @classmethod
    def open(
        cls, path: str, prior_weight: float = DEFAULT_PRIOR_WEIGHT
    ) -> "FeedbackStore":
        """Load ``path`` if it exists, else a fresh store bound to it."""
        if os.path.exists(path):
            return cls.load(path)
        return cls(path=path, prior_weight=prior_weight)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeedbackStore):
            return NotImplemented
        return self.to_payload() == other.to_payload()

    def __repr__(self) -> str:
        summary = self.summary()
        return (
            f"FeedbackStore({summary['predicates']} predicates, "
            f"{summary['methods']} methods, {summary['events']} events)"
        )
