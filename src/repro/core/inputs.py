"""Assembling :class:`QueryCostInputs` from live data (Section 4.2 in practice).

The optimizer needs relational statistics (``N``, distinct counts) and
text statistics (``s_i``, ``f_i`` per predicate, selection result sizes).
This module gathers them:

- relational statistics are computed exactly from the joining relation —
  a cheap local operation any DBMS catalog supports;
- text predicate statistics come from a
  :class:`~repro.gateway.statistics.TextStatisticsRegistry` when already
  sampled, and are otherwise estimated on the spot — either *exactly*
  (every distinct value, for calibrated experiments) or by metered
  *sampling* (Section 4.2's approach, whose cost is amortized across
  queries on the same predicate);
- selection statistics (``E_sel``, ``I_sel``) are measured with one
  search of the selection conjunction.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, FrozenSet, Optional, Sequence

from repro.core.costmodel import QueryCostInputs, SelectionStatistics
from repro.core.joinmethods.base import JoinContext, joining_rows, selection_nodes
from repro.core.query import TextJoinQuery
from repro.errors import OptimizationError
from repro.gateway.sampling import (
    exact_predicate_statistics,
    sample_predicate_statistics,
)
from repro.gateway.statistics import PredicateStatistics, TextStatisticsRegistry
from repro.relational.row import Row
from repro.textsys.query import and_all

__all__ = ["build_cost_inputs", "distinct_counts_for"]


def distinct_counts_for(
    rows: Sequence[Row], columns: Sequence[str]
) -> Dict[FrozenSet[str], int]:
    """Exact distinct counts for every non-empty subset of ``columns``.

    NULL-containing projections are excluded (they never join).  With the
    paper's k <= 3 join predicates this enumerates at most 7 subsets.
    """
    counts: Dict[FrozenSet[str], int] = {}
    for size in range(1, len(columns) + 1):
        for subset in itertools.combinations(columns, size):
            seen = set()
            for row in rows:
                key = tuple(row[column] for column in subset)
                if any(part is None for part in key):
                    continue
                seen.add(key)
            counts[frozenset(subset)] = len(seen)
    return counts


def build_cost_inputs(
    query: TextJoinQuery,
    context: JoinContext,
    registry: Optional[TextStatisticsRegistry] = None,
    g: int = 1,
    exact: bool = True,
    sample_size: int = 20,
    rng: Optional[random.Random] = None,
    feedback=None,
) -> QueryCostInputs:
    """Gather all statistics the Section 4.3 cost formulas need.

    With ``exact=True`` (the default, matching the paper's calibrated
    experiments) predicate statistics are computed over every distinct
    column value via the server's meta interface.  With ``exact=False``
    they are estimated by metered sampling through the client.  Either
    way, results are cached in ``registry`` when one is provided.

    ``feedback`` (a :class:`~repro.core.feedback.FeedbackStore`) blends
    observed execution statistics into each predicate's prior — the
    registry keeps the *unblended* prior, so feedback weighting can
    evolve between runs without poisoning the cache.
    """
    client = context.client
    source_kind = getattr(client, "source_kind", "boolean")
    if source_kind != "boolean":
        # Fail before sampling: the Section 4.2 statistics below are
        # gathered with Boolean probes a ranking backend rejects, and the
        # Section 3 method space they feed is unsound there anyway
        # (Section 8).  Ranked predicates go through
        # ``build_vector_cost_inputs`` in ``repro.core.heterogeneous``.
        raise OptimizationError(
            f"Boolean cost inputs cannot be gathered from a "
            f"{source_kind!r} backend; use the heterogeneous planner's "
            f"vector strategy space instead"
        )
    rows = joining_rows(context, query)
    columns = query.join_columns

    predicate_stats: Dict[str, PredicateStatistics] = {}
    for predicate in query.join_predicates:
        stats: Optional[PredicateStatistics] = None
        if registry is not None and registry.has(predicate.column, predicate.field):
            stats = registry.get(predicate.column, predicate.field)
        if stats is None:
            values = [row[predicate.column] for row in rows]
            if not any(value is not None for value in values):
                # An all-NULL join column never matches anything.
                stats = PredicateStatistics(
                    column=predicate.column,
                    field=predicate.field,
                    selectivity=0.0,
                    fanout=0.0,
                )
            elif exact:
                stats = exact_predicate_statistics(
                    client.server, predicate.column, predicate.field, values
                )
            else:
                stats = sample_predicate_statistics(
                    client,
                    predicate.column,
                    predicate.field,
                    values,
                    sample_size=sample_size,
                    rng=rng,
                )
            if registry is not None:
                registry.put(stats)
        if feedback is not None:
            from repro.core.feedback import corpus_fingerprint

            stats = feedback.blend(stats, corpus_fingerprint(client.server))
        predicate_stats[predicate.column] = stats

    if query.text_selections:
        nodes = selection_nodes(query)
        result = client.server.search(and_all(nodes))
        selection = SelectionStatistics(
            result_size=float(len(result)),
            postings=float(result.postings_processed),
            term_count=sum(node.term_count() for node in nodes),
            present=True,
        )
    else:
        selection = SelectionStatistics.absent()

    return QueryCostInputs(
        constants=client.ledger.constants,
        document_count=client.document_count,
        term_limit=client.term_limit,
        g=g,
        tuple_count=len(rows),
        predicate_stats=predicate_stats,
        selection=selection,
        distinct_counts=distinct_counts_for(rows, columns),
        batch_limit=getattr(client.server, "batch_limit", None),
        rtp_fields=frozenset(client.server.store.short_fields),
        source_kind=source_kind,
    )
