"""Executing multi-join plans (left-deep and PrL trees) end to end.

The executor walks an annotated plan tree bottom-up:

- scans filter base tables;
- probe nodes reduce intermediates with metered probe searches;
- relational joins run as nested loops, evaluating relational predicates
  and — once documents are in flight — text predicates via
  :class:`~repro.core.textmatch.TextMatch`;
- the text join node materializes the intermediate and runs its
  annotated foreign-join method through the standard single-join
  machinery;
- a text scan fetches documents by the text selections alone (the text
  source as the outer-most operand).

Fetched documents become relational pseudo-rows under the query's
``text_source`` qualifier (``mercury.docid``, ``mercury.title``, ...).
When a downstream predicate needs a field that the short form does not
carry, the executor retrieves the long form (charged ``c_l``), exactly
as the real integration would have to.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.joinmethods.base import JoinContext, selection_node
from repro.core.optimizer.estimator import INTERMEDIATE
from repro.core.optimizer.multiquery import MultiJoinQuery
from repro.core.optimizer.plan import (
    JoinNode,
    PlanNode,
    ProbeNode,
    ScanNode,
    TextJoinNode,
    TextScanNode,
)
from repro.core.query import ResultShape, TextJoinPredicate, TextJoinQuery
from repro.core.textmatch import TextMatch
from repro.errors import PlanError, SearchSyntaxError
from repro.gateway.costs import CostLedger
from repro.relational.expressions import ColumnRef, Expression, conjoin
from repro.relational.operators import MaterializedInput, NestedLoopJoin
from repro.relational.row import Row
from repro.relational.schema import Column, Schema
from repro.relational.types import DataType
from repro.textsys.documents import Document
from repro.textsys.query import and_all, data_term

__all__ = [
    "NodeActual",
    "PlanExecution",
    "execute_plan",
    "document_schema",
    "document_row",
]


def document_schema(field_names: Sequence[str], text_source: str) -> Schema:
    """The relational schema documents take on once fetched locally."""
    columns = [Column(f"{text_source}.docid", DataType.VARCHAR)]
    columns.extend(
        Column(f"{text_source}.{name}", DataType.VARCHAR) for name in field_names
    )
    return Schema(columns)


def document_row(
    document: Document, schema: Schema, field_names: Sequence[str]
) -> Row:
    """Wrap a document as a relational pseudo-row (missing fields → NULL)."""
    values: List[Optional[str]] = [document.docid]
    values.extend(document.fields.get(name) for name in field_names)
    return Row(schema, values)


@dataclass(frozen=True)
class NodeActual:
    """One plan node's estimate paired with what its subtree measured.

    ``actual_cost`` is the ledger's charge delta across the node's whole
    subtree execution — directly comparable to the estimator's
    *cumulative* ``estimated_cost`` annotation.  Estimates are ``None``
    when the plan ran unannotated.  Capture is read-only: snapshotting
    and diffing the ledger charges nothing (DESIGN invariant 14).
    """

    label: str
    estimated_rows: Optional[float]
    actual_rows: float
    estimated_cost: Optional[float]
    actual_cost: float


def _node_label(plan: PlanNode) -> str:
    if isinstance(plan, ScanNode):
        return f"Scan({plan.relation})"
    if isinstance(plan, TextScanNode):
        return "TextScan"
    if isinstance(plan, ProbeNode):
        bare = ",".join(col.split(".")[-1] for col in plan.probe_columns)
        return f"Probe({bare})"
    if isinstance(plan, JoinNode):
        return "Join"
    if isinstance(plan, TextJoinNode):
        return f"TextJoin[{plan.method.name}]"
    return type(plan).__name__


@dataclass
class PlanExecution:
    """The measured outcome of running one plan."""

    schema: Schema
    rows: List[Row]
    cost: CostLedger
    relational_comparisons: int
    wall_seconds: float
    #: Per-node estimate/actual pairs in completion (bottom-up) order —
    #: the raw material for q-error reports (core/feedback).
    node_actuals: List[NodeActual] = field(default_factory=list)

    def total_cost(self, join_comparison_cost: float = 0.0001) -> float:
        """Simulated seconds: text-system cost plus priced relational work."""
        return self.cost.total + join_comparison_cost * self.relational_comparisons

    def result_keys(self) -> frozenset:
        return frozenset(row.values for row in self.rows)

    def __repr__(self) -> str:
        return (
            f"PlanExecution({len(self.rows)} rows, text={self.cost.total:.3f}s, "
            f"comparisons={self.relational_comparisons})"
        )


class _PlanRunner:
    """One plan execution; holds shared state (context, counters)."""

    def __init__(self, query: MultiJoinQuery, context: JoinContext) -> None:
        self.query = query
        self.context = context
        self.comparisons = 0
        self.node_actuals: List[NodeActual] = []
        store = context.client.server.store
        self.field_names: Tuple[str, ...] = tuple(store.field_names)
        self.short_fields = set(store.short_fields)
        self.doc_schema = document_schema(self.field_names, query.text_source)

    # ------------------------------------------------------------------
    def run(self, plan: PlanNode) -> MaterializedInput:
        # Children run inside the dispatch, so the ledger delta spans the
        # whole subtree — the unit the estimator's cumulative
        # ``estimated_cost`` describes.
        before = self.context.client.ledger.snapshot()
        result = self._dispatch(plan)
        self.node_actuals.append(
            NodeActual(
                label=_node_label(plan),
                estimated_rows=plan.estimated_rows,
                actual_rows=float(len(result)),
                estimated_cost=plan.estimated_cost,
                actual_cost=self.context.client.ledger.diff(before).total,
            )
        )
        return result

    def _dispatch(self, plan: PlanNode) -> MaterializedInput:
        if isinstance(plan, ScanNode):
            return self._run_scan(plan)
        if isinstance(plan, TextScanNode):
            return self._run_text_scan(plan)
        if isinstance(plan, ProbeNode):
            return self._run_probe(plan)
        if isinstance(plan, JoinNode):
            return self._run_join(plan)
        if isinstance(plan, TextJoinNode):
            return self._run_text_join(plan)
        raise PlanError(f"unknown plan node {type(plan).__name__}")

    # ------------------------------------------------------------------
    def _run_scan(self, plan: ScanNode) -> MaterializedInput:
        table = self.context.catalog.table(plan.relation)
        rows = [
            row
            for row in table.scan()
            if plan.predicate is None or plan.predicate.evaluate(row) is True
        ]
        return MaterializedInput(table.schema, rows)

    def _needs_long_form(self, fields: Sequence[str]) -> bool:
        return any(name not in self.short_fields for name in fields)

    def _doc_rows(
        self, documents: Sequence[Document], needed_fields: Sequence[str]
    ) -> List[Row]:
        """Documents as pseudo-rows, upgrading to long form when needed.

        All upgrades go out as one ``retrieve_many`` instead of one
        ``retrieve`` per document, so pooled/sharded transports overlap
        the fetches; the charges are identical (one ``c_l`` per distinct
        docid) because ``retrieve_many`` is itself per-docid metered.
        """
        documents = list(documents)
        if self._needs_long_form(needed_fields):
            all_fields = set(self.field_names)
            missing = [
                document.docid
                for document in documents
                if set(document.fields) != all_fields
            ]
            if missing:
                upgraded = {
                    document.docid: document
                    for document in self.context.client.retrieve_many(missing)
                }
                documents = [
                    upgraded.get(document.docid, document)
                    for document in documents
                ]
        return [
            document_row(document, self.doc_schema, self.field_names)
            for document in documents
        ]

    def _downstream_fields(self) -> List[str]:
        """Fields needed locally after documents are fetched."""
        needed = set()
        if self.query.long_form:
            needed.update(self.field_names)
        return sorted(needed)

    def _run_text_scan(self, plan: TextScanNode) -> MaterializedInput:
        with self.context.client.trace_phase("scan"):
            nodes = [selection_node(selection) for selection in plan.selections]
            result = self.context.client.search(and_all(nodes))
            # Every text predicate will be evaluated locally downstream, so
            # every predicate field must be present.
            needed = {p.field for p in self.query.text_predicates}
            needed.update(self._downstream_fields())
            rows = self._doc_rows(list(result), sorted(needed))
        return MaterializedInput(self.doc_schema, rows)

    def _run_probe(self, plan: ProbeNode) -> MaterializedInput:
        """Reduce the child's rows with one metered probe per value group.

        Edge semantics (pinned by ``tests/core/test_probe_edge_semantics``):

        - a row whose probe key contains NULL is **silently dropped** —
          NULLs never join under SQL semantics, so no probe is sent for
          it and it cannot survive the reducer;
        - a value group whose representative value is unindexable (the
          text system raises :class:`SearchSyntaxError` because the value
          tokenizes to no words) is likewise dropped without a probe: the
          text system could not even express the search, and a tuple the
          text system cannot search for can never join.

        Both rules mirror :func:`~repro.core.joinmethods.base.
        instantiate_predicates`, so probe reducers and full join methods
        prune exactly the same tuples.
        """
        child = self.run(plan.child)
        selections = [
            selection_node(selection) for selection in plan.selections
        ]
        groups: Dict[Tuple[object, ...], List[Row]] = {}
        for row in child:
            key = tuple(row[column] for column in plan.probe_columns)
            if any(part is None for part in key):
                continue
            groups.setdefault(key, []).append(row)
        probes: List[Tuple[List[Row], object]] = []
        for key, rows in groups.items():
            representative = rows[0]
            try:
                instantiated = [
                    data_term(
                        predicate.field,
                        str(representative[predicate.column]),
                    )
                    for predicate in plan.probe_predicates
                ]
            except SearchSyntaxError:
                # Unindexable value (no words): the group can never join.
                continue
            probes.append((rows, and_all(selections + instantiated)))
        kept: List[Row] = []
        client = self.context.client
        batch_size = self._probe_batch_size(len(probes))
        with client.trace_phase("probe"):
            if batch_size > 1:
                # The server accepts multi-query invocations: send the
                # instantiated probe expressions through search_batch in
                # batch_limit-sized chunks.  Per-group kept/dropped
                # semantics are unchanged — answers come back in query
                # order, and a group survives iff its result is
                # non-empty — but the c_i invocation cost amortizes over
                # each chunk and pooled transports overlap the wire time.
                for start in range(0, len(probes), batch_size):
                    chunk = probes[start : start + batch_size]
                    results = client.search_batch(
                        [query for _, query in chunk]
                    )
                    for (rows, _), result in zip(chunk, results):
                        if not result.is_empty:
                            kept.extend(rows)
            else:
                for rows, query in probes:
                    if client.probe(query):
                        kept.extend(rows)
        return MaterializedInput(child.output_schema, kept)

    def _probe_batch_size(self, probe_count: int) -> int:
        """How many probes to send per invocation (1 = serial probes).

        Batching needs a server with ``search_batch``; with fewer than
        two probes the serial path is already optimal.
        """
        if probe_count < 2:
            return 1
        server = self.context.client.server
        if getattr(server, "search_batch", None) is None:
            return 1
        return max(1, getattr(server, "batch_limit", 1))

    def _text_match_expression(self, predicate: TextJoinPredicate) -> Expression:
        return TextMatch(
            value=ColumnRef(predicate.column),
            field_text=ColumnRef(f"{self.query.text_source}.{predicate.field}"),
        )

    def _run_join(self, plan: JoinNode) -> MaterializedInput:
        left = self.run(plan.left)
        right = self.run(plan.right)
        expressions: List[Expression] = [
            predicate.expression for predicate in plan.relational_predicates
        ]
        expressions.extend(
            self._text_match_expression(predicate)
            for predicate in plan.text_match_predicates
        )
        join = NestedLoopJoin(left, right, conjoin(expressions))
        rows = list(join)
        # A predicate-free nested loop performs |L| x |R| pair visits.
        pair_visits = (
            join.comparisons
            if join.predicate is not None
            else len(left) * len(right)
        )
        if plan.left.includes_text or plan.right.includes_text:
            # Matching fetched documents against tuples IS relational
            # text processing: charge c_a per pair, like the RTP methods.
            self.context.client.charge_rtp(pair_visits)
        else:
            self.comparisons += pair_visits
        return MaterializedInput(join.output_schema, rows)

    def _run_text_join(self, plan: TextJoinNode) -> MaterializedInput:
        child = self.run(plan.child)
        self.context.materialized[INTERMEDIATE] = list(child)
        try:
            synthetic = TextJoinQuery(
                relation=INTERMEDIATE,
                join_predicates=plan.available_predicates,
                text_selections=plan.selections,
                shape=ResultShape.PAIRS,
                long_form=self.query.long_form,
            )
            method = plan.method
            degradation = self.context.degradation
            if degradation is not None and degradation.should_fallback(method.name):
                # The remote source is degraded: OR-batched semi-joins
                # would waste large frames on a lossy link, so run the
                # per-tuple substitution method instead (same results,
                # smaller units of retryable work).
                from repro.core.joinmethods.tuple_substitution import (
                    TupleSubstitution,
                )

                method = TupleSubstitution()
            execution = method.execute(synthetic, self.context)
        finally:
            self.context.materialized.pop(INTERMEDIATE, None)

        needed = {
            p.field
            for p in self.query.text_predicates
            if p not in plan.available_predicates
        }
        needed.update(self._downstream_fields())
        schema = child.output_schema.concat(self.doc_schema)
        # One _doc_rows call over the distinct fetched documents (first-
        # occurrence order): any long-form upgrades batch through a
        # single retrieve_many, with the same one-c_l-per-docid charges
        # the old per-pair cache produced.
        distinct: Dict[str, Document] = {}
        for pair in execution.pairs:
            distinct.setdefault(pair.document.docid, pair.document)
        doc_rows = self._doc_rows(list(distinct.values()), sorted(needed))
        doc_row_cache: Dict[str, Row] = dict(zip(distinct.keys(), doc_rows))
        rows: List[Row] = [
            pair.row.concat(doc_row_cache[pair.document.docid])
            for pair in execution.pairs
        ]
        return MaterializedInput(schema, rows)


def execute_plan(
    plan: PlanNode, query: MultiJoinQuery, context: JoinContext
) -> PlanExecution:
    """Run a plan tree; returns rows plus the metered cost delta."""
    started_at = time.perf_counter()
    ledger_before = context.client.ledger.snapshot()
    runner = _PlanRunner(query, context)
    result = runner.run(plan)
    return PlanExecution(
        schema=result.output_schema,
        rows=list(result),
        cost=context.client.ledger.diff(ledger_before),
        relational_comparisons=runner.comparisons,
        wall_seconds=time.perf_counter() - started_at,
        node_actuals=runner.node_actuals,
    )
