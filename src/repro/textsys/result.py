"""Search result sets.

"Documents that exactly match a search expression are returned as the
result set.  This set contains the docids of matching documents and some
of the text fields" (the *short form*); "the user may subsequently
retrieve the entire document using its docid" (the *long form*).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.textsys.documents import Document

__all__ = ["ResultSet"]


@dataclass(frozen=True)
class ResultSet:
    """A short-form result set: matching docids plus short-form documents.

    ``postings_processed`` records the sum of inverted-list lengths the
    engine read to answer the search — the quantity the cost model
    multiplies by ``c_p``.

    ``scores`` is populated by ranking backends (one cosine similarity
    per docid, in result order) and empty for Boolean searches, whose
    results carry no ranking.
    """

    docids: Tuple[str, ...]
    documents: Tuple[Document, ...]
    postings_processed: int
    scores: Tuple[float, ...] = ()

    def __len__(self) -> int:
        return len(self.docids)

    def __iter__(self) -> Iterator[Document]:
        return iter(self.documents)

    def __bool__(self) -> bool:
        return bool(self.docids)

    @property
    def is_empty(self) -> bool:
        """True when the search matched nothing (a *fail-query*)."""
        return not self.docids
