"""Search-expression rewriting for the optimized evaluation kernels.

The optimizer-facing half of the engine's ``optimized`` mode: before a
query hits the merge kernels, :func:`rewrite` normalizes its *shape* —

- nested ``AND``/``OR`` nodes are flattened into one n-ary connective
  (OR-batched semi-joins routinely produce ``OR(OR(a, b), c)`` chains
  whose pairwise folding is quadratic);
- duplicate operands of a connective are dropped (``A AND A ≡ A``,
  ``A OR A ≡ A``) — the dropped subtrees are *returned*, not forgotten,
  because the cost accounting still owes ``postings_processed`` for
  every list the original query names;
- ``AND`` conjuncts are ordered by estimated document frequency (from
  the index directory, charge-free) so intersections start from the
  smallest list and can stop merging the moment they go empty, with
  NOT-conjuncts pushed last (they subtract from the running
  intersection).

Rewriting never changes which documents match, and — together with the
engine's charge-only pass over skipped/duplicate subtrees — never
changes ``postings_processed``, page reads, or any server counter
(DESIGN.md invariant: charge-identical optimization).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import SearchSyntaxError, TextSystemError
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    ProximityQuery,
    SearchNode,
    TermQuery,
    TruncatedQuery,
)

__all__ = ["RewriteResult", "rewrite", "estimated_result_size"]


@dataclass(frozen=True)
class RewriteResult:
    """A rewritten query plus the duplicate subtrees the rewrite dropped.

    ``duplicates`` are semantically redundant (each one's twin is still
    in ``node``) but must still be charged: the evaluator runs a
    charge-only pass over them so the metered ``postings_processed`` is
    exactly what the unrewritten query would have paid.
    """

    node: SearchNode
    duplicates: Tuple[SearchNode, ...]


def estimated_result_size(index: InvertedIndex, node: SearchNode) -> int:
    """An ordering heuristic: an upper-ish bound on the result size.

    Reads only the index directory (charge-free).  Used to sort AND
    conjuncts ascending; correctness never depends on its accuracy.
    """
    if isinstance(node, TermQuery):
        return index.list_length(node.field, node.term)
    if isinstance(node, TruncatedQuery):
        return sum(
            index.list_length(node.field, term)
            for term in index.prefix_terms(node.field, node.prefix)
        )
    if isinstance(node, PhraseQuery):
        return min(
            index.list_length(node.field, word) for word in node.words
        )
    if isinstance(node, ProximityQuery):
        return min(
            index.list_length(node.field, node.left),
            index.list_length(node.field, node.right),
        )
    if isinstance(node, AndQuery):
        return min(
            estimated_result_size(index, operand) for operand in node.operands
        )
    if isinstance(node, OrQuery):
        return min(
            index.document_count,
            sum(
                estimated_result_size(index, operand)
                for operand in node.operands
            ),
        )
    if isinstance(node, NotQuery):
        return max(
            0,
            index.document_count - estimated_result_size(index, node.operand),
        )
    raise TextSystemError(f"unknown search node {type(node).__name__}")


def _flatten(
    operands: Tuple[SearchNode, ...],
    connective: type,
    duplicates: List[SearchNode],
) -> List[SearchNode]:
    """Flatten same-connective children and drop exact duplicates."""
    flat: List[SearchNode] = []
    seen = set()  # concrete nodes are frozen dataclasses, hence hashable
    for operand in operands:
        rewritten = _rewrite(operand, duplicates)
        children = (
            rewritten.operands
            if isinstance(rewritten, connective)
            else (rewritten,)
        )
        for child in children:
            if child in seen:
                duplicates.append(child)
            else:
                seen.add(child)
                flat.append(child)
    return flat


def _rewrite(node: SearchNode, duplicates: List[SearchNode]) -> SearchNode:
    if isinstance(node, (TermQuery, PhraseQuery, TruncatedQuery, ProximityQuery)):
        return node
    if isinstance(node, NotQuery):
        return NotQuery(_rewrite(node.operand, duplicates))
    if isinstance(node, AndQuery):
        flat = _flatten(node.operands, AndQuery, duplicates)
        if len(flat) == 1:
            return flat[0]
        return AndQuery(tuple(flat))
    if isinstance(node, OrQuery):
        flat = _flatten(node.operands, OrQuery, duplicates)
        if len(flat) == 1:
            return flat[0]
        return OrQuery(tuple(flat))
    raise TextSystemError(f"unknown search node {type(node).__name__}")


def _order_conjuncts(index: InvertedIndex, node: SearchNode) -> SearchNode:
    """Recursively sort every AND's conjuncts: smallest estimate first,
    NOT-operands last (stable, so equal estimates keep query order)."""
    if isinstance(node, NotQuery):
        return NotQuery(_order_conjuncts(index, node.operand))
    if isinstance(node, OrQuery):
        return OrQuery(
            tuple(_order_conjuncts(index, operand) for operand in node.operands)
        )
    if isinstance(node, AndQuery):
        ordered = sorted(
            (_order_conjuncts(index, operand) for operand in node.operands),
            key=lambda operand: (
                isinstance(operand, NotQuery),
                estimated_result_size(index, operand),
            ),
        )
        return AndQuery(tuple(ordered))
    return node


def rewrite(index: InvertedIndex, node: SearchNode) -> RewriteResult:
    """Normalize a search expression for the optimized kernels.

    Returns the flattened, duplicate-free, frequency-ordered equivalent
    plus every dropped duplicate subtree (still owed its charges).
    Raises :class:`SearchSyntaxError` for malformed zero-operand
    connectives (possible only via deserialization that bypasses the
    dataclass constructors).
    """
    if isinstance(node, (AndQuery, OrQuery)) and not node.operands:
        raise SearchSyntaxError(
            f"{type(node).__name__} with no operands cannot be evaluated"
        )
    duplicates: List[SearchNode] = []
    rewritten = _rewrite(node, duplicates)
    return RewriteResult(
        node=_order_conjuncts(index, rewritten),
        duplicates=tuple(duplicates),
    )
