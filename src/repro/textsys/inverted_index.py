"""Per-field inverted indexes with positional postings.

One :class:`InvertedIndex` covers a whole document collection: for every
field it maps each normalized word to a :class:`PostingList`.  Documents
are identified internally by integer ordinals (assigned in indexing
order) so posting lists stay cheaply sortable; the index keeps the
ordinal ↔ docid mapping.

The index also exposes the access-pattern accounting the cost model needs:
every lookup reports the length of the list retrieved (the number of
postings "read from disk" in the paper's model).
"""

from __future__ import annotations

import bisect
from array import array
from collections import defaultdict
from typing import Dict, List, Tuple

from repro.errors import UnknownFieldError
from repro.textsys.analysis import tokenize_with_positions
from repro.textsys.documents import DocumentStore
from repro.textsys.postings import PostingList

__all__ = ["InvertedIndex"]


class InvertedIndex:
    """Positional inverted index over every field of a document store.

    Storage follows the paper's [DH91] model: "the inverted lists reside
    on disk, and a main memory directory maps a word to the location of
    its list".  The index therefore meters *page reads*: every list
    retrieval reads ``ceil(len(list) / page_capacity)`` pages (an empty
    list costs nothing — the in-memory directory already knows).  The
    default capacity models 4 KiB pages of 16-byte postings.
    """

    #: Postings per disk page (4 KiB page / 16-byte posting).
    DEFAULT_PAGE_CAPACITY = 256

    def __init__(
        self, store: DocumentStore, page_capacity: int = DEFAULT_PAGE_CAPACITY
    ) -> None:
        if page_capacity < 1:
            raise ValueError("page_capacity must be positive")
        self.store = store
        self.page_capacity = page_capacity
        #: Cumulative disk pages read by list retrievals.
        self.pages_read = 0
        #: The store version this index reflects (cache-invalidation stamp).
        self.version = 0
        self._doc_ordinals: Dict[str, int] = {}
        self._ordinal_docids: List[str] = []
        # field -> term -> sorted list of Posting
        self._lists: Dict[str, Dict[str, PostingList]] = {
            field: {} for field in store.field_names
        }
        # field -> sorted vocabulary (for truncation / prefix expansion)
        self._vocabulary: Dict[str, List[str]] = {
            field: [] for field in store.field_names
        }
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        accumulator: Dict[str, Dict[str, Dict[int, List[int]]]] = {
            field: defaultdict(dict) for field in self.store.field_names
        }
        for document in self.store:
            ordinal = len(self._ordinal_docids)
            self._doc_ordinals[document.docid] = ordinal
            self._ordinal_docids.append(document.docid)
            for field in self.store.field_names:
                text = document.field(field)
                if not text:
                    continue
                for token, position in tokenize_with_positions(text):
                    positions = accumulator[field][token].setdefault(ordinal, [])
                    positions.append(position)
        for field, terms in accumulator.items():
            for term, docs in terms.items():
                ordered = sorted(docs.items())
                doc_array = array("q", (ordinal for ordinal, _ in ordered))
                positions = tuple(
                    tuple(sorted(entry)) for _, entry in ordered
                )
                self._lists[field][term] = PostingList._from_sorted(
                    doc_array, positions
                )
            self._vocabulary[field] = sorted(self._lists[field])
        self.version = self.store.version

    def rebuild(self) -> None:
        """Re-index the store after mutations (stamps the new version).

        The index is built eagerly at construction; a store that gains
        documents afterwards must be re-indexed for searches to see them.
        ``version`` follows the store's mutation counter so downstream
        caches (see :mod:`repro.gateway.cache`) drop stale entries.
        """
        self._doc_ordinals.clear()
        self._ordinal_docids.clear()
        self._lists = {field: {} for field in self.store.field_names}
        self._vocabulary = {field: [] for field in self.store.field_names}
        self._build()

    # ------------------------------------------------------------------
    # docid mapping
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        """``D``: total number of documents in the collection."""
        return len(self._ordinal_docids)

    def docid_of(self, ordinal: int) -> str:
        """The external docid for an internal ordinal."""
        return self._ordinal_docids[ordinal]

    def ordinal_of(self, docid: str) -> int:
        """The internal ordinal for an external docid."""
        return self._doc_ordinals[docid]

    def all_docs(self) -> PostingList:
        """A posting list naming every document (for NOT complements)."""
        return PostingList._from_sorted(array("q", range(self.document_count)))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def _check_field(self, field: str) -> None:
        if field not in self._lists:
            raise UnknownFieldError(f"unknown text field {field!r}")

    def pages_for(self, postings: int) -> int:
        """Disk pages occupied by a list of ``postings`` entries."""
        if postings <= 0:
            return 0
        return -(-postings // self.page_capacity)  # ceil division

    def lookup(self, field: str, term: str) -> PostingList:
        """The inverted list for one normalized term in one field.

        Charges the page reads for fetching the list from disk.
        """
        self._check_field(field)
        postings = self._lists[field].get(term, PostingList())
        self.pages_read += self.pages_for(len(postings))
        return postings

    def lookup_prefix(self, field: str, prefix: str) -> List[Tuple[str, PostingList]]:
        """All ``(term, list)`` pairs whose term starts with ``prefix``.

        Implements truncated search terms (``filter?``) by expansion over
        the field vocabulary; each expanded list is fetched (and its
        pages charged) separately.
        """
        self._check_field(field)
        vocabulary = self._vocabulary[field]
        start = bisect.bisect_left(vocabulary, prefix)
        out: List[Tuple[str, PostingList]] = []
        for index in range(start, len(vocabulary)):
            term = vocabulary[index]
            if not term.startswith(prefix):
                break
            postings = self._lists[field][term]
            self.pages_read += self.pages_for(len(postings))
            out.append((term, postings))
        return out

    def document_frequency(self, field: str, term: str) -> int:
        """Number of documents whose ``field`` contains ``term``."""
        return len(self.lookup(field, term))

    # ------------------------------------------------------------------
    # charge-free metadata (the in-memory directory)
    # ------------------------------------------------------------------
    def list_length(self, field: str, term: str) -> int:
        """The length of one inverted list, from the directory alone.

        Unlike :meth:`lookup`/:meth:`document_frequency`, this charges
        *no* page reads: per the [DH91] storage model the main-memory
        directory already knows every list's length without touching
        disk.  The query rewriter uses it to order conjuncts by document
        frequency before any list is actually retrieved.
        """
        self._check_field(field)
        postings = self._lists[field].get(term)
        return 0 if postings is None else len(postings)

    def prefix_terms(self, field: str, prefix: str) -> List[str]:
        """The vocabulary terms a truncated search expands to (no charge)."""
        self._check_field(field)
        vocabulary = self._vocabulary[field]
        start = bisect.bisect_left(vocabulary, prefix)
        out: List[str] = []
        for index in range(start, len(vocabulary)):
            term = vocabulary[index]
            if not term.startswith(prefix):
                break
            out.append(term)
        return out

    def vocabulary(self, field: str) -> List[str]:
        """The sorted vocabulary of one field."""
        self._check_field(field)
        return list(self._vocabulary[field])

    def vocabulary_size(self, field: str) -> int:
        self._check_field(field)
        return len(self._vocabulary[field])

    # ------------------------------------------------------------------
    # observability (API parity with the disk-backed index)
    # ------------------------------------------------------------------
    def io_stats(self) -> Dict[str, object]:
        """Physical I/O counters — all zero for the in-memory index.

        The disk-backed twin (:class:`~repro.textsys.diskindex.
        DiskInvertedIndex`) meters real block fetches and cache traffic
        here; exposing the same shape on both lets reporting code treat
        the engines uniformly.  Charged ``pages_read`` is tracked
        separately on both and stays bit-identical (DESIGN inv. 13).
        """
        return {
            "block_fetches": 0,
            "bytes_read": 0,
            "blocks_decoded": 0,
            "cache": {
                "hits": 0,
                "misses": 0,
                "evictions": 0,
                "cached_bytes": 0,
                "entries": 0,
                "hit_rate": 0.0,
            },
        }
