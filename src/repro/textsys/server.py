"""The Boolean text retrieval server (the Mercury stand-in).

:class:`BooleanTextServer` is the *only* interface the database side may
use — the loose-integration assumption of Section 2.3.  It exposes
exactly two operations:

- :meth:`search` — evaluate a Boolean search expression and return the
  short-form result set (docids plus short fields), subject to the
  per-search basic-term limit ``M`` (Mercury allowed 70);
- :meth:`retrieve` — fetch one document's long form by docid.

The server keeps usage counters (:class:`ServerCounters`) so that callers
— the gateway's metered client in particular — can account for
invocations, postings processed, and documents transmitted in each form.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import SearchLimitExceeded, TextSystemError
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.engine import evaluate, resolve_engine_mode
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.parser import parse_search
from repro.textsys.query import SearchNode
from repro.textsys.result import ResultSet

__all__ = ["ServerCounters", "BooleanTextServer", "DEFAULT_TERM_LIMIT"]

#: Mercury's per-search basic-term limit (Section 3.2).
DEFAULT_TERM_LIMIT = 70


@dataclass
class ServerCounters:
    """Cumulative usage counters, reset with :meth:`reset`.

    Safe to update from concurrent serving workers: the per-operation
    record methods (and ``reset``/``snapshot``) hold an internal lock,
    so counts never lose increments when many tenants share one
    in-process server.
    """

    searches: int = 0
    postings_processed: int = 0
    short_documents: int = 0
    long_documents: int = 0
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def record_search(self, postings_processed: int, short_documents: int) -> None:
        """Account one answered search atomically."""
        with self._lock:
            self.searches += 1
            self.postings_processed += postings_processed
            self.short_documents += short_documents

    def record_retrieve(self) -> None:
        """Account one long-form retrieval atomically."""
        with self._lock:
            self.long_documents += 1

    def reset(self) -> None:
        with self._lock:
            self.searches = 0
            self.postings_processed = 0
            self.short_documents = 0
            self.long_documents = 0

    def snapshot(self) -> "ServerCounters":
        with self._lock:
            return ServerCounters(
                searches=self.searches,
                postings_processed=self.postings_processed,
                short_documents=self.short_documents,
                long_documents=self.long_documents,
            )

    def as_dict(self) -> Dict[str, int]:
        """JSON-friendly view, in declaration order."""
        return {
            "searches": self.searches,
            "postings_processed": self.postings_processed,
            "short_documents": self.short_documents,
            "long_documents": self.long_documents,
        }

    def __sub__(self, earlier: "ServerCounters") -> "ServerCounters":
        """The work done since ``earlier`` (usually a :meth:`snapshot`).

        Lets benchmark reports diff counter snapshots —
        ``(after - before).as_dict()`` — without hand-copying fields.
        """
        if not isinstance(earlier, ServerCounters):
            return NotImplemented
        return ServerCounters(
            searches=self.searches - earlier.searches,
            postings_processed=self.postings_processed - earlier.postings_processed,
            short_documents=self.short_documents - earlier.short_documents,
            long_documents=self.long_documents - earlier.long_documents,
        )


class BooleanTextServer:
    """An inversion-based Boolean text retrieval system."""

    #: The predicate semantics this backend provides.  Boolean monotone
    #: semantics are what the Section 3-5 method space (and its
    #: probe-based pruning) is sound for; the per-backend legality check
    #: compares this against each method's required kind.
    source_kind = "boolean"

    def __init__(
        self,
        store: DocumentStore,
        term_limit: int = DEFAULT_TERM_LIMIT,
        engine_mode: Optional[str] = None,
        index: Optional[InvertedIndex] = None,
    ) -> None:
        if term_limit < 1:
            raise TextSystemError("term limit must be at least 1")
        self.store = store
        self.term_limit = term_limit
        #: Which evaluation engine serves searches (``reference`` keeps
        #: the linear-merge oracle; ``optimized`` is charge-identical —
        #: see DESIGN.md "Engine kernels").  Defaults to the process-wide
        #: mode (``REPRO_ENGINE_MODE`` or ``optimized``).
        self.engine_mode = resolve_engine_mode(engine_mode)
        if index is None:
            index = InvertedIndex(store)
        elif index.document_count != len(store):
            # An injected index (e.g. a DiskInvertedIndex built earlier)
            # must cover exactly this collection; ordinal order is the
            # builder's responsibility, but a size mismatch is always
            # a wiring error worth failing loudly on.
            raise TextSystemError(
                f"injected index covers {index.document_count} documents "
                f"but the store holds {len(store)}"
            )
        self.index = index
        self.counters = ServerCounters()

    # ------------------------------------------------------------------
    # the public (loose-integration) API
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        """``D``: the size of the collection (published meta information)."""
        return self.index.document_count

    @property
    def data_version(self) -> int:
        """Monotone counter of collection mutations (cache invalidation).

        Follows the document store's mutation stamp: any client-side
        cache of search/retrieve results must be dropped when this
        moves, because the same expression may now match differently.
        """
        return self.store.version

    @property
    def data_fingerprint(self) -> Tuple[int, int]:
        """``(store uid, version)``: a collision-free cache-validation key.

        ``data_version`` alone cannot distinguish two different stores
        that happen to sit at the same mutation count; the fingerprint
        pairs the version with the store's process-unique identity so a
        client cache swapped between servers can never mistake one
        backend's entries for another's.
        """
        return (self.store.uid, self.store.version)

    def search(self, query: Union[SearchNode, str]) -> ResultSet:
        """Run one Boolean search; returns the short-form result set.

        Raises :class:`SearchLimitExceeded` when the expression uses more
        than ``term_limit`` basic search terms.
        """
        if isinstance(query, str):
            query = parse_search(query)
        used = query.term_count()
        if used > self.term_limit:
            raise SearchLimitExceeded(
                f"search uses {used} basic terms; the limit is {self.term_limit}"
            )
        outcome = evaluate(self.index, query, mode=self.engine_mode)
        docid_of = self.index.docid_of
        docids = tuple(docid_of(doc) for doc in outcome.postings.doc_array)
        documents = tuple(
            self.store.get(docid).short_form(self.store.short_fields)
            for docid in docids
        )
        self.counters.record_search(outcome.postings_processed, len(docids))
        return ResultSet(
            docids=docids,
            documents=documents,
            postings_processed=outcome.postings_processed,
        )

    def retrieve(self, docid: str) -> Document:
        """Fetch one document's long form by docid."""
        document = self.store.get(docid)
        self.counters.record_retrieve()
        return document

    def retrieve_many(self, docids: Iterable[str]) -> List[Document]:
        """Fetch several long forms (each is a separate retrieval)."""
        return [self.retrieve(docid) for docid in docids]

    # ------------------------------------------------------------------
    # meta information (Section 2.3 allows extracting statistics)
    # ------------------------------------------------------------------
    def document_frequency(self, field: str, term: str) -> int:
        """How many documents contain ``term`` in ``field``.

        This is meta information of the kind Section 2.3 / 4.2 assumes can
        be extracted; the sampling estimator uses probe-like searches
        instead when a system does not publish it.
        """
        return self.index.document_frequency(field, term)

    def __repr__(self) -> str:
        return (
            f"BooleanTextServer({self.document_count} documents, "
            f"fields={list(self.store.field_names)}, M={self.term_limit})"
        )
