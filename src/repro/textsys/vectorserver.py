"""The vector-space text retrieval server (the second external source).

:class:`VectorTextServer` serves :class:`~repro.textsys.vector.
VectorSpaceEngine` behind exactly the loose-integration surface the
Boolean server exposes — ``search`` (short form) and ``retrieve`` (long
form by docid), plus the published meta information — so it drops behind
a :class:`~repro.gateway.client.TextClient`, the remote codec/transport,
the sharding router, and the serving front-end unchanged.

What differs from :class:`~repro.textsys.server.BooleanTextServer` is
the *semantics*, and that difference is the point of this backend:
results are ranked by cosine similarity and truncated to top-k, so they
are **not monotone** in the query's term set (Section 8).  The optimizer
must therefore never run probe-based pruning or semijoin term-subset
batching against this server — ``source_kind`` is what the per-backend
method-legality check keys on (DESIGN invariant 15).

Sharding: :func:`build_vector_shard_servers` builds one server per shard
store with the *source* collection's :class:`~repro.textsys.vector.
VectorStatistics` injected, so per-shard scores are bit-identical to the
unsharded engine's and the router's scored merge reproduces the single
server exactly.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple

from repro.errors import SearchLimitExceeded, TextSystemError
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.result import ResultSet
from repro.textsys.server import DEFAULT_TERM_LIMIT, ServerCounters
from repro.textsys.sharding import ShardedCorpus
from repro.textsys.vector import VectorQuery, VectorSpaceEngine, VectorStatistics

__all__ = ["VectorTextServer", "build_vector_shard_servers"]


class VectorTextServer:
    """A similarity-ranking text server over one field of a collection."""

    #: The predicate semantics this backend provides.  The optimizer's
    #: method-legality check compares this against each join method's
    #: required semantics (probe-based methods demand ``"boolean"``).
    source_kind = "vector"

    def __init__(
        self,
        store: DocumentStore,
        field: str,
        term_limit: int = DEFAULT_TERM_LIMIT,
        statistics: Optional[VectorStatistics] = None,
    ) -> None:
        if term_limit < 1:
            raise TextSystemError("term limit must be at least 1")
        if not store.has_field(field):
            raise TextSystemError(
                f"the store has no field {field!r} to rank on"
            )
        self.store = store
        self.field = field
        self.term_limit = term_limit
        self.statistics = statistics
        self.counters = ServerCounters()
        self._engine: Optional[VectorSpaceEngine] = None
        self._engine_version: Optional[int] = None

    # ------------------------------------------------------------------
    @property
    def engine(self) -> VectorSpaceEngine:
        """The scoring engine, rebuilt lazily when the store mutates.

        The engine is an immutable snapshot of the collection; tracking
        ``store.version`` here means a search after an ``add_record``
        never scores against stale postings or norms.
        """
        if self._engine is None or self._engine_version != self.store.version:
            self._engine = VectorSpaceEngine(
                self.store, self.field, statistics=self.statistics
            )
            self._engine_version = self.store.version
        return self._engine

    # ------------------------------------------------------------------
    # the public (loose-integration) API
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        """The size of the *local* collection (sums across shards)."""
        return len(self.store)

    @property
    def data_version(self) -> int:
        """Monotone counter of collection mutations (cache invalidation)."""
        return self.store.version

    @property
    def data_fingerprint(self) -> Tuple[int, int]:
        """``(store uid, version)``: a collision-free cache-validation key."""
        return (self.store.uid, self.store.version)

    def search(self, query: VectorQuery) -> ResultSet:
        """Run one similarity search; returns the scored short-form set.

        Only :class:`~repro.textsys.vector.VectorQuery` is accepted —
        sending a Boolean expression at a vector backend is a wiring
        error worth failing loudly on, not something to coerce.
        """
        if not isinstance(query, VectorQuery):
            raise TextSystemError(
                f"a vector server answers VectorQuery objects, not "
                f"{type(query).__name__}"
            )
        if query.field != self.field:
            raise TextSystemError(
                f"this vector server ranks field {self.field!r}, "
                f"not {query.field!r}"
            )
        used = query.term_count()
        if used > self.term_limit:
            raise SearchLimitExceeded(
                f"search uses {used} basic terms; the limit is {self.term_limit}"
            )
        outcome = self.engine.counted_search(
            query.terms, top_k=query.top_k, threshold=query.threshold
        )
        docids = tuple(entry.docid for entry in outcome.scored)
        documents = tuple(
            self.store.get(docid).short_form(self.store.short_fields)
            for docid in docids
        )
        self.counters.record_search(outcome.postings_processed, len(docids))
        return ResultSet(
            docids=docids,
            documents=documents,
            postings_processed=outcome.postings_processed,
            scores=tuple(entry.score for entry in outcome.scored),
        )

    def retrieve(self, docid: str) -> Document:
        """Fetch one document's long form by docid."""
        document = self.store.get(docid)
        self.counters.record_retrieve()
        return document

    def retrieve_many(self, docids: Iterable[str]) -> List[Document]:
        """Fetch several long forms (each is a separate retrieval)."""
        return [self.retrieve(docid) for docid in docids]

    # ------------------------------------------------------------------
    # meta information (Section 2.3 allows extracting statistics)
    # ------------------------------------------------------------------
    def document_frequency(self, field: str, term: str) -> int:
        """How many *local* documents contain ``term`` in the ranked field.

        Local (not injected-global) so that per-shard frequencies sum to
        the source collection's, exactly like the Boolean server's.
        """
        if field != self.field:
            raise TextSystemError(
                f"this vector server ranks field {self.field!r}, not {field!r}"
            )
        return self.engine.document_frequency(term)

    def __repr__(self) -> str:
        return (
            f"VectorTextServer({self.document_count} documents, "
            f"field={self.field!r}, M={self.term_limit})"
        )


def build_vector_shard_servers(
    corpus: ShardedCorpus,
    field: str,
    term_limit: int = DEFAULT_TERM_LIMIT,
    statistics: Optional[VectorStatistics] = None,
) -> List[VectorTextServer]:
    """One :class:`VectorTextServer` per shard store, scoring globally.

    Every shard engine is handed the *source* collection's statistics
    (measured here unless supplied), so idf and document norms — and
    therefore scores — match the unsharded engine bit for bit; only the
    postings counts stay local, which is what makes them additive.
    """
    if statistics is None:
        statistics = VectorStatistics.for_store(corpus.source, field)
    return [
        VectorTextServer(
            store, field, term_limit=term_limit, statistics=statistics
        )
        for store in corpus.stores
    ]
