"""Boolean search expressions (the text system's query language).

Section 2.1: "A basic search term can be a word ('filtering'), a
truncated word ('filter?'), or a phrase ('information filtering') ...
the search may be limited to a certain text field ... Some systems
support proximity searches ('information near10 filtering').  These basic
search terms can be combined to form complex search expressions using
Boolean connectors and, or, and not."

Every node reports ``term_count`` — the number of *basic search terms* it
contains — because the server enforces a per-search limit ``M`` on that
count (Mercury allowed 70), which is what bounds the semi-join batching
of Section 3.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple

from repro.errors import SearchSyntaxError
from repro.textsys.analysis import normalize_term, tokenize

__all__ = [
    "SearchNode",
    "TermQuery",
    "PhraseQuery",
    "TruncatedQuery",
    "ProximityQuery",
    "AndQuery",
    "OrQuery",
    "NotQuery",
    "make_term",
    "data_term",
    "and_all",
    "or_all",
]


class SearchNode:
    """Base class for Boolean search expression nodes."""

    def term_count(self) -> int:
        """Number of basic search terms in this expression."""
        raise NotImplementedError

    def to_expression(self) -> str:
        """Render back to the textual search syntax."""
        raise NotImplementedError

    def __and__(self, other: "SearchNode") -> "AndQuery":
        return AndQuery((self, other))

    def __or__(self, other: "SearchNode") -> "OrQuery":
        return OrQuery((self, other))

    def __invert__(self) -> "NotQuery":
        return NotQuery(self)


@dataclass(frozen=True)
class TermQuery(SearchNode):
    """A single word limited to one field: ``FIELD='word'``."""

    field: str
    term: str

    def __post_init__(self) -> None:
        if not self.term:
            raise SearchSyntaxError("empty search term")
        if self.term != normalize_term(self.term) or len(tokenize(self.term)) != 1:
            raise SearchSyntaxError(
                f"term {self.term!r} is not a single normalized word; "
                "use make_term() to build terms from raw text"
            )

    def term_count(self) -> int:
        return 1

    def to_expression(self) -> str:
        return f"{self.field}='{self.term}'"


@dataclass(frozen=True)
class PhraseQuery(SearchNode):
    """An exact word sequence in one field: ``FIELD='belief update'``."""

    field: str
    words: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.words) < 2:
            raise SearchSyntaxError("a phrase needs at least two words")
        for word in self.words:
            if word != normalize_term(word) or len(tokenize(word)) != 1:
                raise SearchSyntaxError(f"phrase word {word!r} is not normalized")

    def term_count(self) -> int:
        return 1

    def to_expression(self) -> str:
        return f"{self.field}='{' '.join(self.words)}'"


@dataclass(frozen=True)
class TruncatedQuery(SearchNode):
    """A truncated word: ``FIELD='filter?'`` matches every word with the prefix."""

    field: str
    prefix: str

    def __post_init__(self) -> None:
        if not self.prefix:
            raise SearchSyntaxError("truncated term needs a non-empty prefix")
        if self.prefix != normalize_term(self.prefix):
            raise SearchSyntaxError(f"prefix {self.prefix!r} is not normalized")

    def term_count(self) -> int:
        return 1

    def to_expression(self) -> str:
        return f"{self.field}='{self.prefix}?'"


@dataclass(frozen=True)
class ProximityQuery(SearchNode):
    """Two words within ``distance`` word positions, either order.

    ``FIELD='information' near10 FIELD='filtering'``.
    """

    field: str
    left: str
    right: str
    distance: int

    def __post_init__(self) -> None:
        if self.distance < 1:
            raise SearchSyntaxError("proximity distance must be >= 1")
        for word in (self.left, self.right):
            if word != normalize_term(word) or len(tokenize(word)) != 1:
                raise SearchSyntaxError(f"proximity word {word!r} is not normalized")

    def term_count(self) -> int:
        return 2

    def to_expression(self) -> str:
        # The quoted-term proximity syntax the parser accepts.
        return f"{self.field}='{self.left} near{self.distance} {self.right}'"


@dataclass(frozen=True)
class AndQuery(SearchNode):
    """Conjunction of subexpressions."""

    operands: Tuple[SearchNode, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 1:
            raise SearchSyntaxError("and needs at least one operand")

    def term_count(self) -> int:
        return sum(operand.term_count() for operand in self.operands)

    def to_expression(self) -> str:
        return "(" + " and ".join(op.to_expression() for op in self.operands) + ")"


@dataclass(frozen=True)
class OrQuery(SearchNode):
    """Disjunction of subexpressions."""

    operands: Tuple[SearchNode, ...]

    def __post_init__(self) -> None:
        if len(self.operands) < 1:
            raise SearchSyntaxError("or needs at least one operand")

    def term_count(self) -> int:
        return sum(operand.term_count() for operand in self.operands)

    def to_expression(self) -> str:
        return "(" + " or ".join(op.to_expression() for op in self.operands) + ")"


@dataclass(frozen=True)
class NotQuery(SearchNode):
    """Boolean complement of a subexpression."""

    operand: SearchNode

    def term_count(self) -> int:
        return self.operand.term_count()

    def to_expression(self) -> str:
        return f"(not {self.operand.to_expression()})"


def make_term(field: str, text: str) -> SearchNode:
    """Build the right basic search term for raw text.

    Raw text tokenizing to one word becomes a :class:`TermQuery`; to
    several words, a :class:`PhraseQuery`.  A trailing ``?`` on a single
    word produces a :class:`TruncatedQuery`.  This is the entry point the
    join methods use when instantiating join values into searches.
    """
    stripped = text.strip()
    if stripped.endswith("?"):
        prefix = normalize_term(stripped[:-1])
        if prefix:
            return TruncatedQuery(field, prefix)
    words = tuple(tokenize(text))
    if not words:
        raise SearchSyntaxError(f"text {text!r} contains no indexable words")
    if len(words) == 1:
        return TermQuery(field, words[0])
    return PhraseQuery(field, words)


def data_term(field: str, text: str) -> SearchNode:
    """Build a search term from a *data value* (a relational join value).

    Unlike :func:`make_term`, no query syntax is interpreted: a trailing
    ``?`` is ordinary punctuation (dropped by tokenization), never a
    truncation operator.  Join methods must use this for instantiated
    values so that server-side and relational-side matching agree.
    """
    words = tuple(tokenize(text))
    if not words:
        raise SearchSyntaxError(f"value {text!r} contains no indexable words")
    if len(words) == 1:
        return TermQuery(field, words[0])
    return PhraseQuery(field, words)


def and_all(operands: Iterable[SearchNode]) -> SearchNode:
    """AND together a non-empty list, flattening nested ANDs."""
    flat: List[SearchNode] = []
    for operand in operands:
        if isinstance(operand, AndQuery):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        raise SearchSyntaxError("and_all of no operands")
    if len(flat) == 1:
        return flat[0]
    return AndQuery(tuple(flat))


def or_all(operands: Iterable[SearchNode]) -> SearchNode:
    """OR together a non-empty list, flattening nested ORs."""
    flat: List[SearchNode] = []
    for operand in operands:
        if isinstance(operand, OrQuery):
            flat.extend(operand.operands)
        else:
            flat.append(operand)
    if not flat:
        raise SearchSyntaxError("or_all of no operands")
    if len(flat) == 1:
        return flat[0]
    return OrQuery(tuple(flat))
