"""Text analysis: tokenization and term normalization.

Boolean text retrieval systems of the paper's era index *words*: text is
split on non-alphanumeric characters and lowercased.  The same analyzer
must be applied to indexed field text and to query terms so that matching
is consistent — both the inverted index and the brute-force reference
evaluator go through these functions.
"""

from __future__ import annotations

import re
from typing import List, Tuple

__all__ = ["tokenize", "tokenize_with_positions", "normalize_term", "is_phrase"]

_TOKEN_PATTERN = re.compile(r"[0-9a-z]+(?:'[0-9a-z]+)*")


def tokenize(text: str) -> List[str]:
    """Split text into normalized word tokens.

    Tokens are maximal runs of alphanumerics (with internal apostrophes,
    so ``O'Brien`` stays one token), lowercased.
    """
    return _TOKEN_PATTERN.findall(text.lower())


def tokenize_with_positions(text: str) -> List[Tuple[str, int]]:
    """Tokenize and return ``(token, position)`` pairs.

    Positions are word offsets (0, 1, 2, ...), the granularity used for
    phrase and proximity matching.
    """
    return [(token, position) for position, token in enumerate(tokenize(text))]


def normalize_term(term: str) -> str:
    """Normalize a single query term the same way indexing does."""
    tokens = tokenize(term)
    return tokens[0] if tokens else ""


def is_phrase(term: str) -> bool:
    """True if a query term tokenizes to more than one word."""
    return len(tokenize(term)) > 1
