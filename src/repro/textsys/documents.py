"""Documents and document stores.

Following Section 2.1 of the paper: a text retrieval system manages a
collection of documents, each uniquely identified by a *docid*, and each
consisting of a set of named text fields (author, title, abstract, ...).

The result of a search carries documents in *short form* (docid plus a
configured subset of fields); the *long form* (all fields) is retrieved
separately by docid.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple

from repro.errors import SchemaError, UnknownDocumentError, UnknownFieldError

__all__ = ["Document", "DocumentStore"]

#: Process-wide store identity counter (see :attr:`DocumentStore.uid`).
_store_uids = itertools.count(1)


@dataclass(frozen=True)
class Document:
    """An immutable document: a docid plus named text fields."""

    docid: str
    fields: Mapping[str, str]

    def __post_init__(self) -> None:
        if not self.docid:
            raise SchemaError("docid must be non-empty")

    def field(self, name: str) -> str:
        """Text of one field; missing fields read as the empty string."""
        return self.fields.get(name, "")

    def short_form(self, short_fields: Iterable[str]) -> "Document":
        """A copy carrying only the given fields (the short form)."""
        kept = {name: self.fields[name] for name in short_fields if name in self.fields}
        return Document(self.docid, kept)


class DocumentStore:
    """The collection of documents behind a text retrieval system.

    ``field_names`` declares the searchable fields; ``short_fields`` is
    the subset returned in short-form result sets.

    ``version`` is a monotone counter stamped on every mutation; caches
    keyed on search results compare it to decide whether their entries
    may still be served (see :mod:`repro.gateway.cache`).
    """

    def __init__(
        self,
        field_names: Iterable[str],
        short_fields: Optional[Iterable[str]] = None,
    ) -> None:
        self.field_names: Tuple[str, ...] = tuple(field_names)
        if not self.field_names:
            raise SchemaError("a document store needs at least one field")
        if len(set(self.field_names)) != len(self.field_names):
            raise SchemaError("duplicate field names")
        if short_fields is None:
            self.short_fields: Tuple[str, ...] = ()
        else:
            self.short_fields = tuple(short_fields)
            unknown = set(self.short_fields) - set(self.field_names)
            if unknown:
                raise UnknownFieldError(
                    f"short fields {sorted(unknown)} are not collection fields"
                )
        self._documents: Dict[str, Document] = {}
        #: Monotone mutation counter (the cache-invalidation stamp).
        self.version = 0
        #: Process-unique store identity.  Two *different* stores can sit
        #: at the same numeric ``version``, so caches that only compare
        #: versions would serve one store's entries for the other; the
        #: ``(uid, version)`` pair — see ``data_fingerprint`` on the
        #: servers — cannot collide across stores.
        self.uid = next(_store_uids)

    def add(self, document: Document) -> None:
        """Add a document; docids must be unique."""
        unknown = set(document.fields) - set(self.field_names)
        if unknown:
            raise UnknownFieldError(
                f"document {document.docid!r} has unknown fields {sorted(unknown)}"
            )
        if document.docid in self._documents:
            raise SchemaError(f"duplicate docid {document.docid!r}")
        self._documents[document.docid] = document
        self.version += 1

    def add_record(self, docid: str, **fields: str) -> Document:
        """Convenience: build and add a document from keyword fields."""
        document = Document(docid, dict(fields))
        self.add(document)
        return document

    def get(self, docid: str) -> Document:
        """Fetch the long form of a document by docid."""
        try:
            return self._documents[docid]
        except KeyError:
            raise UnknownDocumentError(f"unknown docid {docid!r}") from None

    def __contains__(self, docid: str) -> bool:
        return docid in self._documents

    def __len__(self) -> int:
        return len(self._documents)

    def __iter__(self) -> Iterator[Document]:
        return iter(self._documents.values())

    def docids(self) -> List[str]:
        """All docids in insertion order."""
        return list(self._documents)

    def has_field(self, name: str) -> bool:
        return name in self.field_names
