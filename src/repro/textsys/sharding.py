"""Corpus partitioning for the sharded text service.

The paper's loose-integration model (Section 2.1) treats the text system
as one opaque ``search``/``retrieve`` endpoint; a production deployment
splits the collection across shards and scatter-gathers.  This module
holds the *data* half of that story: :func:`partition_store` splits one
:class:`~repro.textsys.documents.DocumentStore` into N disjoint shard
stores, and the resulting :class:`ShardedCorpus` knows how to route
docids and how to merge per-shard result sets back into exactly what the
unsharded server would have returned.

Two properties make the merge faithful to the Section 4 cost formulas:

- **docid ordering** — a single server returns docids in indexing
  (insertion) order.  The partitioner records every docid's *global*
  ordinal, and :meth:`ShardedCorpus.merge_results` sorts the union by
  it, so the merged short form is bit-identical to the unsharded one.
- **postings additivity** — every posting lives in exactly one shard's
  inverted index, and the engine's ``postings_processed`` is a sum of
  retrieved list lengths, so summing the per-shard counts reproduces
  the single-server count exactly (for every node type, including
  truncation expansion: a term absent from a shard contributes nothing
  to that shard's vocabulary or its count).

Partitioning is a snapshot: documents added to the *source* store
afterwards are not re-distributed.  Shard stores may be mutated
individually (their versions feed the merged ``data_fingerprint``).
"""

from __future__ import annotations

import heapq
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import TextSystemError, UnknownDocumentError
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.result import ResultSet
from repro.textsys.server import DEFAULT_TERM_LIMIT, BooleanTextServer

__all__ = [
    "PARTITION_SCHEMES",
    "hash_shard_of",
    "ShardedCorpus",
    "partition_store",
    "build_shard_servers",
    "merge_scored_results",
]

#: The supported document→shard assignment schemes.
PARTITION_SCHEMES = ("hash", "round_robin")


def hash_shard_of(docid: str, shard_count: int) -> int:
    """The stable hash-partition shard for one docid.

    Uses CRC-32 rather than :func:`hash` because Python salts string
    hashing per process — assignments must replay identically across
    runs (and across the client/server boundary).
    """
    return zlib.crc32(docid.encode("utf-8")) % shard_count


@dataclass
class ShardedCorpus:
    """One corpus split into disjoint shard stores, with routing data.

    ``assignments`` maps every docid to its shard; ``global_order``
    remembers each docid's ordinal in the *source* store, which is the
    order a single unsharded server would return matches in.
    """

    source: DocumentStore
    stores: List[DocumentStore]
    assignments: Dict[str, int]
    global_order: Dict[str, int]
    scheme: str

    @property
    def shard_count(self) -> int:
        return len(self.stores)

    def shard_of(self, docid: str) -> int:
        """The shard holding ``docid``; unknown docids raise exactly as
        an unsharded store's ``get`` would."""
        try:
            return self.assignments[docid]
        except KeyError:
            raise UnknownDocumentError(f"unknown docid {docid!r}") from None

    def merge_results(self, partials: Sequence[ResultSet]) -> ResultSet:
        """Union per-shard result sets into the single-server result.

        Docids across shards are disjoint; the union is ordered by
        global ordinal (documents indexed into a shard *after*
        partitioning sort behind the snapshot, by shard order) and the
        per-shard ``postings_processed`` counts are summed.

        Each shard returns matches in its own indexing order, which is a
        subsequence of the global order followed by any post-snapshot
        additions — i.e. already sorted by the merge key.  The scatter
        path therefore k-way heap-merges the per-shard streams in
        ``O(N log S)`` instead of materializing and re-sorting the
        union; a shard stream that is *not* key-sorted (a mutated-then-
        rebuilt shard) falls back to the original sort.
        """
        get_order = self.global_order.get
        streams: List[List[tuple]] = []
        presorted = True
        sequence = 0
        for shard, partial in enumerate(partials):
            stream: List[tuple] = []
            for docid, document in zip(partial.docids, partial.documents):
                ordinal = get_order(docid)
                key = (
                    (0, ordinal, 0)
                    if ordinal is not None
                    else (1, shard, sequence)
                )
                sequence += 1
                if stream and key < stream[-1][0]:
                    presorted = False
                stream.append((key, docid, document))
            if stream:
                streams.append(stream)
        if presorted and len(streams) > 1:
            merged: List[tuple] = list(
                heapq.merge(*streams, key=lambda entry: entry[0])
            )
        else:
            merged = [entry for stream in streams for entry in stream]
            if not presorted or len(streams) > 1:
                merged.sort(key=lambda entry: entry[0])
        return ResultSet(
            docids=tuple(docid for _, docid, _ in merged),
            documents=tuple(document for _, _, document in merged),
            postings_processed=sum(
                partial.postings_processed for partial in partials
            ),
        )


def merge_scored_results(
    partials: Sequence[ResultSet], top_k: Optional[int]
) -> ResultSet:
    """Union per-shard *ranked* result sets into the single-server result.

    Boolean merges order by global ordinal; ranked results order by
    ``(-score, docid)`` — the same total order every
    :class:`~repro.textsys.vector.VectorSpaceEngine` applies — and the
    union is re-truncated to the query's global ``top_k``.  Because each
    shard already returned *its* best ``top_k`` (scored with injected
    global statistics), the global top-k is a subset of the union, so
    the merged answer is bit-identical to the unsharded server's.
    Postings counts are local inverted-list lengths and sum exactly.
    """
    entries = []
    for partial in partials:
        if len(partial.scores) != len(partial.docids):
            raise TextSystemError(
                "a scored merge needs one score per docid; got "
                f"{len(partial.scores)} scores for {len(partial.docids)} docids"
            )
        entries.extend(zip(partial.scores, partial.docids, partial.documents))
    entries.sort(key=lambda entry: (-entry[0], entry[1]))
    if top_k is not None:
        entries = entries[:top_k]
    return ResultSet(
        docids=tuple(docid for _, docid, _ in entries),
        documents=tuple(document for _, _, document in entries),
        postings_processed=sum(
            partial.postings_processed for partial in partials
        ),
        scores=tuple(score for score, _, _ in entries),
    )


def partition_store(
    store: DocumentStore, shards: int, scheme: str = "hash"
) -> ShardedCorpus:
    """Split ``store`` into ``shards`` disjoint stores.

    ``hash`` assigns by a stable digest of the docid (placement survives
    corpus growth); ``round_robin`` deals documents out in insertion
    order (perfectly balanced for a static corpus).  Within every shard,
    documents keep their relative source order, so each shard server's
    result ordering is a subsequence of the global one.
    """
    if shards < 1:
        raise TextSystemError("a sharded corpus needs at least one shard")
    if scheme not in PARTITION_SCHEMES:
        raise TextSystemError(
            f"unknown partition scheme {scheme!r}; known: {list(PARTITION_SCHEMES)}"
        )
    stores = [
        DocumentStore(store.field_names, short_fields=store.short_fields)
        for _ in range(shards)
    ]
    assignments: Dict[str, int] = {}
    global_order: Dict[str, int] = {}
    for ordinal, document in enumerate(store):
        if scheme == "hash":
            shard = hash_shard_of(document.docid, shards)
        else:
            shard = ordinal % shards
        # Re-add as a fresh Document so shard stores never alias the
        # source's mutable field mappings.
        stores[shard].add(Document(document.docid, dict(document.fields)))
        assignments[document.docid] = shard
        global_order[document.docid] = ordinal
    return ShardedCorpus(
        source=store,
        stores=stores,
        assignments=assignments,
        global_order=global_order,
        scheme=scheme,
    )


def build_shard_servers(
    corpus: ShardedCorpus,
    term_limit: int = DEFAULT_TERM_LIMIT,
    engine_mode: Optional[str] = None,
    index_factory=None,
) -> List[BooleanTextServer]:
    """One :class:`BooleanTextServer` per shard store, same term limit.

    All shards run the same evaluation engine (``engine_mode``); mixing
    modes would still merge to identical answers — the engines are
    charge-identical — but a uniform fleet keeps wall-clock predictable.

    ``index_factory(shard_id, store)`` optionally supplies each shard's
    inverted index — the hook the disk-backed deployment uses to serve
    every shard from a prebuilt
    :class:`~repro.textsys.diskindex.DiskInvertedIndex` file instead of
    indexing the shard store in RAM (charges stay identical either way;
    DESIGN invariants 10 and 13 compose).
    """
    return [
        BooleanTextServer(
            store,
            term_limit=term_limit,
            engine_mode=engine_mode,
            index=index_factory(shard_id, store) if index_factory else None,
        )
        for shard_id, store in enumerate(corpus.stores)
    ]
