"""Batched search interface (the Section 8 proposal, implemented).

"If text systems provide the ability to accept multiple queries in one
invocation and can return answers in a batched mode while maintaining
the correspondence between each query and its answers, then (as in the
case for semi-join) invocation and possibly transmission costs for the
queries will be reduced."

:class:`BatchingTextServer` wraps a :class:`BooleanTextServer` with a
``search_batch`` operation: many searches travel in one invocation, each
still subject to the per-search term limit, and the per-query answer
correspondence is preserved — unlike OR-batched semi-joins, which lose
it.  The batch size itself is bounded (``batch_limit``) the way a real
protocol message would be.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.errors import TextSystemError
from repro.textsys.query import SearchNode
from repro.textsys.result import ResultSet
from repro.textsys.server import BooleanTextServer

__all__ = ["BatchingTextServer", "DEFAULT_BATCH_LIMIT"]

#: Default maximum searches per batched invocation.
DEFAULT_BATCH_LIMIT = 50


class BatchingTextServer:
    """A text server extended with multi-query invocations."""

    def __init__(
        self,
        server: BooleanTextServer,
        batch_limit: int = DEFAULT_BATCH_LIMIT,
    ) -> None:
        if batch_limit < 1:
            raise TextSystemError("batch limit must be at least 1")
        self.server = server
        self.batch_limit = batch_limit

    # Pass-throughs so a BatchingTextServer can stand in for the plain one.
    @property
    def store(self):
        return self.server.store

    @property
    def index(self):
        return self.server.index

    @property
    def counters(self):
        return self.server.counters

    @property
    def document_count(self) -> int:
        return self.server.document_count

    @property
    def data_version(self) -> int:
        return self.server.data_version

    @property
    def data_fingerprint(self):
        return self.server.data_fingerprint

    @property
    def term_limit(self) -> int:
        return self.server.term_limit

    def search(self, query: Union[SearchNode, str]) -> ResultSet:
        return self.server.search(query)

    def retrieve(self, docid: str):
        return self.server.retrieve(docid)

    def retrieve_many(self, docids: Sequence[str]):
        return self.server.retrieve_many(docids)

    def document_frequency(self, field: str, term: str) -> int:
        return self.server.document_frequency(field, term)

    def search_batch(
        self, queries: Sequence[Union[SearchNode, str]]
    ) -> List[ResultSet]:
        """Evaluate many searches in one invocation.

        Answers come back in query order (the correspondence Section 8
        asks for).  Raises when the batch exceeds ``batch_limit``.
        """
        if not queries:
            raise TextSystemError("a batch must contain at least one search")
        if len(queries) > self.batch_limit:
            raise TextSystemError(
                f"batch of {len(queries)} searches exceeds the limit of "
                f"{self.batch_limit}"
            )
        return [self.server.search(query) for query in queries]
