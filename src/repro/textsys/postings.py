"""Posting lists and sorted-list set operations.

Per Section 2.1: "In an inverted index, each word is associated with an
inverted list of postings that record the docids of documents in which the
word appears. ... Typically the lists are sorted and set operations take
time linear in the lengths of the lists."

A :class:`PostingList` is a docid-sorted sequence of
:class:`Posting` (docid + word positions within the field).  The merge
operations below are the linear-time sorted-list algorithms the paper's
cost model assumes; they operate on internal integer docid ordinals
assigned by the index, so comparisons are cheap and ordering is total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Tuple

__all__ = [
    "Posting",
    "PostingList",
    "intersect",
    "union",
    "difference",
    "positional_intersect",
]


@dataclass(frozen=True)
class Posting:
    """One posting: a document ordinal plus the word positions of the term.

    ``doc`` is the index-internal integer ordinal of the document (assigned
    in indexing order), which keeps list merges cheap and docid-order
    total.  ``positions`` is a sorted tuple of word offsets in the field.
    """

    doc: int
    positions: Tuple[int, ...] = ()


class PostingList:
    """A docid-ordinal-sorted, immutable list of postings."""

    __slots__ = ("_postings",)

    def __init__(self, postings: Iterable[Posting] = ()) -> None:
        postings = list(postings)
        for earlier, later in zip(postings, postings[1:]):
            if earlier.doc >= later.doc:
                raise ValueError("postings must be strictly sorted by doc")
        self._postings: Tuple[Posting, ...] = tuple(postings)

    def __len__(self) -> int:
        return len(self._postings)

    def __iter__(self) -> Iterator[Posting]:
        return iter(self._postings)

    def __getitem__(self, index: int) -> Posting:
        return self._postings[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingList):
            return NotImplemented
        return self._postings == other._postings

    def __repr__(self) -> str:
        return f"PostingList({[posting.doc for posting in self._postings]})"

    def docs(self) -> List[int]:
        """The document ordinals, sorted ascending."""
        return [posting.doc for posting in self._postings]

    @classmethod
    def from_docs(cls, docs: Iterable[int]) -> "PostingList":
        """Build a positions-free list from sorted doc ordinals."""
        return cls(Posting(doc) for doc in docs)


def intersect(left: PostingList, right: PostingList) -> PostingList:
    """Docs present in both lists (positions dropped)."""
    out: List[Posting] = []
    i = j = 0
    while i < len(left) and j < len(right):
        a, b = left[i].doc, right[j].doc
        if a == b:
            out.append(Posting(a))
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return PostingList(out)


def union(left: PostingList, right: PostingList) -> PostingList:
    """Docs present in either list (positions dropped)."""
    out: List[Posting] = []
    i = j = 0
    while i < len(left) and j < len(right):
        a, b = left[i].doc, right[j].doc
        if a == b:
            out.append(Posting(a))
            i += 1
            j += 1
        elif a < b:
            out.append(Posting(a))
            i += 1
        else:
            out.append(Posting(b))
            j += 1
    while i < len(left):
        out.append(Posting(left[i].doc))
        i += 1
    while j < len(right):
        out.append(Posting(right[j].doc))
        j += 1
    return PostingList(out)


def difference(left: PostingList, right: PostingList) -> PostingList:
    """Docs in ``left`` but not in ``right`` (positions dropped)."""
    out: List[Posting] = []
    i = j = 0
    while i < len(left) and j < len(right):
        a, b = left[i].doc, right[j].doc
        if a == b:
            i += 1
            j += 1
        elif a < b:
            out.append(Posting(a))
            i += 1
        else:
            j += 1
    while i < len(left):
        out.append(Posting(left[i].doc))
        i += 1
    return PostingList(out)


def positional_intersect(
    left: PostingList, right: PostingList, min_gap: int, max_gap: int
) -> PostingList:
    """Docs where some position pair satisfies ``min_gap <= p_r - p_l <= max_gap``.

    The surviving postings carry the matching *right* positions, so chains
    of positional intersections implement multi-word phrases: for a phrase
    ``w1 w2 w3`` fold with ``min_gap = max_gap = 1``.  For proximity
    ``w1 nearN w2`` use ``min_gap = -N, max_gap = N``.
    """
    out: List[Posting] = []
    i = j = 0
    while i < len(left) and j < len(right):
        a, b = left[i].doc, right[j].doc
        if a == b:
            matched = tuple(
                sorted(
                    {
                        right_pos
                        for left_pos in left[i].positions
                        for right_pos in right[j].positions
                        if min_gap <= right_pos - left_pos <= max_gap
                    }
                )
            )
            if matched:
                out.append(Posting(a, matched))
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return PostingList(out)
