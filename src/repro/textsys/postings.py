"""Posting lists and sorted-list set operations.

Per Section 2.1: "In an inverted index, each word is associated with an
inverted list of postings that record the docids of documents in which the
word appears. ... Typically the lists are sorted and set operations take
time linear in the lengths of the lists."

A :class:`PostingList` is a docid-sorted sequence of postings (docid +
word positions within the field).  Internally the docids live in a flat
``array('q')`` of index-internal integer ordinals, with the position
tuples kept in a parallel structure that is materialized only for the
phrase/proximity paths that need it — Boolean merges never touch
positions, so they run over plain machine integers.

Two families of kernels operate on these lists:

- the *linear* two-pointer merges the paper's cost model assumes
  (:func:`intersect`, :func:`union`, :func:`difference`,
  :func:`positional_intersect`);
- *accelerated* kernels with the same outputs: a galloping
  (exponential-search) intersection for skewed list pairs
  (:func:`intersect`, automatic dispatch) and a heap-based k-way union
  (:func:`union_many`) that replaces quadratic pairwise folding for
  wide OR fan-ins.

All kernels drop positions (matching the Boolean semantics of the
original merges) and return ordinal-sorted lists; only the *wall-clock*
behaviour differs, never the result.
"""

from __future__ import annotations

import heapq
from array import array
from bisect import bisect_left
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

__all__ = [
    "Posting",
    "PostingList",
    "intersect",
    "intersect_linear",
    "intersect_many",
    "union",
    "union_many",
    "difference",
    "positional_intersect",
    "GALLOP_RATIO",
]

#: Switch the pairwise intersection to galloping search when the longer
#: list is at least this many times the shorter one.  At that skew the
#: ``|small| * log |large|`` bisections (C-speed) beat the
#: ``|small| + |large|`` interpreter steps of the linear merge.
GALLOP_RATIO = 8

_EMPTY = array("q")


@dataclass(frozen=True)
class Posting:
    """One posting: a document ordinal plus the word positions of the term.

    ``doc`` is the index-internal integer ordinal of the document (assigned
    in indexing order), which keeps list merges cheap and docid-order
    total.  ``positions`` is a sorted tuple of word offsets in the field.
    """

    doc: int
    positions: Tuple[int, ...] = ()


class PostingList:
    """A docid-ordinal-sorted, immutable list of postings.

    Docids are stored in an ``array('q')``; positions, when any posting
    carries them, in a parallel tuple-of-tuples (``None`` for a
    positions-free list).  :class:`Posting` views are materialized lazily
    on item access, so the merge kernels never pay per-posting object
    construction.
    """

    __slots__ = ("_docs", "_positions")

    def __init__(self, postings: Iterable[Posting] = ()) -> None:
        docs = array("q")
        positions: List[Tuple[int, ...]] = []
        has_positions = False
        previous: Optional[int] = None
        for posting in postings:
            doc = posting.doc
            if previous is not None and previous >= doc:
                raise ValueError("postings must be strictly sorted by doc")
            previous = doc
            docs.append(doc)
            positions.append(posting.positions)
            if posting.positions:
                has_positions = True
        self._docs = docs
        self._positions: Optional[Tuple[Tuple[int, ...], ...]] = (
            tuple(positions) if has_positions else None
        )

    # ------------------------------------------------------------------
    # trusted fast constructors (kernels and the index builder)
    # ------------------------------------------------------------------
    @classmethod
    def _from_sorted(
        cls,
        docs: array,
        positions: Optional[Tuple[Tuple[int, ...], ...]] = None,
    ) -> "PostingList":
        """Wrap an already strictly-sorted ``array('q')`` without copying.

        Internal: callers guarantee sortedness and must never mutate
        ``docs`` afterwards.
        """
        out = cls.__new__(cls)
        out._docs = docs
        out._positions = positions
        return out

    @classmethod
    def from_docs(cls, docs: Iterable[int]) -> "PostingList":
        """Build a positions-free list from sorted doc ordinals."""
        out = array("q", docs)
        previous: Optional[int] = None
        for doc in out:
            if previous is not None and previous >= doc:
                raise ValueError("postings must be strictly sorted by doc")
            previous = doc
        return cls._from_sorted(out)

    # ------------------------------------------------------------------
    # sequence protocol (Posting views, for compatibility)
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._docs)

    def __iter__(self) -> Iterator[Posting]:
        if self._positions is None:
            return (Posting(doc) for doc in self._docs)
        return (
            Posting(doc, positions)
            for doc, positions in zip(self._docs, self._positions)
        )

    def __getitem__(self, index: int) -> Posting:
        if self._positions is None:
            return Posting(self._docs[index])
        return Posting(self._docs[index], self._positions[index])

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PostingList):
            return NotImplemented
        if self._docs != other._docs:
            return False
        if self._positions == other._positions:
            return True
        # A positions-free list equals one whose postings all carry ().
        mine = self._positions or ((),) * len(self._docs)
        theirs = other._positions or ((),) * len(other._docs)
        return mine == theirs

    def __repr__(self) -> str:
        return f"PostingList({list(self._docs)})"

    # ------------------------------------------------------------------
    # raw access (the kernels' view)
    # ------------------------------------------------------------------
    @property
    def doc_array(self) -> array:
        """The underlying sorted ``array('q')`` of ordinals (do not mutate)."""
        return self._docs

    def positions_at(self, index: int) -> Tuple[int, ...]:
        """The position tuple of the posting at ``index`` (() if none)."""
        if self._positions is None:
            return ()
        return self._positions[index]

    def docs(self) -> List[int]:
        """The document ordinals, sorted ascending."""
        return list(self._docs)

    def without_positions(self) -> "PostingList":
        """This list with positions dropped (shares the docid array)."""
        if self._positions is None:
            return self
        return PostingList._from_sorted(self._docs)


# ----------------------------------------------------------------------
# array kernels
# ----------------------------------------------------------------------
def _intersect_linear(small: array, large: array) -> array:
    out = array("q")
    append = out.append
    i = j = 0
    len_a, len_b = len(small), len(large)
    while i < len_a and j < len_b:
        a, b = small[i], large[j]
        if a == b:
            append(a)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    return out


def _intersect_gallop(small: array, large: array) -> array:
    """Intersect by bisecting each element of the short list into the long
    one, advancing a moving lower bound (exponential/galloping search with
    a C-implemented probe)."""
    out = array("q")
    append = out.append
    lo = 0
    hi = len(large)
    for doc in small:
        lo = bisect_left(large, doc, lo, hi)
        if lo == hi:
            break
        if large[lo] == doc:
            append(doc)
            lo += 1
    return out


def _intersect_arrays(left: array, right: array) -> array:
    if len(left) > len(right):
        left, right = right, left
    if not left:
        return array("q")
    if len(right) >= GALLOP_RATIO * len(left):
        return _intersect_gallop(left, right)
    return _intersect_linear(left, right)


def _union_arrays(left: array, right: array) -> array:
    if not left:
        return array("q", right)
    if not right:
        return array("q", left)
    out = array("q")
    append = out.append
    i = j = 0
    len_a, len_b = len(left), len(right)
    while i < len_a and j < len_b:
        a, b = left[i], right[j]
        if a == b:
            append(a)
            i += 1
            j += 1
        elif a < b:
            append(a)
            i += 1
        else:
            append(b)
            j += 1
    if i < len_a:
        out.extend(left[i:])
    if j < len_b:
        out.extend(right[j:])
    return out


def _union_many_arrays(arrays: Sequence[array]) -> array:
    operands = [operand for operand in arrays if len(operand)]
    if not operands:
        return array("q")
    if len(operands) == 1:
        return array("q", operands[0])
    if len(operands) == 2:
        return _union_arrays(operands[0], operands[1])
    # Heap-based k-way merge: each of the N total postings costs one
    # O(log k) heap step, versus the O(N * k) element copies of folding
    # pairwise unions left-to-right.
    out = array("q")
    append = out.append
    previous = None
    for doc in heapq.merge(*operands):
        if doc != previous:
            append(doc)
            previous = doc
    return out


def _difference_arrays(left: array, right: array) -> array:
    if not right:
        return array("q", left)
    out = array("q")
    append = out.append
    i = j = 0
    len_a, len_b = len(left), len(right)
    while i < len_a and j < len_b:
        a, b = left[i], right[j]
        if a == b:
            i += 1
            j += 1
        elif a < b:
            append(a)
            i += 1
        else:
            j += 1
    if i < len_a:
        out.extend(left[i:])
    return out


# ----------------------------------------------------------------------
# public PostingList operations
# ----------------------------------------------------------------------
def intersect(left: PostingList, right: PostingList) -> PostingList:
    """Docs present in both lists (positions dropped).

    Dispatches to galloping search when the lengths are skewed by at
    least :data:`GALLOP_RATIO`, linear merge otherwise; the output is
    identical either way.

    A list that still lives on disk (see :mod:`repro.textsys.diskindex`)
    may expose a ``gallop_into`` hook; on the skewed path the hook is
    preferred, because it answers the same membership probes by
    bisecting the list's *skip table* and decoding only the touched
    compressed blocks — the short list drives, the long list is never
    materialized.  An empty operand short-circuits for the same reason.
    """
    small, large = (left, right) if len(left) <= len(right) else (right, left)
    if not len(small):
        return PostingList._from_sorted(array("q"))
    if len(large) >= GALLOP_RATIO * len(small):
        gallop_hook = getattr(large, "gallop_into", None)
        if gallop_hook is not None:
            return PostingList._from_sorted(gallop_hook(small.doc_array))
    return PostingList._from_sorted(_intersect_arrays(left._docs, right._docs))


def intersect_linear(left: PostingList, right: PostingList) -> PostingList:
    """The paper's linear two-pointer intersection, never galloping.

    The reference engine pins this kernel so the accelerated dispatch in
    :func:`intersect` has a fixed oracle — and benchmark baseline — that
    costs ``|left| + |right|`` interpreter steps regardless of skew.
    """
    return PostingList._from_sorted(_intersect_linear(left._docs, right._docs))


def intersect_many(lists: Sequence[PostingList]) -> PostingList:
    """Intersect several lists, smallest pair first, stopping when empty."""
    if not lists:
        raise ValueError("intersect_many of no lists")
    ordered = sorted(lists, key=len)
    current = ordered[0]._docs
    for other in ordered[1:]:
        if not current:
            break
        current = _intersect_arrays(current, other._docs)
    return PostingList._from_sorted(array("q", current))


def union(left: PostingList, right: PostingList) -> PostingList:
    """Docs present in either list (positions dropped)."""
    return PostingList._from_sorted(_union_arrays(left._docs, right._docs))


def union_many(lists: Sequence[PostingList]) -> PostingList:
    """Union any number of lists with one heap-based k-way merge.

    Equivalent to folding :func:`union` pairwise but linear in the total
    number of postings (times ``log k``) instead of quadratic in the
    operand count — the shape OR-batched semi-joins produce.
    """
    return PostingList._from_sorted(
        _union_many_arrays([operand._docs for operand in lists])
    )


def difference(left: PostingList, right: PostingList) -> PostingList:
    """Docs in ``left`` but not in ``right`` (positions dropped)."""
    return PostingList._from_sorted(_difference_arrays(left._docs, right._docs))


def positional_intersect(
    left: PostingList, right: PostingList, min_gap: int, max_gap: int
) -> PostingList:
    """Docs where some position pair satisfies ``min_gap <= p_r - p_l <= max_gap``.

    The surviving postings carry the matching *right* positions, so chains
    of positional intersections implement multi-word phrases: for a phrase
    ``w1 w2 w3`` fold with ``min_gap = max_gap = 1``.  For proximity
    ``w1 nearN w2`` use ``min_gap = -N, max_gap = N``.
    """
    left_docs, right_docs = left._docs, right._docs
    out_docs = array("q")
    out_positions: List[Tuple[int, ...]] = []
    i = j = 0
    len_a, len_b = len(left_docs), len(right_docs)
    while i < len_a and j < len_b:
        a, b = left_docs[i], right_docs[j]
        if a == b:
            right_positions = right.positions_at(j)
            matched = tuple(
                sorted(
                    {
                        right_pos
                        for left_pos in left.positions_at(i)
                        for right_pos in right_positions
                        if min_gap <= right_pos - left_pos <= max_gap
                    }
                )
            )
            if matched:
                out_docs.append(a)
                out_positions.append(matched)
            i += 1
            j += 1
        elif a < b:
            i += 1
        else:
            j += 1
    if not out_docs:
        return PostingList._from_sorted(out_docs)
    return PostingList._from_sorted(out_docs, tuple(out_positions))
