"""Boolean text retrieval system substrate (the CMU Mercury stand-in).

Implements the Section 2.1 model: documents with named text fields,
positional inverted indexes, linear-time sorted-list set operations,
field-scoped word/phrase/truncation/proximity terms with ``and``/``or``/
``not`` connectives, short/long result forms, and a per-search term
limit ``M``.
"""

from repro.textsys.analysis import is_phrase, normalize_term, tokenize, tokenize_with_positions
from repro.textsys.batching import DEFAULT_BATCH_LIMIT, BatchingTextServer
from repro.textsys.diskindex import (
    BlockCache,
    DiskIndexBuilder,
    DiskInvertedIndex,
    DiskPostingList,
    build_disk_index,
)
from repro.textsys.persistence import load_store, save_store
from repro.textsys.vector import (
    ScoredDocument,
    VectorQuery,
    VectorSearchOutcome,
    VectorSpaceEngine,
    VectorStatistics,
)
from repro.textsys.vectorserver import VectorTextServer, build_vector_shard_servers
from repro.textsys.documents import Document, DocumentStore
from repro.textsys.engine import (
    ENGINE_MODE_ENV,
    ENGINE_MODES,
    EvaluationResult,
    evaluate,
    matches_document,
    resolve_engine_mode,
)
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.parser import DEFAULT_FIELD_CODES, parse_search
from repro.textsys.postings import (
    Posting,
    PostingList,
    difference,
    intersect,
    intersect_linear,
    intersect_many,
    positional_intersect,
    union,
    union_many,
)
from repro.textsys.rewriter import RewriteResult, estimated_result_size, rewrite
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    ProximityQuery,
    SearchNode,
    TermQuery,
    TruncatedQuery,
    and_all,
    make_term,
    or_all,
)
from repro.textsys.result import ResultSet
from repro.textsys.server import DEFAULT_TERM_LIMIT, BooleanTextServer, ServerCounters
from repro.textsys.sharding import (
    PARTITION_SCHEMES,
    ShardedCorpus,
    build_shard_servers,
    hash_shard_of,
    merge_scored_results,
    partition_store,
)

__all__ = [
    "Document",
    "DocumentStore",
    "InvertedIndex",
    "BlockCache",
    "DiskIndexBuilder",
    "DiskInvertedIndex",
    "DiskPostingList",
    "build_disk_index",
    "Posting",
    "PostingList",
    "intersect",
    "intersect_linear",
    "intersect_many",
    "union",
    "union_many",
    "difference",
    "positional_intersect",
    "ENGINE_MODES",
    "ENGINE_MODE_ENV",
    "resolve_engine_mode",
    "RewriteResult",
    "rewrite",
    "estimated_result_size",
    "SearchNode",
    "TermQuery",
    "PhraseQuery",
    "TruncatedQuery",
    "ProximityQuery",
    "AndQuery",
    "OrQuery",
    "NotQuery",
    "make_term",
    "and_all",
    "or_all",
    "parse_search",
    "DEFAULT_FIELD_CODES",
    "evaluate",
    "matches_document",
    "EvaluationResult",
    "ResultSet",
    "BooleanTextServer",
    "BatchingTextServer",
    "DEFAULT_BATCH_LIMIT",
    "ServerCounters",
    "DEFAULT_TERM_LIMIT",
    "tokenize",
    "tokenize_with_positions",
    "normalize_term",
    "is_phrase",
    "save_store",
    "load_store",
    "VectorSpaceEngine",
    "ScoredDocument",
    "VectorQuery",
    "VectorSearchOutcome",
    "VectorStatistics",
    "VectorTextServer",
    "build_vector_shard_servers",
    "PARTITION_SCHEMES",
    "ShardedCorpus",
    "partition_store",
    "build_shard_servers",
    "merge_scored_results",
    "hash_shard_of",
]
