"""Parser for the textual search-expression syntax.

Accepted syntax (Section 2.1 examples):

- field-scoped terms: ``TI='belief update'``, ``AU='smith'``
- truncation: ``TI='filter?'``
- proximity: ``AB='information near10 filtering'``
- Boolean connectives: ``and``, ``or``, ``not`` (case-insensitive) with
  parentheses.

Field codes are resolved through a caller-supplied mapping (e.g.
``{"TI": "title", "AU": "author"}``); full field names always work.
"""

from __future__ import annotations

import re
from typing import Dict, List, Mapping, Optional

from repro.errors import SearchSyntaxError
from repro.textsys.analysis import normalize_term
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    ProximityQuery,
    SearchNode,
    make_term,
)

__all__ = ["parse_search", "term_node", "DEFAULT_FIELD_CODES"]

#: Conventional bibliographic field codes (LOCIS/Dialog style).
DEFAULT_FIELD_CODES: Dict[str, str] = {
    "TI": "title",
    "AU": "author",
    "AB": "abstract",
    "YR": "year",
    "IN": "institution",
}

_TOKEN_RE = re.compile(
    r"""
    \s*(
        \( | \) | =            # punctuation
        | '(?:[^'])*'          # single-quoted string
        | [A-Za-z_][A-Za-z0-9_.]*  # identifier / keyword
    )
    """,
    re.VERBOSE,
)

_NEAR_RE = re.compile(r"^(\S+)\s+near(\d+)\s+(\S+)$", re.IGNORECASE)


def _lex(text: str) -> List[str]:
    tokens: List[str] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise SearchSyntaxError(f"cannot tokenize search text at {remainder[:20]!r}")
        tokens.append(match.group(1))
        position = match.end()
    return tokens


class _Parser:
    """Recursive-descent parser over the lexed token stream."""

    def __init__(self, tokens: List[str], field_codes: Mapping[str, str]) -> None:
        self._tokens = tokens
        self._position = 0
        self._field_codes = dict(field_codes)

    def parse(self) -> SearchNode:
        node = self._or_expression()
        if self._position != len(self._tokens):
            raise SearchSyntaxError(
                f"unexpected trailing token {self._peek()!r} in search expression"
            )
        return node

    # ------------------------------------------------------------------
    def _peek(self) -> Optional[str]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def _advance(self) -> str:
        token = self._peek()
        if token is None:
            raise SearchSyntaxError("unexpected end of search expression")
        self._position += 1
        return token

    def _expect(self, token: str) -> None:
        actual = self._advance()
        if actual != token:
            raise SearchSyntaxError(f"expected {token!r}, found {actual!r}")

    # ------------------------------------------------------------------
    def _or_expression(self) -> SearchNode:
        operands = [self._and_expression()]
        while self._peek() is not None and self._peek().lower() == "or":
            self._advance()
            operands.append(self._and_expression())
        if len(operands) == 1:
            return operands[0]
        return OrQuery(tuple(operands))

    def _and_expression(self) -> SearchNode:
        operands = [self._unary()]
        while self._peek() is not None and self._peek().lower() == "and":
            self._advance()
            operands.append(self._unary())
        if len(operands) == 1:
            return operands[0]
        return AndQuery(tuple(operands))

    def _unary(self) -> SearchNode:
        token = self._peek()
        if token is not None and token.lower() == "not":
            self._advance()
            return NotQuery(self._unary())
        return self._primary()

    def _primary(self) -> SearchNode:
        token = self._peek()
        if token == "(":
            self._advance()
            node = self._or_expression()
            self._expect(")")
            return node
        return self._term()

    def _term(self) -> SearchNode:
        field_token = self._advance()
        if not re.match(r"^[A-Za-z_]", field_token):
            raise SearchSyntaxError(f"expected a field name, found {field_token!r}")
        field = self._field_codes.get(field_token.upper(), field_token)
        self._expect("=")
        quoted = self._advance()
        if not (quoted.startswith("'") and quoted.endswith("'")):
            raise SearchSyntaxError(f"expected a quoted term, found {quoted!r}")
        body = quoted[1:-1]
        return term_node(field, body)


def term_node(field: str, body: str) -> SearchNode:
    """Build the search node for one quoted term body.

    Handles every basic-term form: single word, phrase, truncation
    (trailing ``?``), and proximity (``w1 nearN w2``).
    """
    near = _NEAR_RE.match(body.strip())
    if near is not None:
        left = normalize_term(near.group(1))
        right = normalize_term(near.group(3))
        distance = int(near.group(2))
        return ProximityQuery(field, left, right, distance)
    return make_term(field, body)


def parse_search(
    text: str, field_codes: Optional[Mapping[str, str]] = None
) -> SearchNode:
    """Parse a textual search expression into a :class:`SearchNode` tree.

    >>> node = parse_search("TI='belief update' and AU='radhika'")
    >>> node.term_count()
    2
    """
    if field_codes is None:
        field_codes = DEFAULT_FIELD_CODES
    tokens = _lex(text)
    if not tokens:
        raise SearchSyntaxError("empty search expression")
    return _Parser(tokens, field_codes).parse()
