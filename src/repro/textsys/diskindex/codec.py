"""Integer and posting-block codecs for the disk index.

Two primitives:

- **LEB128 varints** (:func:`write_uvarint` / :func:`read_uvarint`) for
  counts, offsets, and position gaps — 7 payload bits per byte,
  arbitrary 64-bit range;
- **group varints** (:func:`encode_group` / :func:`decode_group`) for
  docid gaps: values are packed four to a group behind one tag byte
  whose four 2-bit codes select a 1/2/4/8-byte little-endian width per
  value.  Unlike the classic 1/2/3/4 grouping this variant round-trips
  the full unsigned 64-bit range, which the property tests exercise at
  the extremes.

On top of them, the **posting block** format
(:func:`encode_block` / :func:`decode_block_docs` /
:func:`decode_block_positions`): a block holds up to ``block_size``
postings of one term as

``[n_docs uvarint][doc_bytes_len uvarint][docid gaps, group varint]
[per-doc positions: n_pos uvarint, first pos uvarint, gaps uvarint]``

Docids are strictly increasing ordinals stored as gaps from the
previous block's last docid (``prev_last = -1`` for the first block), so
every gap is ≥ 1 and each block decodes independently given its skip
entry.  ``doc_bytes_len`` lets the reader decode docids without touching
the positions section (Boolean merges never need positions) and,
symmetrically, skip straight to positions when only those are wanted.
"""

from __future__ import annotations

from array import array
from typing import List, Sequence, Tuple

from repro.errors import TextSystemError

__all__ = [
    "write_uvarint",
    "read_uvarint",
    "encode_uvarint",
    "encode_group",
    "decode_group",
    "encode_block",
    "decode_block_docs",
    "decode_block_positions",
]

_MAX_U64 = (1 << 64) - 1

#: Group-varint width table: 2-bit code -> byte width.
_GROUP_WIDTHS = (1, 2, 4, 8)


# ----------------------------------------------------------------------
# LEB128 varints
# ----------------------------------------------------------------------
def write_uvarint(out: bytearray, value: int) -> None:
    """Append one unsigned LEB128 varint to ``out``."""
    if value < 0 or value > _MAX_U64:
        raise TextSystemError(f"uvarint out of range: {value}")
    while value >= 0x80:
        out.append((value & 0x7F) | 0x80)
        value >>= 7
    out.append(value)


def encode_uvarint(value: int) -> bytes:
    """One unsigned LEB128 varint as bytes."""
    out = bytearray()
    write_uvarint(out, value)
    return bytes(out)


def read_uvarint(buf, pos: int) -> Tuple[int, int]:
    """Decode one varint at ``pos``; returns ``(value, next_pos)``."""
    shift = 0
    value = 0
    while True:
        try:
            byte = buf[pos]
        except IndexError:
            raise TextSystemError("truncated uvarint") from None
        pos += 1
        value |= (byte & 0x7F) << shift
        if byte < 0x80:
            if value > _MAX_U64:
                raise TextSystemError("uvarint overflows 64 bits")
            return value, pos
        shift += 7
        if shift > 63:
            raise TextSystemError("uvarint overflows 64 bits")


# ----------------------------------------------------------------------
# group varints (1/2/4/8-byte widths; full 64-bit range)
# ----------------------------------------------------------------------
def encode_group(values: Sequence[int]) -> bytes:
    """Encode a sequence of unsigned 64-bit ints as group varints.

    Values are packed in groups of four behind a tag byte; a trailing
    partial group is zero-padded (the decoder is told the true count).
    """
    out = bytearray()
    append = out.append
    total = len(values)
    for start in range(0, total, 4):
        group = values[start : start + 4]
        tag = 0
        parts: List[bytes] = []
        for slot, value in enumerate(group):
            if value < 0 or value > _MAX_U64:
                raise TextSystemError(f"group varint value out of range: {value}")
            if value < 0x100:
                code = 0
            elif value < 0x10000:
                code = 1
            elif value < 0x100000000:
                code = 2
            else:
                code = 3
            tag |= code << (2 * slot)
            parts.append(value.to_bytes(_GROUP_WIDTHS[code], "little"))
        append(tag)
        for part in parts:
            out += part
    return bytes(out)


def decode_group(buf, pos: int, count: int) -> Tuple[List[int], int]:
    """Decode ``count`` group-varint values at ``pos``."""
    values: List[int] = []
    append = values.append
    from_bytes = int.from_bytes
    remaining = count
    try:
        while remaining > 0:
            tag = buf[pos]
            pos += 1
            for slot in range(min(4, remaining)):
                width = _GROUP_WIDTHS[(tag >> (2 * slot)) & 0x3]
                chunk = bytes(buf[pos : pos + width])
                if len(chunk) != width:
                    raise TextSystemError("truncated group varint")
                append(from_bytes(chunk, "little"))
                pos += width
            remaining -= 4
    except IndexError:
        raise TextSystemError("truncated group varint") from None
    return values, pos


# ----------------------------------------------------------------------
# posting blocks
# ----------------------------------------------------------------------
def encode_block(
    docs: Sequence[int],
    positions: Sequence[Tuple[int, ...]],
    prev_last: int,
) -> bytes:
    """Encode one posting block (docids + per-doc positions).

    ``docs`` must be strictly increasing and all greater than
    ``prev_last`` (the last docid of the preceding block, ``-1`` for the
    first); ``positions`` holds one sorted, strictly-increasing tuple of
    word offsets per doc (may be empty).
    """
    if not docs:
        raise TextSystemError("cannot encode an empty posting block")
    if len(positions) != len(docs):
        raise TextSystemError("positions/docs length mismatch in block")
    gaps: List[int] = []
    previous = prev_last
    for doc in docs:
        if doc <= previous:
            raise TextSystemError("block docids must be strictly increasing")
        gaps.append(doc - previous)
        previous = doc
    doc_bytes = encode_group(gaps)

    pos_bytes = bytearray()
    for doc_positions in positions:
        write_uvarint(pos_bytes, len(doc_positions))
        last = None
        for position in doc_positions:
            if last is None:
                write_uvarint(pos_bytes, position)
            else:
                if position <= last:
                    raise TextSystemError(
                        "block positions must be strictly increasing"
                    )
                write_uvarint(pos_bytes, position - last)
            last = position

    out = bytearray()
    write_uvarint(out, len(docs))
    write_uvarint(out, len(doc_bytes))
    out += doc_bytes
    out += pos_bytes
    return bytes(out)


def decode_block_docs(buf, prev_last: int) -> array:
    """Decode just the docid ordinals of one block into an ``array('q')``."""
    n_docs, pos = read_uvarint(buf, 0)
    _, pos = read_uvarint(buf, pos)  # doc_bytes_len (unused on this path)
    gaps, _ = decode_group(buf, pos, n_docs)
    docs = array("q")
    append = docs.append
    current = prev_last
    for gap in gaps:
        current += gap
        append(current)
    return docs


def decode_block_positions(buf) -> Tuple[Tuple[int, ...], ...]:
    """Decode just the per-doc position tuples of one block."""
    n_docs, pos = read_uvarint(buf, 0)
    doc_bytes_len, pos = read_uvarint(buf, pos)
    pos += doc_bytes_len  # skip the docid section entirely
    out: List[Tuple[int, ...]] = []
    for _ in range(n_docs):
        n_positions, pos = read_uvarint(buf, pos)
        doc_positions: List[int] = []
        current = 0
        for index in range(n_positions):
            gap, pos = read_uvarint(buf, pos)
            current = gap if index == 0 else current + gap
            doc_positions.append(current)
        out.append(tuple(doc_positions))
    return tuple(out)
