"""Bounded LRU cache for decoded posting blocks.

The disk reader decodes posting blocks on demand; this cache keeps the
hot decoded blocks in memory under a configurable **byte budget**, so
the resident footprint of a reader stays bounded no matter how large the
index file is.  Sizes are estimates (``array('q')`` payload bytes for
docid blocks, tuple-element counts for position blocks) — the budget is
a memory *governor*, not an allocator.

A budget of zero disables caching entirely (every fetch is physical);
``None`` means unbounded (only sensible for tests).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Optional, Tuple

from repro.errors import TextSystemError

__all__ = ["BlockCache", "CacheStats", "DEFAULT_CACHE_BUDGET"]

#: Default decoded-block budget: 64 MiB.
DEFAULT_CACHE_BUDGET = 64 * 1024 * 1024


@dataclass
class CacheStats:
    """Cumulative cache observability counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    cached_bytes: int = 0
    entries: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "cached_bytes": self.cached_bytes,
            "entries": self.entries,
            "hit_rate": round(self.hit_rate, 4),
        }


class BlockCache:
    """Byte-budgeted LRU over decoded blocks.

    Keys are arbitrary hashables (the reader uses
    ``(field, term, block_index, kind)``); values are stored together
    with their estimated byte size.  Inserting a value larger than the
    whole budget simply bypasses the cache.
    """

    def __init__(self, budget_bytes: Optional[int] = DEFAULT_CACHE_BUDGET) -> None:
        if budget_bytes is not None and budget_bytes < 0:
            raise TextSystemError("cache budget must be non-negative")
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[Hashable, Tuple[Any, int]]" = OrderedDict()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: Hashable) -> Optional[Any]:
        entry = self._entries.get(key)
        if entry is None:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return entry[0]

    def put(self, key: Hashable, value: Any, nbytes: int) -> None:
        budget = self.budget_bytes
        if budget == 0 or (budget is not None and nbytes > budget):
            return
        old = self._entries.pop(key, None)
        if old is not None:
            self.stats.cached_bytes -= old[1]
        self._entries[key] = (value, nbytes)
        self.stats.cached_bytes += nbytes
        if budget is not None:
            while self.stats.cached_bytes > budget and self._entries:
                _, (_, evicted_bytes) = self._entries.popitem(last=False)
                self.stats.cached_bytes -= evicted_bytes
                self.stats.evictions += 1
        self.stats.entries = len(self._entries)

    def clear(self) -> None:
        """Drop every entry (the stats counters survive)."""
        self._entries.clear()
        self.stats.cached_bytes = 0
        self.stats.entries = 0
