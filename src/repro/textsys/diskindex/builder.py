"""Streaming builder for the disk-backed inverted index.

The builder consumes documents one at a time (a generator is enough — the
corpus never has to exist in memory), accumulates postings in a bounded
in-memory buffer, and **spills** the buffer as a sorted segment run on
disk whenever the configured memory budget fills.  :meth:`finish` k-way
merges every segment (plus the final buffer) in ``(field, term, docid)``
order and writes the immutable index file in one sequential pass:

- per term: delta + group-varint compressed posting blocks (docids and
  word positions) followed by the term's skip table (one
  ``last-docid / doc-count / byte-length`` entry per block);
- the docid table (ordinal → external docid, insertion order);
- one term dictionary per field (term, document frequency, block count,
  data/skip offsets) — the "main memory directory" of the [DH91] model;
- a JSON meta footer and a fixed-size trailer pointing at it.

Document ordinals are assigned in :meth:`add_document` call order, so an
index built by streaming a :class:`~repro.textsys.documents.
DocumentStore` reproduces the in-memory index's ordinal assignment
exactly — the root of the charge-identity invariant (DESIGN inv. 13).
"""

from __future__ import annotations

import heapq
import json
import os
import shutil
import struct
import tempfile
from pathlib import Path
from typing import (
    BinaryIO,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import TextSystemError
from repro.textsys.analysis import tokenize_with_positions
from repro.textsys.diskindex.codec import encode_block, write_uvarint
from repro.textsys.documents import Document

__all__ = [
    "MAGIC",
    "FORMAT",
    "DEFAULT_BLOCK_SIZE",
    "DiskIndexBuilder",
    "build_disk_index",
]

#: File magic, repeated in the trailer (catches truncation).
MAGIC = b"REPRIDX1"

#: The on-disk format name recorded in the meta footer.
FORMAT = "repro-diskindex-v1"

#: Postings per compressed block (also the skip-entry granularity).
DEFAULT_BLOCK_SIZE = 128

#: Rough resident bytes per buffered posting token (list/tuple/int
#: overhead included) — converts the memory budget into a spill threshold.
_BYTES_PER_POSTING = 150

#: Trailer: ``<Q meta_offset><Q meta_length>`` + magic.
_TRAILER = struct.Struct("<QQ8s")
TRAILER_SIZE = _TRAILER.size

# One spilled posting: (field_id, term, ordinal, positions)
_Record = Tuple[int, str, int, Tuple[int, ...]]


class _BufferedRecordReader:
    """Sequential varint/bytes reader over a file, bounded buffer."""

    def __init__(self, handle: BinaryIO, chunk_size: int = 1 << 20) -> None:
        self._handle = handle
        self._chunk_size = chunk_size
        self._buffer = b""
        self._pos = 0

    def _refill(self, need: int) -> bool:
        remaining = self._buffer[self._pos :]
        while len(remaining) < need:
            chunk = self._handle.read(self._chunk_size)
            if not chunk:
                break
            remaining += chunk
        self._buffer = remaining
        self._pos = 0
        return len(remaining) >= need

    def read_uvarint(self) -> Optional[int]:
        """Next varint, or ``None`` at end of file."""
        value = 0
        shift = 0
        while True:
            if self._pos >= len(self._buffer) and not self._refill(1):
                if shift:
                    raise TextSystemError("truncated segment varint")
                return None
            byte = self._buffer[self._pos]
            self._pos += 1
            value |= (byte & 0x7F) << shift
            if byte < 0x80:
                return value
            shift += 7

    def read_bytes(self, count: int) -> bytes:
        if len(self._buffer) - self._pos < count and not self._refill(count):
            raise TextSystemError("truncated segment record")
        out = self._buffer[self._pos : self._pos + count]
        self._pos += count
        return out


def _iter_segment(path: Path, field_names: Sequence[str]) -> Iterator[_Record]:
    """Stream one spilled segment back as sorted posting records."""
    with path.open("rb") as handle:
        reader = _BufferedRecordReader(handle)
        while True:
            field_id = reader.read_uvarint()
            if field_id is None:
                return
            term_len = reader.read_uvarint()
            term = reader.read_bytes(term_len).decode("utf-8")
            ordinal = reader.read_uvarint()
            n_positions = reader.read_uvarint()
            positions: List[int] = []
            current = 0
            for index in range(n_positions):
                gap = reader.read_uvarint()
                current = gap if index == 0 else current + gap
                positions.append(current)
            yield (field_id, term, ordinal, tuple(positions))


class DiskIndexBuilder:
    """Build one immutable disk index from a stream of documents.

    Usage::

        builder = DiskIndexBuilder(["title", "abstract"], "corpus.ridx")
        for document in documents:          # any iterable / generator
            builder.add_document(document)
        path = builder.finish(version=0)

    ``memory_budget_mb`` bounds the posting buffer; beyond it the buffer
    is spilled as a sorted segment run under ``tmp_dir`` (a private
    temporary directory by default, removed by :meth:`finish`).
    """

    def __init__(
        self,
        field_names: Sequence[str],
        path: Union[str, Path],
        *,
        block_size: int = DEFAULT_BLOCK_SIZE,
        memory_budget_mb: int = 256,
        spill_postings: Optional[int] = None,
        tmp_dir: Optional[Union[str, Path]] = None,
    ) -> None:
        if block_size < 1:
            raise TextSystemError("block_size must be positive")
        if memory_budget_mb < 1:
            raise TextSystemError("memory_budget_mb must be positive")
        if spill_postings is not None and spill_postings < 1:
            raise TextSystemError("spill_postings must be positive")
        self.field_names: Tuple[str, ...] = tuple(field_names)
        if not self.field_names:
            raise TextSystemError("a disk index needs at least one field")
        if len(set(self.field_names)) != len(self.field_names):
            raise TextSystemError("duplicate field names")
        self.path = Path(path)
        self.block_size = block_size
        self.memory_budget_mb = memory_budget_mb
        #: Buffered postings that trigger a spill; derived from the
        #: memory budget unless pinned explicitly (tests pin it small to
        #: exercise the multi-segment merge on tiny corpora).
        self._spill_threshold = (
            spill_postings
            if spill_postings is not None
            else max(1024, (memory_budget_mb * (1 << 20)) // _BYTES_PER_POSTING)
        )
        self._field_ids = {name: i for i, name in enumerate(self.field_names)}
        self._tmp_root = Path(tempfile.mkdtemp(prefix="repro-diskindex-"))
        if tmp_dir is not None:
            shutil.rmtree(self._tmp_root, ignore_errors=True)
            self._tmp_root = Path(tmp_dir)
            self._tmp_root.mkdir(parents=True, exist_ok=True)
        self._segments: List[Path] = []
        # (field_id, term) -> list of (ordinal, [positions...])
        self._buffer: Dict[Tuple[int, str], List[Tuple[int, List[int]]]] = {}
        self._buffered_postings = 0
        self._doc_count = 0
        self._total_postings = 0
        self._spilled_postings = 0
        self._docids_path = self._tmp_root / "docids.bin"
        self._docids_handle: Optional[BinaryIO] = self._docids_path.open("wb")
        self._finished = False

    # ------------------------------------------------------------------
    # streaming input
    # ------------------------------------------------------------------
    def add_document(self, document: Document) -> int:
        """Index one document; returns its assigned ordinal."""
        if self._finished:
            raise TextSystemError("builder already finished")
        ordinal = self._doc_count
        self._doc_count += 1
        docid_bytes = document.docid.encode("utf-8")
        record = bytearray()
        write_uvarint(record, len(docid_bytes))
        record += docid_bytes
        self._docids_handle.write(record)

        buffer = self._buffer
        for field in self.field_names:
            text = document.field(field)
            if not text:
                continue
            field_id = self._field_ids[field]
            # Per-document accumulation keeps one (ordinal, positions)
            # entry per term, positions in ascending order — exactly the
            # in-memory index's accumulator shape.
            local: Dict[str, List[int]] = {}
            for token, position in tokenize_with_positions(text):
                local.setdefault(token, []).append(position)
            for token, positions in local.items():
                buffer.setdefault((field_id, token), []).append(
                    (ordinal, positions)
                )
                self._buffered_postings += len(positions)
                self._total_postings += len(positions)
        if self._buffered_postings >= self._spill_threshold:
            self._spill()
        return ordinal

    def add_documents(self, documents: Iterable[Document]) -> int:
        """Index a whole stream; returns the number of documents added."""
        count = 0
        for document in documents:
            self.add_document(document)
            count += 1
        return count

    # ------------------------------------------------------------------
    # spilling
    # ------------------------------------------------------------------
    @property
    def segments_spilled(self) -> int:
        """Sorted segment runs written to disk so far (build telemetry)."""
        return len(self._segments)

    def _spill(self) -> None:
        if not self._buffer:
            return
        path = self._tmp_root / f"segment-{len(self._segments):05d}.run"
        with path.open("wb") as handle:
            out = bytearray()
            for (field_id, term), entries in sorted(self._buffer.items()):
                term_bytes = term.encode("utf-8")
                for ordinal, positions in entries:
                    write_uvarint(out, field_id)
                    write_uvarint(out, len(term_bytes))
                    out += term_bytes
                    write_uvarint(out, ordinal)
                    write_uvarint(out, len(positions))
                    last = None
                    for position in positions:
                        write_uvarint(
                            out, position if last is None else position - last
                        )
                        last = position
                    if len(out) >= (1 << 20):
                        handle.write(out)
                        out = bytearray()
            handle.write(out)
        self._segments.append(path)
        self._spilled_postings += self._buffered_postings
        self._buffer = {}
        self._buffered_postings = 0

    def _iter_buffer(self) -> Iterator[_Record]:
        for (field_id, term), entries in sorted(self._buffer.items()):
            for ordinal, positions in entries:
                yield (field_id, term, ordinal, tuple(positions))

    # ------------------------------------------------------------------
    # the final merge + write
    # ------------------------------------------------------------------
    def finish(self, version: int = 0) -> Path:
        """Merge all runs and write the index file; returns its path."""
        if self._finished:
            raise TextSystemError("builder already finished")
        self._finished = True
        self._docids_handle.close()
        self._docids_handle = None
        try:
            self._write_index(version)
        finally:
            shutil.rmtree(self._tmp_root, ignore_errors=True)
        return self.path

    def abort(self) -> None:
        """Drop all temporary state without writing an index."""
        self._finished = True
        if self._docids_handle is not None:
            self._docids_handle.close()
            self._docids_handle = None
        shutil.rmtree(self._tmp_root, ignore_errors=True)

    def _write_index(self, version: int) -> None:
        streams: List[Iterator[_Record]] = [
            _iter_segment(path, self.field_names) for path in self._segments
        ]
        streams.append(self._iter_buffer())
        merged = heapq.merge(*streams, key=lambda record: record[:3])

        tmp_path = self.path.with_name(self.path.name + ".tmp")
        tmp_path.parent.mkdir(parents=True, exist_ok=True)
        # field_id -> list of dict entries
        dictionaries: Dict[int, List[Tuple[str, int, int, int, int, int]]] = {
            field_id: [] for field_id in range(len(self.field_names))
        }
        with tmp_path.open("wb") as out:
            out.write(MAGIC)

            current_key: Optional[Tuple[int, str]] = None
            block_docs: List[int] = []
            block_positions: List[Tuple[int, ...]] = []
            skip_entries: List[Tuple[int, int, int]] = []
            data_offset = 0
            df = 0
            prev_last = -1

            def flush_block() -> None:
                nonlocal prev_last
                if not block_docs:
                    return
                encoded = encode_block(block_docs, block_positions, prev_last)
                out.write(encoded)
                skip_entries.append(
                    (block_docs[-1], len(block_docs), len(encoded))
                )
                prev_last = block_docs[-1]
                block_docs.clear()
                block_positions.clear()

            def finish_term() -> None:
                nonlocal prev_last, df, data_offset
                if current_key is None:
                    return
                flush_block()
                skip_offset = out.tell()
                skip_bytes = bytearray()
                write_uvarint(skip_bytes, len(skip_entries))
                previous_last = None
                for last_docid, n_docs, n_bytes in skip_entries:
                    write_uvarint(
                        skip_bytes,
                        last_docid
                        if previous_last is None
                        else last_docid - previous_last,
                    )
                    write_uvarint(skip_bytes, n_docs)
                    write_uvarint(skip_bytes, n_bytes)
                    previous_last = last_docid
                out.write(skip_bytes)
                field_id, term = current_key
                dictionaries[field_id].append(
                    (
                        term,
                        df,
                        len(skip_entries),
                        data_offset,
                        skip_offset,
                        len(skip_bytes),
                    )
                )
                skip_entries.clear()
                df = 0
                prev_last = -1

            for field_id, term, ordinal, positions in merged:
                key = (field_id, term)
                if key != current_key:
                    finish_term()
                    current_key = key
                    data_offset = out.tell()
                block_docs.append(ordinal)
                block_positions.append(positions)
                df += 1
                if len(block_docs) >= self.block_size:
                    flush_block()
            finish_term()

            # ---- docid table -----------------------------------------
            docids_offset = out.tell()
            header = bytearray()
            write_uvarint(header, self._doc_count)
            out.write(header)
            with self._docids_path.open("rb") as docids:
                shutil.copyfileobj(docids, out, 1 << 20)
            docids_length = out.tell() - docids_offset

            # ---- per-field dictionaries ------------------------------
            dict_spans: Dict[str, Tuple[int, int]] = {}
            for field_id, field in enumerate(self.field_names):
                start = out.tell()
                entries = dictionaries[field_id]
                buf = bytearray()
                write_uvarint(buf, len(entries))
                for term, term_df, n_blocks, d_off, s_off, s_len in entries:
                    term_bytes = term.encode("utf-8")
                    write_uvarint(buf, len(term_bytes))
                    buf += term_bytes
                    write_uvarint(buf, term_df)
                    write_uvarint(buf, n_blocks)
                    write_uvarint(buf, d_off)
                    write_uvarint(buf, s_off)
                    write_uvarint(buf, s_len)
                out.write(buf)
                dict_spans[field] = (start, out.tell() - start)

            # ---- meta + trailer --------------------------------------
            meta_offset = out.tell()
            meta = {
                "format": FORMAT,
                "version": version,
                "doc_count": self._doc_count,
                "block_size": self.block_size,
                "fields": list(self.field_names),
                "total_postings": self._total_postings,
                "docids": [docids_offset, docids_length],
                "dict": {field: list(span) for field, span in dict_spans.items()},
                "build": {
                    "segments": len(self._segments),
                    "spilled_postings": self._spilled_postings,
                    "memory_budget_mb": self.memory_budget_mb,
                },
            }
            meta_bytes = json.dumps(meta, sort_keys=True).encode("utf-8")
            out.write(meta_bytes)
            out.write(_TRAILER.pack(meta_offset, len(meta_bytes), MAGIC))
        os.replace(tmp_path, self.path)


def build_disk_index(
    documents: Iterable[Document],
    field_names: Sequence[str],
    path: Union[str, Path],
    *,
    version: int = 0,
    block_size: int = DEFAULT_BLOCK_SIZE,
    memory_budget_mb: int = 256,
    spill_postings: Optional[int] = None,
    tmp_dir: Optional[Union[str, Path]] = None,
) -> Path:
    """Build a disk index from any document stream in one call."""
    builder = DiskIndexBuilder(
        field_names,
        path,
        block_size=block_size,
        memory_budget_mb=memory_budget_mb,
        spill_postings=spill_postings,
        tmp_dir=tmp_dir,
    )
    try:
        builder.add_documents(documents)
    except BaseException:
        builder.abort()
        raise
    return builder.finish(version=version)
