"""Disk-backed compressed inverted index (million-document corpora).

The in-memory :class:`~repro.textsys.inverted_index.InvertedIndex`
materializes every posting list in RAM at construction time, which caps
corpora at whatever fits in memory.  This package scales the text system
past that: a streaming :class:`DiskIndexBuilder` spills sorted
term/posting segment runs to disk and k-way merges them into one
immutable index file of delta + group-varint compressed posting blocks
(with per-block skip entries), and :class:`DiskInvertedIndex` serves that
file behind a bounded :class:`BlockCache` — a drop-in substitute for the
in-memory index, charge-identical under DESIGN invariant 13.

Layout of the package:

- :mod:`~repro.textsys.diskindex.codec` — LEB128 varints, 64-bit-safe
  group varints, and the delta-compressed posting-block format;
- :mod:`~repro.textsys.diskindex.cache` — the bounded LRU block cache
  (byte-budgeted, with hit/miss/eviction statistics);
- :mod:`~repro.textsys.diskindex.builder` — streaming corpus indexing
  with bounded-memory spill segments and k-way merge;
- :mod:`~repro.textsys.diskindex.reader` — the block-paged reader and
  its lazy :class:`DiskPostingList` (skip-driven galloping).
"""

from repro.textsys.diskindex.builder import (
    DEFAULT_BLOCK_SIZE,
    DiskIndexBuilder,
    build_disk_index,
)
from repro.textsys.diskindex.cache import BlockCache, CacheStats
from repro.textsys.diskindex.reader import (
    DiskInvertedIndex,
    DiskPostingList,
    read_index_meta,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DiskIndexBuilder",
    "build_disk_index",
    "BlockCache",
    "CacheStats",
    "DiskInvertedIndex",
    "DiskPostingList",
    "read_index_meta",
]
