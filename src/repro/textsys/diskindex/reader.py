"""Block-paged reader over the immutable disk index file.

:class:`DiskInvertedIndex` is a drop-in substitute for the in-memory
:class:`~repro.textsys.inverted_index.InvertedIndex`: the engine, the
rewriter, the Boolean server, sharding, and the gateway all run
unchanged on top of it.  Only the term dictionaries (the [DH91]
"main memory directory") and the docid table live in RAM; posting
blocks are fetched from the file on demand — ``mmap`` or ``seek+read``
— decoded, and kept in a byte-budgeted :class:`~repro.textsys.diskindex.
cache.BlockCache`.

**Charge identity (DESIGN invariant 13).**  ``lookup``/``lookup_prefix``
charge ``pages_for(len(list))`` page reads at call time, from the
dictionary's document frequency alone — the same formula, at the same
call sites, as the in-memory index — so ``pages_read`` (and everything
priced from it) is bit-identical between the two engines regardless of
what physically happens afterwards.  Physical I/O (blocks fetched,
bytes read, cache hits/misses) is metered separately in
:meth:`DiskInvertedIndex.io_stats` and depends on cache state, block
skipping, and which merges actually materialize — it is observability,
never a cost-model input.

**Skip-driven galloping.**  :meth:`lookup` returns a
:class:`DiskPostingList` that knows its length without decoding
anything.  When the engine's skewed-intersection path runs, the list's
:meth:`DiskPostingList.gallop_into` hook binary-searches the skip table
(max docid per block) and decodes *only* the candidate blocks, so an
``AND`` of a rare term with a huge list touches a handful of blocks
instead of the whole compressed list.
"""

from __future__ import annotations

import bisect
import json
import mmap
import struct
from array import array
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.errors import TextSystemError, UnknownFieldError
from repro.textsys.diskindex.builder import FORMAT, MAGIC, TRAILER_SIZE
from repro.textsys.diskindex.cache import (
    DEFAULT_CACHE_BUDGET,
    BlockCache,
)
from repro.textsys.diskindex.codec import (
    decode_block_docs,
    decode_block_positions,
    read_uvarint,
)
from repro.textsys.postings import PostingList

__all__ = ["DiskInvertedIndex", "DiskPostingList", "IOStats", "read_index_meta"]

_TRAILER = struct.Struct("<QQ8s")

#: Modes for fetching block bytes from the index file.
IO_MODES = ("mmap", "read")


class IOStats:
    """Physical I/O counters for one reader (observability only)."""

    __slots__ = ("block_fetches", "bytes_read", "blocks_decoded")

    def __init__(self) -> None:
        self.block_fetches = 0
        self.bytes_read = 0
        self.blocks_decoded = 0

    def as_dict(self) -> Dict[str, int]:
        return {
            "block_fetches": self.block_fetches,
            "bytes_read": self.bytes_read,
            "blocks_decoded": self.blocks_decoded,
        }


class _TermEntry:
    """One dictionary entry: everything the directory knows charge-free."""

    __slots__ = (
        "term",
        "df",
        "n_blocks",
        "data_offset",
        "skip_offset",
        "skip_length",
        "_skip",
    )

    def __init__(
        self,
        term: str,
        df: int,
        n_blocks: int,
        data_offset: int,
        skip_offset: int,
        skip_length: int,
    ) -> None:
        self.term = term
        self.df = df
        self.n_blocks = n_blocks
        self.data_offset = data_offset
        self.skip_offset = skip_offset
        self.skip_length = skip_length
        # Lazily decoded: (last_docids, block_offsets, block_lengths,
        # doc_counts, doc_starts).  Metadata-sized (one entry per block).
        self._skip: Optional[Tuple[List[int], List[int], List[int], List[int], List[int]]] = None


def read_index_meta(path: Union[str, Path]) -> dict:
    """Read and validate just the JSON meta footer of an index file."""
    path = Path(path)
    size = path.stat().st_size
    if size < len(MAGIC) + TRAILER_SIZE:
        raise TextSystemError(f"{path}: not a disk index (too small)")
    with path.open("rb") as handle:
        if handle.read(len(MAGIC)) != MAGIC:
            raise TextSystemError(f"{path}: bad index magic")
        handle.seek(size - TRAILER_SIZE)
        meta_offset, meta_length, trailer_magic = _TRAILER.unpack(
            handle.read(TRAILER_SIZE)
        )
        if trailer_magic != MAGIC:
            raise TextSystemError(f"{path}: truncated index (bad trailer)")
        handle.seek(meta_offset)
        try:
            meta = json.loads(handle.read(meta_length))
        except json.JSONDecodeError as error:
            raise TextSystemError(f"{path}: bad meta footer: {error}") from error
    if meta.get("format") != FORMAT:
        raise TextSystemError(
            f"{path}: unknown index format {meta.get('format')!r}"
        )
    meta["file_size"] = size
    return meta


class DiskPostingList(PostingList):
    """A posting list whose postings still live in the index file.

    Reports its length from the dictionary alone; decodes docids (and,
    separately, positions) only when a kernel actually touches them.
    The decoded views are cached on the instance, and every block fetch
    goes through the reader's shared block cache.
    """

    __slots__ = ("_reader", "_field", "_entry", "_lazy_docs", "_lazy_positions")

    def __init__(
        self, reader: "DiskInvertedIndex", field: str, entry: _TermEntry
    ) -> None:
        self._reader = reader
        self._field = field
        self._entry = entry
        self._lazy_docs: Optional[array] = None
        self._lazy_positions: Optional[Tuple[Tuple[int, ...], ...]] = None

    # The base class stores docids/positions in slots; shadow them with
    # materialize-on-demand properties so every inherited kernel and
    # sequence method works unchanged.
    @property  # type: ignore[override]
    def _docs(self) -> array:
        if self._lazy_docs is None:
            self._lazy_docs = self._reader._materialize_docs(
                self._field, self._entry
            )
        return self._lazy_docs

    @property  # type: ignore[override]
    def _positions(self) -> Optional[Tuple[Tuple[int, ...], ...]]:
        if self._lazy_positions is None:
            self._lazy_positions = self._reader._materialize_positions(
                self._field, self._entry
            )
        return self._lazy_positions

    def __len__(self) -> int:
        return self._entry.df

    def __repr__(self) -> str:
        return (
            f"DiskPostingList({self._field}:{self._entry.term!r}, "
            f"df={self._entry.df})"
        )

    def gallop_into(self, probes: array) -> array:
        """Intersect a small sorted ordinal array against this list.

        Skip-driven: for each probe the skip table names the only block
        that could contain it; only those blocks are fetched and
        decoded.  Output is identical to galloping over the fully
        decoded list.
        """
        return self._reader._gallop_into(self._field, self._entry, probes)


class DiskInvertedIndex:
    """The disk-backed index: same interface, same charges, bounded RAM.

    Parameters
    ----------
    path:
        An index file written by :class:`~repro.textsys.diskindex.
        builder.DiskIndexBuilder`.
    page_capacity:
        Postings per charged disk page — the cost-model constant shared
        with the in-memory index (default 256).
    cache_budget:
        Decoded-block cache budget in bytes (``0`` disables caching,
        ``None`` unbounded).
    io_mode:
        ``"mmap"`` (default) maps the file; ``"read"`` uses seek+read,
        keeping resident set strictly bounded by the cache budget.
    """

    DEFAULT_PAGE_CAPACITY = 256

    def __init__(
        self,
        path: Union[str, Path],
        page_capacity: int = DEFAULT_PAGE_CAPACITY,
        *,
        cache_budget: Optional[int] = DEFAULT_CACHE_BUDGET,
        io_mode: str = "mmap",
    ) -> None:
        if page_capacity < 1:
            raise ValueError("page_capacity must be positive")
        if io_mode not in IO_MODES:
            raise TextSystemError(
                f"unknown io_mode {io_mode!r}; known: {list(IO_MODES)}"
            )
        self.path = Path(path)
        self.page_capacity = page_capacity
        self.io_mode = io_mode
        #: Cumulative *charged* page reads (the cost-model counter).
        self.pages_read = 0
        self.cache = BlockCache(cache_budget)
        self.io = IOStats()

        self.meta = read_index_meta(self.path)
        #: The store version this index was built against.
        self.version = self.meta["version"]
        self.block_size = self.meta["block_size"]
        self.field_names: Tuple[str, ...] = tuple(self.meta["fields"])

        self._handle = self.path.open("rb")
        self._mmap: Optional[mmap.mmap] = None
        if io_mode == "mmap":
            self._mmap = mmap.mmap(
                self._handle.fileno(), 0, access=mmap.ACCESS_READ
            )

        self._dictionaries: Dict[str, Dict[str, _TermEntry]] = {}
        self._vocabularies: Dict[str, List[str]] = {}
        self._load_dictionaries()
        self._docid_list: List[str] = self._load_docids()
        self._docid_ordinals: Optional[Dict[str, int]] = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._mmap is not None:
            self._mmap.close()
            self._mmap = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self.cache.clear()

    def __enter__(self) -> "DiskInvertedIndex":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def rebuild(self) -> None:
        """Disk indexes are immutable; rebuild via the builder instead."""
        raise TextSystemError(
            "DiskInvertedIndex is immutable: re-run DiskIndexBuilder to "
            "index a mutated collection"
        )

    # ------------------------------------------------------------------
    # loading the in-memory directory
    # ------------------------------------------------------------------
    def _read_span(self, offset: int, length: int) -> bytes:
        if self._mmap is not None:
            return self._mmap[offset : offset + length]
        self._handle.seek(offset)
        return self._handle.read(length)

    def _load_dictionaries(self) -> None:
        for field in self.field_names:
            offset, length = self.meta["dict"][field]
            buf = self._read_span(offset, length)
            n_terms, pos = read_uvarint(buf, 0)
            entries: Dict[str, _TermEntry] = {}
            vocabulary: List[str] = []
            for _ in range(n_terms):
                term_len, pos = read_uvarint(buf, pos)
                term = bytes(buf[pos : pos + term_len]).decode("utf-8")
                pos += term_len
                df, pos = read_uvarint(buf, pos)
                n_blocks, pos = read_uvarint(buf, pos)
                data_offset, pos = read_uvarint(buf, pos)
                skip_offset, pos = read_uvarint(buf, pos)
                skip_length, pos = read_uvarint(buf, pos)
                entries[term] = _TermEntry(
                    term, df, n_blocks, data_offset, skip_offset, skip_length
                )
                vocabulary.append(term)
            self._dictionaries[field] = entries
            self._vocabularies[field] = vocabulary  # written in sorted order

    def _load_docids(self) -> List[str]:
        offset, length = self.meta["docids"]
        buf = self._read_span(offset, length)
        count, pos = read_uvarint(buf, 0)
        docids: List[str] = []
        for _ in range(count):
            docid_len, pos = read_uvarint(buf, pos)
            docids.append(bytes(buf[pos : pos + docid_len]).decode("utf-8"))
            pos += docid_len
        return docids

    # ------------------------------------------------------------------
    # skip tables and block fetch
    # ------------------------------------------------------------------
    def _skip_table(self, entry: _TermEntry):
        if entry._skip is None:
            buf = self._read_span(entry.skip_offset, entry.skip_length)
            n_blocks, pos = read_uvarint(buf, 0)
            last_docids: List[int] = []
            block_offsets: List[int] = []
            block_lengths: List[int] = []
            doc_counts: List[int] = []
            doc_starts: List[int] = []
            offset = entry.data_offset
            previous_last = None
            docs_seen = 0
            for _ in range(n_blocks):
                last_delta, pos = read_uvarint(buf, pos)
                n_docs, pos = read_uvarint(buf, pos)
                n_bytes, pos = read_uvarint(buf, pos)
                last = (
                    last_delta
                    if previous_last is None
                    else previous_last + last_delta
                )
                last_docids.append(last)
                block_offsets.append(offset)
                block_lengths.append(n_bytes)
                doc_counts.append(n_docs)
                doc_starts.append(docs_seen)
                previous_last = last
                offset += n_bytes
                docs_seen += n_docs
            entry._skip = (
                last_docids,
                block_offsets,
                block_lengths,
                doc_counts,
                doc_starts,
            )
        return entry._skip

    def _block_bytes(self, entry: _TermEntry, block_index: int) -> bytes:
        _, offsets, lengths, _, _ = self._skip_table(entry)
        raw = self._read_span(offsets[block_index], lengths[block_index])
        self.io.block_fetches += 1
        self.io.bytes_read += len(raw)
        return raw

    def _block_docs(
        self, field: str, entry: _TermEntry, block_index: int
    ) -> array:
        key = (field, entry.term, block_index, "docs")
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        last_docids = self._skip_table(entry)[0]
        prev_last = -1 if block_index == 0 else last_docids[block_index - 1]
        docs = decode_block_docs(self._block_bytes(entry, block_index), prev_last)
        self.io.blocks_decoded += 1
        self.cache.put(key, docs, docs.itemsize * len(docs) + 64)
        return docs

    def _block_positions(
        self, field: str, entry: _TermEntry, block_index: int
    ) -> Tuple[Tuple[int, ...], ...]:
        key = (field, entry.term, block_index, "positions")
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        positions = decode_block_positions(self._block_bytes(entry, block_index))
        self.io.blocks_decoded += 1
        nbytes = 64 + sum(40 + 8 * len(p) for p in positions)
        self.cache.put(key, positions, nbytes)
        return positions

    def _materialize_docs(self, field: str, entry: _TermEntry) -> array:
        docs = array("q")
        for block_index in range(entry.n_blocks):
            docs.extend(self._block_docs(field, entry, block_index))
        return docs

    def _materialize_positions(
        self, field: str, entry: _TermEntry
    ) -> Tuple[Tuple[int, ...], ...]:
        out: List[Tuple[int, ...]] = []
        for block_index in range(entry.n_blocks):
            out.extend(self._block_positions(field, entry, block_index))
        return tuple(out)

    def _gallop_into(
        self, field: str, entry: _TermEntry, probes: array
    ) -> array:
        last_docids = self._skip_table(entry)[0]
        n_blocks = entry.n_blocks
        out = array("q")
        append = out.append
        block_lo = 0
        block_docs: Optional[array] = None
        block_index = -1
        inner_lo = 0
        for doc in probes:
            # The first block whose last docid reaches the probe is the
            # only one that can contain it (blocks partition the range).
            candidate = bisect.bisect_left(last_docids, doc, block_lo)
            if candidate >= n_blocks:
                break
            block_lo = candidate
            if candidate != block_index:
                block_docs = self._block_docs(field, entry, candidate)
                block_index = candidate
                inner_lo = 0
            inner_lo = bisect.bisect_left(block_docs, doc, inner_lo)
            if inner_lo < len(block_docs) and block_docs[inner_lo] == doc:
                append(doc)
                inner_lo += 1
        return out

    # ------------------------------------------------------------------
    # docid mapping
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        """``D``: total number of documents in the collection."""
        return len(self._docid_list)

    def docid_of(self, ordinal: int) -> str:
        return self._docid_list[ordinal]

    def ordinal_of(self, docid: str) -> int:
        if self._docid_ordinals is None:
            self._docid_ordinals = {
                docid: ordinal
                for ordinal, docid in enumerate(self._docid_list)
            }
        return self._docid_ordinals[docid]

    def all_docs(self) -> PostingList:
        """A posting list naming every document (for NOT complements)."""
        return PostingList._from_sorted(array("q", range(self.document_count)))

    # ------------------------------------------------------------------
    # charged lookups (bit-identical to the in-memory index)
    # ------------------------------------------------------------------
    def _check_field(self, field: str) -> None:
        if field not in self._dictionaries:
            raise UnknownFieldError(f"unknown text field {field!r}")

    def pages_for(self, postings: int) -> int:
        """Disk pages occupied by a list of ``postings`` entries."""
        if postings <= 0:
            return 0
        return -(-postings // self.page_capacity)  # ceil division

    def lookup(self, field: str, term: str) -> PostingList:
        """The inverted list for one term; charges its page reads."""
        self._check_field(field)
        entry = self._dictionaries[field].get(term)
        if entry is None:
            return PostingList()
        self.pages_read += self.pages_for(entry.df)
        return DiskPostingList(self, field, entry)

    def lookup_prefix(
        self, field: str, prefix: str
    ) -> List[Tuple[str, PostingList]]:
        """All ``(term, list)`` pairs for a prefix; each list charged."""
        self._check_field(field)
        vocabulary = self._vocabularies[field]
        start = bisect.bisect_left(vocabulary, prefix)
        out: List[Tuple[str, PostingList]] = []
        for index in range(start, len(vocabulary)):
            term = vocabulary[index]
            if not term.startswith(prefix):
                break
            entry = self._dictionaries[field][term]
            self.pages_read += self.pages_for(entry.df)
            out.append((term, DiskPostingList(self, field, entry)))
        return out

    def document_frequency(self, field: str, term: str) -> int:
        """Number of documents whose ``field`` contains ``term``."""
        return len(self.lookup(field, term))

    # ------------------------------------------------------------------
    # charge-free metadata (the in-memory directory)
    # ------------------------------------------------------------------
    def list_length(self, field: str, term: str) -> int:
        self._check_field(field)
        entry = self._dictionaries[field].get(term)
        return 0 if entry is None else entry.df

    def prefix_terms(self, field: str, prefix: str) -> List[str]:
        self._check_field(field)
        vocabulary = self._vocabularies[field]
        start = bisect.bisect_left(vocabulary, prefix)
        out: List[str] = []
        for index in range(start, len(vocabulary)):
            term = vocabulary[index]
            if not term.startswith(prefix):
                break
            out.append(term)
        return out

    def vocabulary(self, field: str) -> List[str]:
        self._check_field(field)
        return list(self._vocabularies[field])

    def vocabulary_size(self, field: str) -> int:
        self._check_field(field)
        return len(self._vocabularies[field])

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def io_stats(self) -> Dict[str, object]:
        """Physical I/O + cache counters (never a cost-model input)."""
        stats = dict(self.io.as_dict())
        stats["cache"] = self.cache.stats.as_dict()
        return stats

    def stats(self) -> Dict[str, object]:
        """Index-file statistics for reporting (``repro index stats``)."""
        vocab = {
            field: len(self._vocabularies[field]) for field in self.field_names
        }
        total_postings = self.meta["total_postings"]
        return {
            "path": str(self.path),
            "format": self.meta["format"],
            "doc_count": self.document_count,
            "fields": list(self.field_names),
            "vocabulary": vocab,
            "total_postings": total_postings,
            "block_size": self.block_size,
            "file_size": self.meta["file_size"],
            "bytes_per_posting": (
                round(self.meta["file_size"] / total_postings, 3)
                if total_postings
                else 0.0
            ),
            "build": self.meta.get("build", {}),
        }

    def __repr__(self) -> str:
        return (
            f"DiskInvertedIndex({self.path.name!r}, "
            f"{self.document_count} documents, io={self.io_mode})"
        )
