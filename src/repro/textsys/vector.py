"""A vector-space retrieval engine — and why the paper's techniques
break on it (Section 8).

"Another natural question is whether our techniques can be used for text
systems that are based on other retrieval models (e.g., vector-space,
probabilistic) … In particular, adding predicates in a query in these
text systems may result in more answers.  In contrast, our techniques
rely on the traditional semantics of predicates.  Thus … our techniques
will not be directly applicable in such systems."

:class:`VectorSpaceEngine` implements classic TF–IDF / cosine ranking
over the same document collection the Boolean server indexes.  A query
is a bag of terms; the result is the set of documents whose similarity
exceeds a threshold (or the top-*k*).  The test suite uses it to
*demonstrate* the paper's point: query results are **not monotone** in
the predicate set — adding a term can add documents — so a failed
"probe" on a term subset proves nothing about the full query, and
probe-based pruning is unsound here.

Since this engine became a served backend (see
:class:`~repro.textsys.vectorserver.VectorTextServer`) it also carries:

- :class:`VectorQuery` — the wire-able query object (field, bag of
  terms, ``top_k``, ``threshold``) with the same ``to_expression()`` /
  ``term_count()`` surface the Boolean search nodes expose, so the
  metered gateway, its cache, and the call tracer work unchanged;
- **counted searches** — :meth:`VectorSpaceEngine.counted_search`
  reports the postings read (the sum of the query tokens' local
  inverted-list lengths), which is what the per-backend cost model
  multiplies by ``c_p``;
- **injected collection statistics** (:class:`VectorStatistics`) — a
  shard server scores with the *global* document count and document
  frequencies, so per-shard scores are bit-identical to the unsharded
  engine's and a scatter-gathered top-k merge reproduces the single
  server exactly.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Mapping, NamedTuple, Optional, Sequence, Tuple

from repro.errors import TextSystemError, UnknownFieldError
from repro.textsys.analysis import tokenize
from repro.textsys.documents import DocumentStore

__all__ = [
    "ScoredDocument",
    "VectorQuery",
    "VectorStatistics",
    "VectorSearchOutcome",
    "VectorSpaceEngine",
]


@dataclass(frozen=True)
class ScoredDocument:
    """One ranked answer: a docid and its cosine similarity."""

    docid: str
    score: float


@dataclass(frozen=True)
class VectorQuery:
    """A similarity search: rank ``field`` against a bag of ``terms``.

    The vector analogue of a Boolean search expression.  ``top_k=None``
    means "no truncation"; ``threshold`` is a strict lower bound on the
    returned cosine similarity.  A *negative* threshold asks for every
    document in the collection (zero-similarity documents included) —
    the corpus-dump form the V-SCAN join strategy relies on.

    The object deliberately quacks like a
    :class:`~repro.textsys.query.SearchNode` where the gateway cares:
    ``to_expression()`` is the canonical cache/trace key and
    ``term_count()`` is what the server checks against its term limit.
    """

    field: str
    terms: Tuple[str, ...]
    top_k: Optional[int] = 10
    threshold: float = 0.0

    def __post_init__(self) -> None:
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))
        if self.top_k is not None and self.top_k < 1:
            raise TextSystemError("top_k must be positive when given")

    def term_count(self) -> int:
        """Basic terms this query occupies (the term-limit currency)."""
        return len(self.terms)

    def to_expression(self) -> str:
        """Canonical rendering, stable across processes (cache key)."""
        terms = ", ".join(f"'{term}'" for term in self.terms)
        k = "all" if self.top_k is None else str(self.top_k)
        return f"VSIM({self.field}; [{terms}]; k={k}; t>{self.threshold!r})"

    def __repr__(self) -> str:
        return self.to_expression()


@dataclass(frozen=True)
class VectorStatistics:
    """Collection-level scoring statistics (``N`` and per-term df).

    A sharded deployment injects the *source* collection's statistics
    into every shard engine: idf and document norms then come out
    identical to the unsharded engine's, so per-document scores — and
    therefore the scatter-gathered top-k — are bit-identical.
    """

    document_count: int
    document_frequency: Mapping[str, int]

    @classmethod
    def for_store(cls, store: DocumentStore, field: str) -> "VectorStatistics":
        """Measure the statistics of one field over a whole store."""
        if not store.has_field(field):
            raise UnknownFieldError(f"unknown text field {field!r}")
        frequency: Dict[str, int] = {}
        for document in store:
            for term in set(tokenize(document.field(field))):
                frequency[term] = frequency.get(term, 0) + 1
        return cls(document_count=len(store), document_frequency=frequency)


class VectorSearchOutcome(NamedTuple):
    """A ranked answer plus the postings the engine read to produce it."""

    scored: List[ScoredDocument]
    postings_processed: int


class VectorSpaceEngine:
    """TF–IDF / cosine retrieval over one field of a document store.

    ``statistics`` (optional) overrides the collection statistics used
    for idf and norms — see :class:`VectorStatistics`.  Postings counts
    always reflect the *local* inverted lists actually read, so they sum
    exactly across shards.
    """

    def __init__(
        self,
        store: DocumentStore,
        field: str,
        statistics: Optional[VectorStatistics] = None,
    ) -> None:
        if not store.has_field(field):
            raise UnknownFieldError(f"unknown text field {field!r}")
        self.store = store
        self.field = field
        self.statistics = statistics
        self._document_count = (
            statistics.document_count if statistics is not None else len(store)
        )
        # term -> {docid: term frequency} (local postings).
        self._term_documents: Dict[str, Dict[str, int]] = {}
        self._norms: Dict[str, float] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        frequencies: Dict[str, Counter] = {}
        for document in self.store:
            counts = Counter(tokenize(document.field(self.field)))
            frequencies[document.docid] = counts
            for term, frequency in counts.items():
                self._term_documents.setdefault(term, {})[document.docid] = frequency
        for docid, counts in frequencies.items():
            norm_squared = 0.0
            for term, frequency in counts.items():
                weight = self._weight(term, frequency)
                norm_squared += weight * weight
            self._norms[docid] = math.sqrt(norm_squared)

    @property
    def document_count(self) -> int:
        """``N`` as used for idf (global when statistics are injected)."""
        return self._document_count

    def document_frequency(self, term: str) -> int:
        """How many *local* documents contain ``term`` (postings length)."""
        return len(self._term_documents.get(term, ()))

    def _scoring_frequency(self, term: str) -> int:
        """The df used for idf: injected (global) when available."""
        if self.statistics is not None:
            return self.statistics.document_frequency.get(term, 0)
        return len(self._term_documents.get(term, ()))

    def _idf(self, term: str) -> float:
        document_frequency = self._scoring_frequency(term)
        if document_frequency == 0:
            return 0.0
        return math.log((1 + self._document_count) / (1 + document_frequency)) + 1.0

    def _weight(self, term: str, frequency: int) -> float:
        if frequency <= 0:
            return 0.0
        return (1.0 + math.log(frequency)) * self._idf(term)

    # ------------------------------------------------------------------
    def _query_vector(
        self, terms: Sequence[str]
    ) -> Tuple[Dict[str, float], float]:
        """Token → query weight (first-occurrence order) and the norm.

        Duplicate query terms accumulate term frequency (the classic
        ``1 + log tf`` damping) rather than being dropped or
        double-counted.
        """
        query_counts = Counter(
            token for term in terms for token in tokenize(term)
        )
        weights: Dict[str, float] = {}
        norm_squared = 0.0
        for token, query_frequency in query_counts.items():
            weight = (1.0 + math.log(query_frequency)) * self._idf(token)
            weights[token] = weight
            norm_squared += weight * weight
        return weights, math.sqrt(norm_squared)

    def _score_against(
        self, docid: str, weights: Dict[str, float], query_norm: float
    ) -> float:
        if query_norm == 0.0:
            return 0.0
        dot = 0.0
        for token, query_weight in weights.items():
            frequency = self._term_documents.get(token, {}).get(docid, 0)
            dot += query_weight * self._weight(token, frequency)
        document_norm = self._norms.get(docid, 0.0)
        if dot == 0.0 or document_norm == 0.0:
            return 0.0
        return dot / (document_norm * query_norm)

    def score(self, docid: str, terms: Sequence[str]) -> float:
        """Cosine similarity between a document and a bag of query terms."""
        weights, query_norm = self._query_vector(terms)
        return self._score_against(docid, weights, query_norm)

    def counted_search(
        self,
        terms: Sequence[str],
        top_k: Optional[int] = 10,
        threshold: float = 0.0,
    ) -> VectorSearchOutcome:
        """:meth:`search` plus the postings read to answer it.

        ``postings_processed`` is the sum of the *local* inverted-list
        lengths of the distinct query tokens — the quantity the cost
        model multiplies by ``c_p``, and (because postings partition
        across shards) exactly additive under sharding.
        """
        if top_k is not None and top_k < 1:
            raise TextSystemError("top_k must be positive when given")
        weights, query_norm = self._query_vector(terms)
        postings = sum(
            len(self._term_documents.get(token, ())) for token in weights
        )
        if threshold < 0:
            # A negative threshold admits zero-similarity documents, so
            # every document is a candidate — not just those sharing a
            # term with the query.  (Pre-fix the engine only considered
            # posting-list candidates and silently dropped zero-score
            # documents that the contract `score > threshold` includes.)
            candidates = [document.docid for document in self.store]
        else:
            seen = set()
            candidates = []
            for token in weights:
                for docid in self._term_documents.get(token, ()):
                    if docid not in seen:
                        seen.add(docid)
                        candidates.append(docid)
        scored = [
            ScoredDocument(docid, self._score_against(docid, weights, query_norm))
            for docid in candidates
        ]
        scored = [entry for entry in scored if entry.score > threshold]
        scored.sort(key=lambda entry: (-entry.score, entry.docid))
        if top_k is not None:
            scored = scored[:top_k]
        return VectorSearchOutcome(scored=scored, postings_processed=postings)

    def search(
        self,
        terms: Sequence[str],
        top_k: Optional[int] = 10,
        threshold: float = 0.0,
    ) -> List[ScoredDocument]:
        """Rank documents against a bag of terms.

        Returns documents with score strictly above ``threshold``, best
        first (ties broken by docid), truncated to ``top_k`` (``None``
        for all).  Note the semantics: a document matching *any* query
        term can appear — this is where Boolean monotonicity dies.
        """
        return self.counted_search(terms, top_k, threshold).scored

    def result_docids(
        self,
        terms: Sequence[str],
        top_k: Optional[int] = 10,
        threshold: float = 0.0,
    ) -> List[str]:
        """Just the docids of :meth:`search`."""
        return [entry.docid for entry in self.search(terms, top_k, threshold)]
