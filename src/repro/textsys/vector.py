"""A vector-space retrieval engine — and why the paper's techniques
break on it (Section 8).

"Another natural question is whether our techniques can be used for text
systems that are based on other retrieval models (e.g., vector-space,
probabilistic) … In particular, adding predicates in a query in these
text systems may result in more answers.  In contrast, our techniques
rely on the traditional semantics of predicates.  Thus … our techniques
will not be directly applicable in such systems."

:class:`VectorSpaceEngine` implements classic TF–IDF / cosine ranking
over the same document collection the Boolean server indexes.  A query
is a bag of terms; the result is the set of documents whose similarity
exceeds a threshold (or the top-*k*).  The test suite uses it to
*demonstrate* the paper's point: query results are **not monotone** in
the predicate set — adding a term can add documents — so a failed
"probe" on a term subset proves nothing about the full query, and
probe-based pruning is unsound here.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import TextSystemError, UnknownFieldError
from repro.textsys.analysis import tokenize
from repro.textsys.documents import DocumentStore

__all__ = ["ScoredDocument", "VectorSpaceEngine"]


@dataclass(frozen=True)
class ScoredDocument:
    """One ranked answer: a docid and its cosine similarity."""

    docid: str
    score: float


class VectorSpaceEngine:
    """TF–IDF / cosine retrieval over one field of a document store."""

    def __init__(self, store: DocumentStore, field: str) -> None:
        if not store.has_field(field):
            raise UnknownFieldError(f"unknown text field {field!r}")
        self.store = store
        self.field = field
        self._document_count = len(store)
        # term -> {docid: term frequency}
        self._term_documents: Dict[str, Dict[str, int]] = defaultdict(dict)
        self._norms: Dict[str, float] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        frequencies: Dict[str, Counter] = {}
        for document in self.store:
            counts = Counter(tokenize(document.field(self.field)))
            frequencies[document.docid] = counts
            for term, frequency in counts.items():
                self._term_documents[term][document.docid] = frequency
        for docid, counts in frequencies.items():
            norm_squared = 0.0
            for term, frequency in counts.items():
                weight = self._weight(term, frequency)
                norm_squared += weight * weight
            self._norms[docid] = math.sqrt(norm_squared)

    def _idf(self, term: str) -> float:
        document_frequency = len(self._term_documents.get(term, ()))
        if document_frequency == 0:
            return 0.0
        return math.log((1 + self._document_count) / (1 + document_frequency)) + 1.0

    def _weight(self, term: str, frequency: int) -> float:
        if frequency <= 0:
            return 0.0
        return (1.0 + math.log(frequency)) * self._idf(term)

    # ------------------------------------------------------------------
    def score(self, docid: str, terms: Sequence[str]) -> float:
        """Cosine similarity between a document and a bag of query terms."""
        query_counts = Counter(
            token for term in terms for token in tokenize(term)
        )
        if not query_counts:
            return 0.0
        query_norm_squared = 0.0
        dot = 0.0
        for term, query_frequency in query_counts.items():
            query_weight = (1.0 + math.log(query_frequency)) * self._idf(term)
            query_norm_squared += query_weight * query_weight
            document_frequency = self._term_documents.get(term, {}).get(docid, 0)
            dot += query_weight * self._weight(term, document_frequency)
        document_norm = self._norms.get(docid, 0.0)
        if dot == 0.0 or document_norm == 0.0 or query_norm_squared == 0.0:
            return 0.0
        return dot / (document_norm * math.sqrt(query_norm_squared))

    def search(
        self,
        terms: Sequence[str],
        top_k: Optional[int] = 10,
        threshold: float = 0.0,
    ) -> List[ScoredDocument]:
        """Rank documents against a bag of terms.

        Returns documents with score above ``threshold``, best first,
        truncated to ``top_k`` (``None`` for all).  Note the semantics:
        a document matching *any* query term can appear — this is where
        Boolean monotonicity dies.
        """
        if top_k is not None and top_k < 1:
            raise TextSystemError("top_k must be positive when given")
        candidates = set()
        for term in terms:
            for token in tokenize(term):
                candidates.update(self._term_documents.get(token, ()))
        scored = [
            ScoredDocument(docid, self.score(docid, terms))
            for docid in candidates
        ]
        scored = [entry for entry in scored if entry.score > threshold]
        scored.sort(key=lambda entry: (-entry.score, entry.docid))
        if top_k is not None:
            scored = scored[:top_k]
        return scored

    def result_docids(
        self,
        terms: Sequence[str],
        top_k: Optional[int] = 10,
        threshold: float = 0.0,
    ) -> List[str]:
        """Just the docids of :meth:`search`."""
        return [entry.docid for entry in self.search(terms, top_k, threshold)]
