"""Persistence for document collections (JSON-lines).

A collection serializes as one header line (field names, short fields)
followed by one JSON object per document — a stable, diffable,
stream-loadable format.  The inverted index is always rebuilt on load
(indexing the default 4000-document corpus takes well under a second,
and rebuilding beats versioning index internals).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.errors import TextSystemError
from repro.textsys.documents import Document, DocumentStore

__all__ = ["save_store", "load_store"]

_FORMAT = "repro-docstore-v1"


def save_store(store: DocumentStore, path: Union[str, Path]) -> None:
    """Write a document store to a JSON-lines file."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as handle:
        header = {
            "format": _FORMAT,
            "fields": list(store.field_names),
            "short_fields": list(store.short_fields),
        }
        handle.write(json.dumps(header) + "\n")
        for document in store:
            record = {"docid": document.docid, "fields": dict(document.fields)}
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_store(path: Union[str, Path]) -> DocumentStore:
    """Read a document store back from :func:`save_store` output."""
    path = Path(path)
    with path.open("r", encoding="utf-8") as handle:
        header_line = handle.readline()
        if not header_line:
            raise TextSystemError(f"{path}: empty document store file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as error:
            raise TextSystemError(f"{path}: bad header: {error}") from error
        if header.get("format") != _FORMAT:
            raise TextSystemError(
                f"{path}: unknown format {header.get('format')!r}"
            )
        store = DocumentStore(
            header["fields"], short_fields=header["short_fields"]
        )
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TextSystemError(
                    f"{path}:{line_number}: bad record: {error}"
                ) from error
            store.add(Document(record["docid"], record["fields"]))
    return store
