"""Persistence for document collections (JSON-lines, optionally gzipped).

A collection serializes as one header line (field names, short fields,
document count) followed by one JSON object per document — a stable,
diffable, stream-loadable format.  Paths ending in ``.gz`` are
transparently gzip-compressed on both save and load, which is what makes
million-document corpora feasible on disk (the JSON-lines text shrinks
by roughly 5–10×).

The header's ``count`` field lets loaders preallocate and report
progress without a second pass; files written before the field existed
load fine (``count`` is advisory and verified after the fact when
present).  The inverted index is always rebuilt on load — or, at scale,
served from a prebuilt :mod:`repro.textsys.diskindex` file instead.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Callable, Optional, Union

from repro.errors import TextSystemError
from repro.textsys.documents import Document, DocumentStore

__all__ = ["save_store", "load_store"]

_FORMAT = "repro-docstore-v1"

#: ``progress(documents_loaded, total_or_None)`` callback signature.
ProgressCallback = Callable[[int, Optional[int]], None]

#: How many documents between progress callbacks on load.
_PROGRESS_EVERY = 10_000


def _open_text(path: Path, mode: str):
    """Open a corpus file, gzip-wrapped when the suffix says so."""
    if path.suffix == ".gz":
        return gzip.open(path, mode + "t", encoding="utf-8")
    return path.open(mode, encoding="utf-8")


def save_store(store: DocumentStore, path: Union[str, Path]) -> None:
    """Write a document store to a JSON-lines file (``.gz`` compresses)."""
    path = Path(path)
    with _open_text(path, "w") as handle:
        header = {
            "format": _FORMAT,
            "fields": list(store.field_names),
            "short_fields": list(store.short_fields),
            "count": len(store),
        }
        handle.write(json.dumps(header) + "\n")
        for document in store:
            record = {"docid": document.docid, "fields": dict(document.fields)}
            handle.write(json.dumps(record, sort_keys=True) + "\n")


def load_store(
    path: Union[str, Path],
    progress: Optional[ProgressCallback] = None,
) -> DocumentStore:
    """Read a document store back from :func:`save_store` output.

    ``progress`` (if given) is called every few thousand documents, and
    once at the end, with ``(documents_loaded, declared_total)`` —
    ``declared_total`` is ``None`` for pre-``count`` files.
    """
    path = Path(path)
    with _open_text(path, "r") as handle:
        header_line = handle.readline()
        if not header_line:
            raise TextSystemError(f"{path}: empty document store file")
        try:
            header = json.loads(header_line)
        except json.JSONDecodeError as error:
            raise TextSystemError(f"{path}: bad header: {error}") from error
        if header.get("format") != _FORMAT:
            raise TextSystemError(
                f"{path}: unknown format {header.get('format')!r}"
            )
        declared = header.get("count")
        if declared is not None and (
            not isinstance(declared, int) or declared < 0
        ):
            raise TextSystemError(f"{path}: bad document count {declared!r}")
        store = DocumentStore(
            header["fields"], short_fields=header["short_fields"]
        )
        loaded = 0
        for line_number, line in enumerate(handle, start=2):
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise TextSystemError(
                    f"{path}:{line_number}: bad record: {error}"
                ) from error
            store.add(Document(record["docid"], record["fields"]))
            loaded += 1
            if progress is not None and loaded % _PROGRESS_EVERY == 0:
                progress(loaded, declared)
    if declared is not None and loaded != declared:
        raise TextSystemError(
            f"{path}: header declares {declared} documents but file holds "
            f"{loaded} (truncated or corrupted corpus)"
        )
    if progress is not None:
        progress(loaded, declared)
    return store
