"""Search evaluation over the inverted index.

Evaluation follows the paper's processing model (Section 2.1): inverted
lists are retrieved for each basic term and combined with sorted set
operations.  :class:`EvaluationResult` carries both the matching
documents and ``postings_processed`` — the sum of the lengths of every
inverted list the query names — which is exactly the quantity the cost
model multiplies by ``c_p``.

Two engine modes produce that result:

- ``reference`` — the original linear pairwise merges, kept verbatim as
  the test oracle: every operand is evaluated in query order, OR chains
  fold pairwise, nothing is reordered or skipped.
- ``optimized`` — the fast kernels: the expression is first normalized
  by :mod:`repro.textsys.rewriter` (flattened, duplicate-free,
  conjuncts ordered by document frequency), intersections gallop on
  skewed lists and stop once empty, OR/truncation fan-ins use one
  heap-based k-way union, and repeated subexpressions are evaluated
  once.  Skipped or deduplicated subtrees still pay their charges
  through a charge-only pass (list lengths via ``index.lookup``, no
  merging), so ``postings_processed``, page reads, result docids, and
  every downstream counter are bit-identical to ``reference``.

The process-wide default mode is ``optimized``; set the
``REPRO_ENGINE_MODE`` environment variable (or pass ``mode=``) to pin
either engine.

:func:`matches_document` is a brute-force reference evaluator used by the
test suite to validate both index-based paths.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from functools import reduce
from typing import Dict, Optional, Tuple

from repro.errors import SearchSyntaxError, TextSystemError
from repro.textsys.analysis import tokenize
from repro.textsys.documents import Document
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.postings import (
    PostingList,
    difference,
    intersect,
    intersect_linear,
    positional_intersect,
    union,
    union_many,
)
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    ProximityQuery,
    SearchNode,
    TermQuery,
    TruncatedQuery,
)
from repro.textsys.rewriter import rewrite

__all__ = [
    "ENGINE_MODES",
    "ENGINE_MODE_ENV",
    "EvaluationResult",
    "resolve_engine_mode",
    "evaluate",
    "matches_document",
]

#: The two evaluation engines: the linear-merge oracle and the fast kernels.
ENGINE_MODES = ("reference", "optimized")

#: Environment variable overriding the process-wide default engine mode.
ENGINE_MODE_ENV = "REPRO_ENGINE_MODE"


def resolve_engine_mode(mode: Optional[str] = None) -> str:
    """The engine mode to use: explicit > ``REPRO_ENGINE_MODE`` > optimized."""
    if mode is None:
        mode = os.environ.get(ENGINE_MODE_ENV) or "optimized"
    if mode not in ENGINE_MODES:
        raise TextSystemError(
            f"unknown engine mode {mode!r}; known: {list(ENGINE_MODES)}"
        )
    return mode


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of evaluating one search expression against the index."""

    postings: PostingList
    postings_processed: int

    def doc_count(self) -> int:
        return len(self.postings)


def evaluate(
    index: InvertedIndex, query: SearchNode, mode: Optional[str] = None
) -> EvaluationResult:
    """Evaluate a Boolean search expression using inverted lists.

    ``index`` is any object implementing the
    :class:`~repro.textsys.inverted_index.InvertedIndex` interface —
    in particular the disk-backed
    :class:`~repro.textsys.diskindex.DiskInvertedIndex`, whose lazy
    posting lists both engines consume unchanged (lookups charge pages
    from the dictionary, merges materialize blocks on demand, and the
    optimized engine's skewed intersections gallop through skip tables
    without decoding whole lists — see DESIGN invariant 13).
    """
    if resolve_engine_mode(mode) == "reference":
        postings, processed = _evaluate(index, query)
    else:
        postings, processed = _OptimizedEvaluator(index).run(query)
    return EvaluationResult(postings=postings, postings_processed=processed)


def _check_operands(query: SearchNode) -> None:
    """Reject zero-operand connectives that bypassed the constructors.

    :class:`AndQuery`/:class:`OrQuery` raise at construction time, but
    deserialization paths that restore ``__dict__`` directly (pickle,
    hand-built frames) can smuggle an empty operand tuple through; the
    engine must fail loudly rather than silently return nothing.
    """
    if isinstance(query, (AndQuery, OrQuery)) and not query.operands:
        raise SearchSyntaxError(
            f"{type(query).__name__} with no operands cannot be evaluated"
        )


# ----------------------------------------------------------------------
# reference engine (the oracle): linear pairwise merges, query order
# ----------------------------------------------------------------------
def _evaluate(index: InvertedIndex, query: SearchNode) -> Tuple[PostingList, int]:
    if isinstance(query, TermQuery):
        postings = index.lookup(query.field, query.term)
        return postings, len(postings)

    if isinstance(query, TruncatedQuery):
        expansions = index.lookup_prefix(query.field, query.prefix)
        processed = sum(len(postings) for _, postings in expansions)
        if not expansions:
            return PostingList(), 0
        result = reduce(union, (postings for _, postings in expansions))
        return result, processed

    if isinstance(query, PhraseQuery):
        lists = [index.lookup(query.field, word) for word in query.words]
        processed = sum(len(postings) for postings in lists)
        current = lists[0]
        for following in lists[1:]:
            current = positional_intersect(current, following, min_gap=1, max_gap=1)
            if not len(current):
                break
        return PostingList.from_docs(current.docs()), processed

    if isinstance(query, ProximityQuery):
        left = index.lookup(query.field, query.left)
        right = index.lookup(query.field, query.right)
        processed = len(left) + len(right)
        near = positional_intersect(
            left, right, min_gap=-query.distance, max_gap=query.distance
        )
        return PostingList.from_docs(near.docs()), processed

    if isinstance(query, AndQuery):
        _check_operands(query)
        total = 0
        current: PostingList = None  # type: ignore[assignment]
        for operand in query.operands:
            postings, processed = _evaluate(index, operand)
            total += processed
            current = (
                postings
                if current is None
                else intersect_linear(current, postings)
            )
        return current, total

    if isinstance(query, OrQuery):
        _check_operands(query)
        total = 0
        current = PostingList()
        for operand in query.operands:
            postings, processed = _evaluate(index, operand)
            total += processed
            current = union(current, postings)
        return current, total

    if isinstance(query, NotQuery):
        postings, processed = _evaluate(index, query.operand)
        return difference(index.all_docs(), postings), processed

    raise TextSystemError(f"unknown search node {type(query).__name__}")


# ----------------------------------------------------------------------
# optimized engine: rewritten shape, fast kernels, charge-only skips
# ----------------------------------------------------------------------
class _OptimizedEvaluator:
    """One optimized evaluation; memoizes repeated subexpressions.

    The accounting contract: for every subtree, the pair of side effects
    (``postings_processed`` contribution, ``index.pages_read`` growth)
    is exactly what the reference engine would produce.  Wherever merge
    work is skipped — a conjunction already empty, a memoized repeat, a
    rewriter-deduplicated operand — :meth:`_charge` still performs the
    subtree's list retrievals so the charges land.
    """

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index
        self._memo: Dict[SearchNode, PostingList] = {}

    def run(self, query: SearchNode) -> Tuple[PostingList, int]:
        plan = rewrite(self.index, query)
        processed = sum(self._charge(node) for node in plan.duplicates)
        postings, evaluated = self._eval(plan.node)
        return postings, processed + evaluated

    # ------------------------------------------------------------------
    def _eval(self, node: SearchNode) -> Tuple[PostingList, int]:
        cached = self._memo.get(node)
        if cached is not None:
            # Same subexpression again: reuse the merged result but
            # re-run its retrievals so the charges stay reference-equal.
            return cached, self._charge(node)
        postings, processed = self._compute(node)
        self._memo[node] = postings
        return postings, processed

    def _compute(self, node: SearchNode) -> Tuple[PostingList, int]:
        index = self.index
        if isinstance(node, TermQuery):
            postings = index.lookup(node.field, node.term)
            return postings, len(postings)

        if isinstance(node, TruncatedQuery):
            expansions = index.lookup_prefix(node.field, node.prefix)
            processed = sum(len(postings) for _, postings in expansions)
            if not expansions:
                return PostingList(), 0
            return (
                union_many([postings for _, postings in expansions]),
                processed,
            )

        if isinstance(node, PhraseQuery):
            lists = [index.lookup(node.field, word) for word in node.words]
            processed = sum(len(postings) for postings in lists)
            current = lists[0]
            for following in lists[1:]:
                current = positional_intersect(
                    current, following, min_gap=1, max_gap=1
                )
                if not len(current):
                    break
            return current.without_positions(), processed

        if isinstance(node, ProximityQuery):
            left = index.lookup(node.field, node.left)
            right = index.lookup(node.field, node.right)
            processed = len(left) + len(right)
            near = positional_intersect(
                left, right, min_gap=-node.distance, max_gap=node.distance
            )
            return near.without_positions(), processed

        if isinstance(node, AndQuery):
            return self._compute_and(node)

        if isinstance(node, OrQuery):
            _check_operands(node)
            results = []
            processed = 0
            for operand in node.operands:
                postings, evaluated = self._eval(operand)
                processed += evaluated
                results.append(postings)
            return union_many(results), processed

        if isinstance(node, NotQuery):
            postings, processed = self._eval(node.operand)
            return difference(index.all_docs(), postings), processed

        raise TextSystemError(f"unknown search node {type(node).__name__}")

    def _compute_and(self, node: AndQuery) -> Tuple[PostingList, int]:
        """Conjuncts come frequency-ordered (NOTs last) from the rewriter.

        The running intersection starts from the smallest list; once it
        is empty the remaining conjuncts are charge-only.  A trailing
        ``NOT x`` subtracts ``x`` directly from the running result — the
        same documents as intersecting with the complement, without
        materializing it (unless the NOTs come first, i.e. every
        conjunct is negative).
        """
        _check_operands(node)
        processed = 0
        current: Optional[PostingList] = None
        for operand in node.operands:
            if current is not None and not len(current):
                processed += self._charge(operand)
                continue
            if isinstance(operand, NotQuery) and current is not None:
                postings, evaluated = self._eval(operand.operand)
                current = difference(current, postings)
            else:
                postings, evaluated = self._eval(operand)
                current = (
                    postings if current is None else intersect(current, postings)
                )
            processed += evaluated
        assert current is not None
        return current, processed

    def _charge(self, node: SearchNode) -> int:
        """Retrieve a subtree's lists (charging pages) without merging.

        Returns the subtree's ``postings_processed`` — identical to what
        evaluating it would contribute, because the reference engine
        always retrieves every named list even when a merge could have
        stopped early.
        """
        index = self.index
        if isinstance(node, TermQuery):
            return len(index.lookup(node.field, node.term))
        if isinstance(node, TruncatedQuery):
            return sum(
                len(postings)
                for _, postings in index.lookup_prefix(node.field, node.prefix)
            )
        if isinstance(node, PhraseQuery):
            return sum(
                len(index.lookup(node.field, word)) for word in node.words
            )
        if isinstance(node, ProximityQuery):
            return len(index.lookup(node.field, node.left)) + len(
                index.lookup(node.field, node.right)
            )
        if isinstance(node, (AndQuery, OrQuery)):
            return sum(self._charge(operand) for operand in node.operands)
        if isinstance(node, NotQuery):
            return self._charge(node.operand)
        raise TextSystemError(f"unknown search node {type(node).__name__}")


def matches_document(document: Document, query: SearchNode) -> bool:
    """Brute-force reference semantics: does the document match the query?

    Used in tests to cross-check :func:`evaluate`; never used in the query
    processing path (the paper assumes the text system only exposes
    search/retrieve).
    """
    if isinstance(query, TermQuery):
        return query.term in tokenize(document.field(query.field))

    if isinstance(query, TruncatedQuery):
        return any(
            token.startswith(query.prefix)
            for token in tokenize(document.field(query.field))
        )

    if isinstance(query, PhraseQuery):
        tokens = tokenize(document.field(query.field))
        width = len(query.words)
        return any(
            tuple(tokens[start : start + width]) == query.words
            for start in range(len(tokens) - width + 1)
        )

    if isinstance(query, ProximityQuery):
        tokens = tokenize(document.field(query.field))
        left_positions = [i for i, token in enumerate(tokens) if token == query.left]
        right_positions = [i for i, token in enumerate(tokens) if token == query.right]
        return any(
            abs(right - left) <= query.distance
            for left in left_positions
            for right in right_positions
        )

    if isinstance(query, AndQuery):
        _check_operands(query)
        return all(matches_document(document, operand) for operand in query.operands)

    if isinstance(query, OrQuery):
        _check_operands(query)
        return any(matches_document(document, operand) for operand in query.operands)

    if isinstance(query, NotQuery):
        return not matches_document(document, query.operand)

    raise TextSystemError(f"unknown search node {type(query).__name__}")
