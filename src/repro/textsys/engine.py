"""Search evaluation over the inverted index.

Evaluation follows the paper's processing model (Section 2.1): inverted
lists are retrieved for each basic term and combined with linear-time
sorted set operations.  :class:`EvaluationResult` carries both the
matching documents and ``postings_processed`` — the sum of the lengths of
every inverted list retrieved — which is exactly the quantity the cost
model multiplies by ``c_p``.

:func:`matches_document` is a brute-force reference evaluator used by the
test suite to validate the index-based path.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import reduce
from typing import Tuple

from repro.errors import TextSystemError
from repro.textsys.analysis import tokenize
from repro.textsys.documents import Document
from repro.textsys.inverted_index import InvertedIndex
from repro.textsys.postings import (
    PostingList,
    difference,
    intersect,
    positional_intersect,
    union,
)
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    ProximityQuery,
    SearchNode,
    TermQuery,
    TruncatedQuery,
)

__all__ = ["EvaluationResult", "evaluate", "matches_document"]


@dataclass(frozen=True)
class EvaluationResult:
    """Outcome of evaluating one search expression against the index."""

    postings: PostingList
    postings_processed: int

    def doc_count(self) -> int:
        return len(self.postings)


def evaluate(index: InvertedIndex, query: SearchNode) -> EvaluationResult:
    """Evaluate a Boolean search expression using inverted lists."""
    postings, processed = _evaluate(index, query)
    return EvaluationResult(postings=postings, postings_processed=processed)


def _evaluate(index: InvertedIndex, query: SearchNode) -> Tuple[PostingList, int]:
    if isinstance(query, TermQuery):
        postings = index.lookup(query.field, query.term)
        return postings, len(postings)

    if isinstance(query, TruncatedQuery):
        expansions = index.lookup_prefix(query.field, query.prefix)
        processed = sum(len(postings) for _, postings in expansions)
        if not expansions:
            return PostingList(), 0
        result = reduce(union, (postings for _, postings in expansions))
        return result, processed

    if isinstance(query, PhraseQuery):
        lists = [index.lookup(query.field, word) for word in query.words]
        processed = sum(len(postings) for postings in lists)
        current = lists[0]
        for following in lists[1:]:
            current = positional_intersect(current, following, min_gap=1, max_gap=1)
            if not len(current):
                break
        return PostingList.from_docs(current.docs()), processed

    if isinstance(query, ProximityQuery):
        left = index.lookup(query.field, query.left)
        right = index.lookup(query.field, query.right)
        processed = len(left) + len(right)
        near = positional_intersect(
            left, right, min_gap=-query.distance, max_gap=query.distance
        )
        return PostingList.from_docs(near.docs()), processed

    if isinstance(query, AndQuery):
        total = 0
        current: PostingList = None  # type: ignore[assignment]
        for operand in query.operands:
            postings, processed = _evaluate(index, operand)
            total += processed
            current = postings if current is None else intersect(current, postings)
        return current, total

    if isinstance(query, OrQuery):
        total = 0
        current = PostingList()
        for operand in query.operands:
            postings, processed = _evaluate(index, operand)
            total += processed
            current = union(current, postings)
        return current, total

    if isinstance(query, NotQuery):
        postings, processed = _evaluate(index, query.operand)
        return difference(index.all_docs(), postings), processed

    raise TextSystemError(f"unknown search node {type(query).__name__}")


def matches_document(document: Document, query: SearchNode) -> bool:
    """Brute-force reference semantics: does the document match the query?

    Used in tests to cross-check :func:`evaluate`; never used in the query
    processing path (the paper assumes the text system only exposes
    search/retrieve).
    """
    if isinstance(query, TermQuery):
        return query.term in tokenize(document.field(query.field))

    if isinstance(query, TruncatedQuery):
        return any(
            token.startswith(query.prefix)
            for token in tokenize(document.field(query.field))
        )

    if isinstance(query, PhraseQuery):
        tokens = tokenize(document.field(query.field))
        width = len(query.words)
        return any(
            tuple(tokens[start : start + width]) == query.words
            for start in range(len(tokens) - width + 1)
        )

    if isinstance(query, ProximityQuery):
        tokens = tokenize(document.field(query.field))
        left_positions = [i for i, token in enumerate(tokens) if token == query.left]
        right_positions = [i for i, token in enumerate(tokens) if token == query.right]
        return any(
            abs(right - left) <= query.distance
            for left in left_positions
            for right in right_positions
        )

    if isinstance(query, AndQuery):
        return all(matches_document(document, operand) for operand in query.operands)

    if isinstance(query, OrQuery):
        return any(matches_document(document, operand) for operand in query.operands)

    if isinstance(query, NotQuery):
        return not matches_document(document, query.operand)

    raise TextSystemError(f"unknown search node {type(query).__name__}")
