"""The university CS-department relational database (Section 7's setup).

"On the database end, we created a relational database that models a
university computer science department."  Three tables:

- ``student(name, area, year, advisor, dept)``
- ``faculty(name, dept)``
- ``project(name, sponsor, member)``

Row values (names, project names) come from reserved single-token pools
shared with the corpus generator, so the relational side and the text
side agree about which join values exist.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import DataType

__all__ = [
    "STUDENT_SCHEMA",
    "FACULTY_SCHEMA",
    "PROJECT_SCHEMA",
    "build_student_table",
    "build_faculty_table",
    "build_project_table",
]

STUDENT_SCHEMA = Schema.of(
    ("name", DataType.VARCHAR),
    ("area", DataType.VARCHAR),
    ("year", DataType.INTEGER),
    ("advisor", DataType.VARCHAR),
    ("dept", DataType.VARCHAR),
)

FACULTY_SCHEMA = Schema.of(
    ("name", DataType.VARCHAR),
    ("dept", DataType.VARCHAR),
)

PROJECT_SCHEMA = Schema.of(
    ("name", DataType.VARCHAR),
    ("sponsor", DataType.VARCHAR),
    ("member", DataType.VARCHAR),
)


def build_student_table(
    catalog: Catalog,
    records: Sequence[Tuple[str, str, int, str, str]],
    table_name: str = "student",
) -> Table:
    """Create and fill the ``student`` table from explicit records."""
    table = catalog.create_table(table_name, STUDENT_SCHEMA)
    for record in records:
        table.insert(list(record))
    return table


def build_faculty_table(
    catalog: Catalog,
    records: Sequence[Tuple[str, str]],
    table_name: str = "faculty",
) -> Table:
    """Create and fill the ``faculty`` table from explicit records."""
    table = catalog.create_table(table_name, FACULTY_SCHEMA)
    for record in records:
        table.insert(list(record))
    return table


def build_project_table(
    catalog: Catalog,
    memberships: Sequence[Tuple[str, str, str]],
    table_name: str = "project",
) -> Table:
    """Create and fill the ``project`` table from (name, sponsor, member)."""
    table = catalog.create_table(table_name, PROJECT_SCHEMA)
    for record in memberships:
        table.insert(list(record))
    return table
