"""The canonical experimental setup: the paper's queries Q1–Q5.

:func:`build_default_scenario` constructs a complete integrated system —
synthetic Mercury-like corpus, university relational database, Boolean
text server — with statistics *planted* so that each query lands in the
regime the paper reports (Table 2):

- **Q1** (senior AI students × 'belief update' titles): the text
  selection is highly selective, so RTP beats SJ+RTP (which pays extra
  invocations once the disjunction spills over the term limit) and both
  crush TS.
- **Q2** (Garcia's students × 'text' titles, docids only): the selection
  is *not* selective, so RTP drowns in shipped documents; the semi-join
  wins with a couple of invocations.
- **Q3** (NSF projects: name-in-title and member-in-author): two join
  predicates, a selective but high-fanout probing column — P+TS wins,
  SJ+RTP second, P+RTP pays document shipping, TS pays invocations.
- **Q4** (distributed-systems students co-authoring with advisors):
  s₁ = 1 on the advisor column (probing for TS is useless — P+TS is the
  *worst*), but the advisors' few documents make P+RTP the winner.
- **Q5** (student × faculty × mercury, Example 6.1): the multi-join
  query whose optimal plan probes ``student`` before the relational
  join — a PrL tree outside the traditional left-deep space.

All randomness is seeded; the same seed reproduces the same corpus,
tables and statistics exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.joinmethods.base import JoinContext
from repro.errors import WorkloadError
from repro.core.optimizer.multiquery import MultiJoinQuery, RelationalJoinPredicate
from repro.core.query import (
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
)
from repro.gateway.cache import GatewayCache
from repro.gateway.client import TextClient
from repro.gateway.costs import CostConstants
from repro.gateway.tracing import CallTracer
from repro.relational.catalog import Catalog
from repro.relational.expressions import And, ColumnRef, Comparison, Literal
from repro.textsys.server import BooleanTextServer
from repro.workload.corpus import SyntheticCorpus
from repro.workload.university import (
    build_faculty_table,
    build_project_table,
    build_student_table,
)
from repro.workload.vocabulary import reserved_pool

__all__ = [
    "Scenario",
    "build_default_scenario",
    "build_prl_scenario",
    "build_chain_scenario",
    "DEFAULT_CONSTANTS",
]

#: Cost constants for the default scenario.  c_i, c_p, c_s, c_l are the
#: paper's calibrated OpenODB↔Mercury values; c_a (never published) is
#: set to 50 ms per document-tuple comparison, consistent with OSQL
#: foreign-function string matching of the era and with the relative
#: magnitudes in Table 2 (see EXPERIMENTS.md).
DEFAULT_CONSTANTS = CostConstants(
    invocation=3.0,
    per_posting=0.00001,
    short_form=0.015,
    long_form=4.0,
    rtp_per_document=0.05,
)


@dataclass
class Scenario:
    """A fully built integrated system plus the canonical queries."""

    catalog: Catalog
    server: BooleanTextServer
    constants: CostConstants = field(default_factory=lambda: DEFAULT_CONSTANTS)
    #: Planted workload parameters, keyed by query id ("q1".."q5").
    parameters: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: When set, every fresh client shares this gateway cache (opt-in:
    #: None keeps the paper-calibrated accounting bit-identical).
    shared_cache: Optional[GatewayCache] = None
    #: When set, every fresh client appends spans to this tracer.
    shared_tracer: Optional[CallTracer] = None

    def client(
        self,
        log_calls: bool = False,
        cache: Optional[GatewayCache] = None,
        tracer: Optional[CallTracer] = None,
    ) -> TextClient:
        """A fresh metered client (fresh cost ledger) on the shared server."""
        return TextClient(
            self.server,
            constants=self.constants,
            log_calls=log_calls,
            cache=cache if cache is not None else self.shared_cache,
            tracer=tracer if tracer is not None else self.shared_tracer,
        )

    def context(
        self,
        log_calls: bool = False,
        cache: Optional[GatewayCache] = None,
        tracer: Optional[CallTracer] = None,
    ) -> JoinContext:
        """A fresh execution context (new client, shared catalog)."""
        return JoinContext(
            self.catalog,
            self.client(log_calls=log_calls, cache=cache, tracer=tracer),
        )

    # ------------------------------------------------------------------
    # the canonical queries
    # ------------------------------------------------------------------
    def q1(self, long_form: bool = True) -> TextJoinQuery:
        """Q1: senior AI students joined on author with 'belief update' titles."""
        return TextJoinQuery(
            relation="student",
            join_predicates=(TextJoinPredicate("student.name", "author"),),
            text_selections=(TextSelection("belief update", "title"),),
            relation_predicate=And(
                (
                    Comparison("=", ColumnRef("student.area"), Literal("AI")),
                    Comparison(">", ColumnRef("student.year"), Literal(3)),
                )
            ),
            shape=ResultShape.PAIRS,
            long_form=long_form,
        )

    def q2(self) -> TextJoinQuery:
        """Q2: docids of 'text'-titled reports authored by Garcia's students."""
        return TextJoinQuery(
            relation="student",
            join_predicates=(TextJoinPredicate("student.name", "author"),),
            text_selections=(TextSelection("text", "title"),),
            relation_predicate=Comparison(
                "=", ColumnRef("student.advisor"), Literal(self.parameters["q2"]["advisor"])
            ),
            shape=ResultShape.DOCIDS,
        )

    def q3(self) -> TextJoinQuery:
        """Q3: NSF projects — project name in title, member in author."""
        return TextJoinQuery(
            relation="project",
            join_predicates=(
                TextJoinPredicate("project.name", "title"),
                TextJoinPredicate("project.member", "author"),
            ),
            relation_predicate=Comparison(
                "=", ColumnRef("project.sponsor"), Literal("NSF")
            ),
            shape=ResultShape.PAIRS,
        )

    def q4(self) -> TextJoinQuery:
        """Q4: distributed-systems students co-authoring with their advisors."""
        return TextJoinQuery(
            relation="student",
            join_predicates=(
                TextJoinPredicate("student.advisor", "author"),
                TextJoinPredicate("student.name", "author"),
            ),
            relation_predicate=Comparison(
                "=", ColumnRef("student.area"), Literal("distributed systems")
            ),
            shape=ResultShape.PAIRS,
        )

    def q5(self) -> MultiJoinQuery:
        """Q5 (Example 6.1): student-faculty cross-department co-authorship."""
        return MultiJoinQuery(
            relations=("student", "faculty"),
            text_predicates=(
                TextJoinPredicate("student.name", "author"),
                TextJoinPredicate("faculty.name", "author"),
            ),
            text_selections=(TextSelection("may 1993", "year"),),
            join_predicates=(
                RelationalJoinPredicate(
                    Comparison(
                        "!=", ColumnRef("faculty.dept"), ColumnRef("student.dept")
                    ),
                    ("faculty", "student"),
                ),
            ),
            text_source="mercury",
        )

    def query(self, query_id: str) -> Any:
        """Look up a canonical query by id ('q1'..'q5')."""
        return getattr(self, query_id)()


def build_default_scenario(
    seed: int = 7, document_count: int = 4000
) -> Scenario:
    """Build the full Table-2 scenario (corpus + tables + plantings)."""
    rng = random.Random(seed)
    corpus = SyntheticCorpus(document_count, seed=seed + 1)
    catalog = Catalog()
    parameters: Dict[str, Dict[str, Any]] = {}

    # ------------------------------------------------------------------
    # value pools
    # ------------------------------------------------------------------
    student_names = reserved_pool("stu", 330, rng)
    ds_advisors = reserved_pool("dsadv", 2, rng)
    other_advisors = reserved_pool("adv", 8, rng)
    garcia = other_advisors[0]
    faculty_names = reserved_pool("fac", 20, rng)
    nsf_project_names = reserved_pool("prj", 12, rng)
    darpa_project_names = reserved_pool("dpr", 8, rng)
    member_names = reserved_pool("mem", 133, rng)

    # ------------------------------------------------------------------
    # student table: 330 students
    #   - 160 AI (80 of them senior: year > 3)        -> Q1
    #   - 14 distributed systems, 2 advisors           -> Q4
    #   - 100 databases, 56 theory
    #   - 17 students (outside DS) advised by Garcia   -> Q2
    # ------------------------------------------------------------------
    depts = ("cs", "ee", "me")
    records: List[Tuple[str, str, int, str, str]] = []
    name_iter = iter(student_names)

    senior_ai: List[str] = []
    for index in range(160):
        name = next(name_iter)
        year = rng.randint(4, 6) if index < 80 else rng.randint(1, 3)
        if index < 80:
            senior_ai.append(name)
        records.append(
            (name, "AI", year, rng.choice(other_advisors), rng.choice(depts))
        )

    ds_students: List[Tuple[str, str]] = []  # (student, advisor)
    for index in range(14):
        name = next(name_iter)
        advisor = ds_advisors[index % 2]
        ds_students.append((name, advisor))
        records.append(
            (name, "distributed systems", rng.randint(1, 6), advisor, rng.choice(depts))
        )

    for index in range(100):
        name = next(name_iter)
        records.append(
            (name, "databases", rng.randint(1, 6), rng.choice(other_advisors), rng.choice(depts))
        )
    for index in range(56):
        name = next(name_iter)
        records.append(
            (name, "theory", rng.randint(1, 6), rng.choice(other_advisors), rng.choice(depts))
        )

    # Reassign exactly 17 non-DS students to Garcia.
    non_ds_indexes = [
        i for i, record in enumerate(records) if record[1] != "distributed systems"
    ]
    garcia_indexes = rng.sample(non_ds_indexes, 17)
    garcia_students: List[str] = []
    for i, record in enumerate(records):
        name, area, year, advisor, dept = record
        if i in set(garcia_indexes):
            advisor = garcia
            garcia_students.append(name)
        elif advisor == garcia and area != "distributed systems":
            advisor = other_advisors[1]
        records[i] = (name, area, year, advisor, dept)

    build_student_table(catalog, records)

    # ------------------------------------------------------------------
    # faculty table (Q5): 20 faculty across departments
    # ------------------------------------------------------------------
    faculty_records = [(name, rng.choice(depts)) for name in faculty_names]
    build_faculty_table(catalog, faculty_records)

    # ------------------------------------------------------------------
    # project table (Q3): 12 NSF projects x ~9 members = 109 NSF rows,
    # plus 8 DARPA projects x 3 members.
    # ------------------------------------------------------------------
    member_iter = iter(member_names)
    memberships: List[Tuple[str, str, str]] = []
    project_members: Dict[str, List[str]] = {}
    for index, project in enumerate(nsf_project_names):
        count = 10 if index == 0 else 9
        members = [next(member_iter) for _ in range(count)]
        project_members[project] = members
        for member in members:
            memberships.append((project, "NSF", member))
    for project in darpa_project_names:
        members = [next(member_iter) for _ in range(3)]
        project_members[project] = members
        for member in members:
            memberships.append((project, "DARPA", member))
    build_project_table(catalog, memberships)

    # ------------------------------------------------------------------
    # corpus plantings
    # ------------------------------------------------------------------
    # Background: a quarter of all student names appear as authors.
    corpus.plant_pool(
        student_names, "author", selectivity=0.25, conditional_fanout=2
    )

    # Q1: 'belief update' in exactly 4 titles; each of those documents is
    # authored by a senior AI student (maximal selection-join overlap).
    belief_docs = corpus.plant_phrase("belief update", "title", 4)
    q1_authors = rng.sample(senior_ai, 4)
    for author, doc in zip(q1_authors, belief_docs):
        corpus.plant_value(author, "author", [doc])
    parameters["q1"] = {
        "senior_ai_count": len(senior_ai),
        "selection_documents": len(belief_docs),
        "planted_authors": q1_authors,
    }

    # Q2: 'text' in 100 titles; 3 of Garcia's students author such reports.
    text_docs = corpus.plant_phrase("text", "title", 100)
    q2_authors = rng.sample(garcia_students, 3)
    for author, doc in zip(q2_authors, rng.sample(list(text_docs), 3)):
        corpus.plant_value(author, "author", [doc])
    parameters["q2"] = {
        "advisor": garcia,
        "garcia_students": len(garcia_students),
        "selection_documents": len(text_docs),
        "planted_authors": q2_authors,
    }

    # Q3: 2 of the 12 NSF project names appear in titles (s1 = 1/6), each
    # in 100 documents (high fanout); every member of those two projects
    # co-authors exactly one document within the project's title set.
    matched_projects = rng.sample(nsf_project_names, 2)
    project_plant = corpus.plant_pool(
        nsf_project_names,
        "title",
        selectivity=2 / 12,
        conditional_fanout=100,
        matched_values=matched_projects,
    )
    join_docs = 0
    for project in matched_projects:
        title_docs = list(project_plant.documents_per_value[project])
        for member in project_members[project]:
            corpus.plant_pool(
                member_names,
                "author",
                selectivity=1 / len(member_names),
                conditional_fanout=1,
                within=title_docs,
                matched_values=[member],
            )
            join_docs += 1
    # Background member appearances (affects member statistics only).
    corpus.plant_pool(
        member_names, "author", selectivity=0.2, conditional_fanout=1
    )
    parameters["q3"] = {
        "nsf_rows": sum(1 for m in memberships if m[1] == "NSF"),
        "distinct_project_names": len(nsf_project_names),
        "matched_projects": matched_projects,
        "title_fanout_per_match": 100,
        "planted_join_documents": join_docs,
    }

    # Q4: both DS advisors author 6 documents each (s1 = 1); every one of
    # those 12 documents is co-authored by a student of that advisor.
    advisor_plant = corpus.plant_pool(
        ds_advisors, "author", selectivity=1.0, conditional_fanout=6
    )
    q4_pairs = 0
    for advisor in ds_advisors:
        advisor_docs = list(advisor_plant.documents_per_value[advisor])
        students = [name for name, adv in ds_students if adv == advisor]
        for position, doc in enumerate(advisor_docs):
            student = students[position % len(students)]
            corpus.plant_value(student, "author", [doc])
            q4_pairs += 1
    parameters["q4"] = {
        "ds_students": len(ds_students),
        "distinct_advisors": len(ds_advisors),
        "advisor_fanout": 6,
        "planted_join_documents": q4_pairs,
    }

    # Q5: 30 extra 'may 1993' documents; 10 cross-department
    # (student, faculty) pairs co-author one of them each.
    may_docs = corpus.plant_phrase("may 1993", "year", 30)
    student_by_name = {record[0]: record for record in records}
    cross_pairs: List[Tuple[str, str]] = []
    attempts = 0
    while len(cross_pairs) < 10 and attempts < 1000:
        attempts += 1
        student = rng.choice(student_names)
        faculty_name, faculty_dept = rng.choice(faculty_records)
        if student_by_name[student][4] != faculty_dept:
            cross_pairs.append((student, faculty_name))
    for index, (student, faculty_name) in enumerate(cross_pairs):
        doc = may_docs[index % len(may_docs)]
        corpus.plant_value(student, "author", [doc])
        corpus.plant_value(faculty_name, "author", [doc])
    # Faculty names also appear broadly as authors.
    corpus.plant_pool(
        faculty_names, "author", selectivity=0.6, conditional_fanout=3
    )
    parameters["q5"] = {
        "extra_may_1993_documents": len(may_docs),
        "planted_pairs": len(cross_pairs),
    }

    # Background co-authors everywhere (after plantings: exact stats kept).
    corpus.pad_authors(per_document=2)

    store = corpus.build_store(short_fields=("title", "author", "year", "institution"))
    server = BooleanTextServer(store)
    return Scenario(
        catalog=catalog,
        server=server,
        constants=DEFAULT_CONSTANTS,
        parameters=parameters,
    )


def build_prl_scenario(
    seed: int = 11,
    document_count: int = 3000,
    enrollment_rows: int = 3000,
    distinct_names: int = 60,
    course_rows: int = 1500,
    name_selectivity: float = 0.1,
) -> Tuple[Scenario, MultiJoinQuery]:
    """A workload where a probe node *strictly* beats every left-deep plan.

    The Example 6.1 situation, amplified: ``enrollment(name, course)`` is
    large but has few distinct names (many enrollments per person), only
    ``name_selectivity`` of which ever author a report.  Joining
    ``enrollment`` with the ``course`` catalogue first is expensive; a
    probe on ``enrollment.name`` shrinks the relation ~10x for the price
    of ``distinct_names`` cheap probes, making both the relational join
    and the foreign join cheaper — a PrL tree outside the traditional
    left-deep space.

    Returns the built scenario plus the three-way join query.
    """
    rng = random.Random(seed)
    corpus = SyntheticCorpus(document_count, seed=seed + 1)
    catalog = Catalog()

    names = reserved_pool("enr", distinct_names, rng)
    course_ids = [f"course{i:04d}" for i in range(course_rows)]

    from repro.relational.schema import Schema
    from repro.relational.types import DataType

    enrollment = catalog.create_table(
        "enrollment",
        Schema.of(("name", DataType.VARCHAR), ("course", DataType.VARCHAR)),
    )
    for _ in range(enrollment_rows):
        enrollment.insert([rng.choice(names), rng.choice(course_ids)])

    course = catalog.create_table(
        "course",
        Schema.of(("course", DataType.VARCHAR), ("dept", DataType.VARCHAR)),
    )
    for course_id in course_ids:
        course.insert([course_id, rng.choice(("cs", "ee", "me"))])

    corpus.plant_pool(
        names, "author", selectivity=name_selectivity, conditional_fanout=2
    )
    corpus.pad_authors(per_document=2)

    store = corpus.build_store(short_fields=("title", "author", "year", "institution"))
    scenario = Scenario(
        catalog=catalog,
        server=BooleanTextServer(store),
        constants=DEFAULT_CONSTANTS,
        parameters={
            "q6": {
                "enrollment_rows": enrollment_rows,
                "distinct_names": distinct_names,
                "course_rows": course_rows,
                "name_selectivity": name_selectivity,
            }
        },
    )
    query = MultiJoinQuery(
        relations=("enrollment", "course"),
        text_predicates=(TextJoinPredicate("enrollment.name", "author"),),
        join_predicates=(
            RelationalJoinPredicate(
                Comparison("=", ColumnRef("enrollment.course"), ColumnRef("course.course")),
                ("enrollment", "course"),
            ),
        ),
        text_source="mercury",
    )
    return scenario, query


def build_chain_scenario(
    relation_count: int,
    seed: int = 23,
    document_count: int = 500,
    rows_per_relation: int = 30,
) -> Tuple[Scenario, MultiJoinQuery]:
    """A chain join of ``relation_count`` relations plus the text source.

    ``r1.key = r2.key = ... = rn.key`` with one text predicate on
    ``r1.name``; used by the E9 enumeration-complexity benchmark to
    measure optimizer effort as a function of ``n``.
    """
    if relation_count < 1:
        raise WorkloadError("relation_count must be at least 1")
    rng = random.Random(seed)
    corpus = SyntheticCorpus(document_count, seed=seed + 1)
    catalog = Catalog()

    from repro.relational.schema import Schema
    from repro.relational.types import DataType

    names = reserved_pool("chn", rows_per_relation, rng)
    keys = [f"key{i:03d}" for i in range(rows_per_relation)]
    relations = tuple(f"r{i + 1}" for i in range(relation_count))
    for relation in relations:
        table = catalog.create_table(
            relation,
            Schema.of(("key", DataType.VARCHAR), ("name", DataType.VARCHAR)),
        )
        for key in keys:
            table.insert([key, rng.choice(names)])

    corpus.plant_pool(names, "author", selectivity=0.3, conditional_fanout=1)
    corpus.pad_authors(per_document=1, pool_size=100)

    store = corpus.build_store(short_fields=("title", "author", "year", "institution"))
    scenario = Scenario(
        catalog=catalog,
        server=BooleanTextServer(store),
        constants=DEFAULT_CONSTANTS,
    )
    join_predicates = tuple(
        RelationalJoinPredicate(
            Comparison(
                "=",
                ColumnRef(f"{relations[i]}.key"),
                ColumnRef(f"{relations[i + 1]}.key"),
            ),
            (relations[i], relations[i + 1]),
        )
        for i in range(relation_count - 1)
    )
    query = MultiJoinQuery(
        relations=relations,
        text_predicates=(TextJoinPredicate(f"{relations[0]}.name", "author"),),
        join_predicates=join_predicates,
        text_source="mercury",
    )
    return scenario, query
