"""Synthetic workloads: the Mercury-like corpus, the university database,
and the paper's canonical queries Q1–Q5 with planted statistics."""

from repro.workload.corpus import (
    DEFAULT_FIELDS,
    PlantReport,
    SyntheticCorpus,
    expanded_vocabulary,
    iter_synthetic_documents,
)
from repro.workload.io import load_scenario_data, save_scenario
from repro.workload.scenarios import (
    DEFAULT_CONSTANTS,
    Scenario,
    build_default_scenario,
)
from repro.workload.university import (
    FACULTY_SCHEMA,
    PROJECT_SCHEMA,
    STUDENT_SCHEMA,
    build_faculty_table,
    build_project_table,
    build_student_table,
)
from repro.workload.vocabulary import reserved_pool, zipf_text, zipf_word

__all__ = [
    "SyntheticCorpus",
    "PlantReport",
    "DEFAULT_FIELDS",
    "expanded_vocabulary",
    "iter_synthetic_documents",
    "Scenario",
    "build_default_scenario",
    "DEFAULT_CONSTANTS",
    "STUDENT_SCHEMA",
    "FACULTY_SCHEMA",
    "PROJECT_SCHEMA",
    "build_student_table",
    "build_faculty_table",
    "build_project_table",
    "reserved_pool",
    "zipf_text",
    "zipf_word",
    "save_scenario",
    "load_scenario_data",
]
