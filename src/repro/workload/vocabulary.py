"""Vocabulary and name generation for synthetic workloads.

Background document text is drawn from a Zipf-distributed vocabulary
(word frequencies in real corpora are Zipfian, which gives inverted
lists the skewed length distribution the cost model's postings term
cares about).  Join values (student names, project names, ...) come from
*reserved pools*: realistic stems with numeric suffixes, guaranteed
disjoint from the background vocabulary and from each other, so planted
selectivities and fanouts are exact.
"""

from __future__ import annotations

import random
from typing import List, Sequence

__all__ = [
    "BACKGROUND_WORDS",
    "NAME_STEMS",
    "zipf_word",
    "zipf_text",
    "reserved_pool",
]

#: Background vocabulary stems; expanded with numeric suffixes to reach
#: the requested vocabulary size.
BACKGROUND_WORDS: List[str] = [
    "algorithm", "system", "database", "query", "index", "retrieval",
    "parallel", "distributed", "network", "protocol", "cache", "memory",
    "storage", "transaction", "recovery", "concurrency", "optimization",
    "performance", "evaluation", "analysis", "model", "framework",
    "architecture", "language", "compiler", "semantics", "logic",
    "inference", "learning", "knowledge", "representation", "planning",
    "search", "heuristic", "complexity", "graph", "tree", "hash",
    "sorting", "scheduling", "replication", "consistency", "availability",
    "partition", "stream", "filter", "aggregation", "join", "selection",
    "projection", "relational", "object", "oriented", "extensible",
    "federated", "mediator", "wrapper", "interface", "specification",
    "verification", "testing", "simulation", "measurement", "benchmark",
    "workload", "latency", "throughput", "bandwidth", "clustering",
    "classification", "recognition", "vision", "speech", "translation",
]

#: Stems for person/project name pools (suffixed with indexes).
NAME_STEMS: List[str] = [
    "garcia", "ullman", "gravano", "radhika", "chaudhuri", "dayal",
    "carey", "stonebraker", "dewitt", "selinger", "astrahan", "gray",
    "mohan", "bernstein", "abiteboul", "widom", "naughton", "ioannidis",
    "ramakrishnan", "salton", "faloutsos", "croft", "kao", "pham",
    "desmedt", "hanson", "keller", "wiederhold", "ceri", "navathe",
]


def zipf_word(rng: random.Random, vocabulary: Sequence[str], skew: float = 1.1) -> str:
    """Draw one word with an approximate Zipf(skew) rank distribution.

    Uses inverse-CDF sampling over ranks via the power-law approximation
    ``rank ~ u^(-1/(skew-1))`` truncated to the vocabulary size — cheap
    and close enough for workload purposes.
    """
    size = len(vocabulary)
    u = rng.random()
    # Avoid u == 0; map the uniform draw to a heavy-tailed rank.
    rank = int(min(size - 1, (size ** (u ** skew)) - 1))
    return vocabulary[rank]


def zipf_text(
    rng: random.Random,
    vocabulary: Sequence[str],
    word_count: int,
    skew: float = 1.1,
) -> str:
    """A space-joined Zipfian word sequence of the given length."""
    return " ".join(zipf_word(rng, vocabulary, skew) for _ in range(word_count))


def reserved_pool(prefix: str, count: int, rng: random.Random) -> List[str]:
    """``count`` unique, single-token values disjoint from everything else.

    Values look like ``garcia042x7`` — a realistic stem, a pool index,
    and the pool prefix — and tokenize to exactly one word, so each value
    owns exactly one inverted-list entry.
    """
    values = []
    for index in range(count):
        stem = NAME_STEMS[rng.randrange(len(NAME_STEMS))]
        values.append(f"{stem}{index:03d}{prefix}")
    return values
