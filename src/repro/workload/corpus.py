"""Synthetic bibliographic corpora with controllable text statistics.

This is the reproduction's stand-in for the CSTR database behind CMU
Mercury.  It generates ``D`` background documents (title / author /
abstract / year / institution) and then *plants* join values and
selection terms with exact, caller-chosen statistics:

- :meth:`SyntheticCorpus.plant_pool` — make a chosen fraction
  (selectivity ``s``) of a value pool appear in a field, each matching
  value in a chosen number of documents (fanout ``f = s *
  conditional_fanout``);
- :meth:`SyntheticCorpus.plant_phrase` — make a phrase or word match an
  exact number of documents (for text selections like ``'belief update'
  in title``).

Because planted values come from reserved single-token pools
(:func:`~repro.workload.vocabulary.reserved_pool`), the planted
statistics are exact — the properties the paper's experiments sweep
(``s_1``, ``N_1/N``, fanouts) can be dialed in directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.errors import WorkloadError
from repro.textsys.documents import Document, DocumentStore
from repro.workload.vocabulary import BACKGROUND_WORDS, zipf_text

__all__ = [
    "PlantReport",
    "SyntheticCorpus",
    "DEFAULT_FIELDS",
    "expanded_vocabulary",
    "iter_synthetic_documents",
]


def expanded_vocabulary(size: int) -> List[str]:
    """The background vocabulary grown to ``size`` distinct words.

    Stems repeat with numeric suffixes past the base word list, exactly
    as :class:`SyntheticCorpus` expands it — streamed generation and
    stored corpora draw from the same word universe.
    """
    words = list(BACKGROUND_WORDS)
    index = 0
    while len(words) < size:
        stem = BACKGROUND_WORDS[index % len(BACKGROUND_WORDS)]
        words.append(f"{stem}{index // len(BACKGROUND_WORDS)}bg")
        index += 1
    return words[:size]


def iter_synthetic_documents(
    count: int,
    seed: int = 0,
    *,
    fields: Sequence[str] = ("title", "abstract"),
    vocabulary_size: int = 1500,
    title_words: Tuple[int, int] = (4, 9),
    abstract_words: Tuple[int, int] = (12, 28),
) -> Iterator[Document]:
    """Stream ``count`` synthetic documents without materializing any.

    The million-document workloads feed this generator straight into the
    disk index builder: peak memory stays at one document, whatever
    ``count`` is.  Text statistics match :class:`SyntheticCorpus`'s
    background (Zipf-distributed words over the same expanded
    vocabulary); fields other than ``title``/``abstract`` get a short
    Zipf text so custom schemas still index something.
    """
    if count < 0:
        raise WorkloadError("count must be non-negative")
    if not fields:
        raise WorkloadError("at least one field is required")
    rng = random.Random(seed)
    vocabulary = expanded_vocabulary(vocabulary_size)
    for number in range(count):
        doc_fields: Dict[str, str] = {}
        for name in fields:
            if name == "title":
                k = rng.randint(*title_words)
            elif name == "abstract":
                k = rng.randint(*abstract_words)
            else:
                k = rng.randint(2, 6)
            doc_fields[name] = zipf_text(rng, vocabulary, k)
        yield Document(f"doc-{number:08d}", doc_fields)

DEFAULT_FIELDS: Tuple[str, ...] = (
    "title",
    "author",
    "abstract",
    "year",
    "institution",
)

_MONTHS = (
    "january", "february", "march", "april", "may", "june",
    "july", "august", "september", "october", "november", "december",
)

_INSTITUTIONS = (
    "stanford", "berkeley", "cmu", "mit", "wisconsin", "cornell",
    "princeton", "washington", "maryland", "toronto",
)


@dataclass(frozen=True)
class PlantReport:
    """What a :meth:`plant_pool` call actually placed in the corpus."""

    field: str
    pool_size: int
    matched_values: Tuple[str, ...]
    documents_per_value: Dict[str, Tuple[int, ...]] = field(hash=False, default_factory=dict)

    @property
    def selectivity(self) -> float:
        """Exact planted selectivity ``s`` of the pool."""
        if self.pool_size == 0:
            return 0.0
        return len(self.matched_values) / self.pool_size

    @property
    def fanout(self) -> float:
        """Exact planted (unconditional) fanout ``f`` of the pool."""
        if self.pool_size == 0:
            return 0.0
        total = sum(len(docs) for docs in self.documents_per_value.values())
        return total / self.pool_size

    def matched_documents(self) -> Set[int]:
        """All document indexes touched by this planting."""
        out: Set[int] = set()
        for docs in self.documents_per_value.values():
            out.update(docs)
        return out


class SyntheticCorpus:
    """A mutable synthetic document collection; freeze with :meth:`build_store`."""

    def __init__(
        self,
        document_count: int,
        seed: int = 0,
        fields: Sequence[str] = DEFAULT_FIELDS,
        vocabulary_size: int = 1500,
    ) -> None:
        if document_count < 1:
            raise WorkloadError("document_count must be positive")
        self.document_count = document_count
        self.fields = tuple(fields)
        self.rng = random.Random(seed)
        self._vocabulary = self._expand_vocabulary(vocabulary_size)
        # field -> per-document list of text chunks (joined at build time)
        self._chunks: Dict[str, List[List[str]]] = {
            name: [[] for _ in range(document_count)] for name in self.fields
        }
        self._generate_background()

    # ------------------------------------------------------------------
    # background text
    # ------------------------------------------------------------------
    def _expand_vocabulary(self, size: int) -> List[str]:
        return expanded_vocabulary(size)

    def _generate_background(self) -> None:
        rng = self.rng
        for doc in range(self.document_count):
            if "title" in self._chunks:
                self._chunks["title"][doc].append(
                    zipf_text(rng, self._vocabulary, rng.randint(4, 9))
                )
            if "abstract" in self._chunks:
                self._chunks["abstract"][doc].append(
                    zipf_text(rng, self._vocabulary, rng.randint(15, 40))
                )
            if "year" in self._chunks:
                month = _MONTHS[rng.randrange(12)]
                year = rng.randint(1988, 1995)
                self._chunks["year"][doc].append(f"{month} {year}")
            if "institution" in self._chunks:
                self._chunks["institution"][doc].append(
                    _INSTITUTIONS[rng.randrange(len(_INSTITUTIONS))]
                )
            # The author field stays empty in the background: authors are
            # reserved-pool values planted explicitly, so author-side
            # statistics are exact.

    # ------------------------------------------------------------------
    # planting
    # ------------------------------------------------------------------
    def _check_field(self, name: str) -> None:
        if name not in self._chunks:
            raise WorkloadError(f"unknown corpus field {name!r}")

    def plant_value(self, value: str, field_name: str, documents: Iterable[int]) -> None:
        """Append ``value`` to ``field_name`` of the given documents."""
        self._check_field(field_name)
        for doc in documents:
            if not 0 <= doc < self.document_count:
                raise WorkloadError(f"document index {doc} out of range")
            self._chunks[field_name][doc].append(value)

    def plant_pool(
        self,
        values: Sequence[str],
        field_name: str,
        selectivity: float,
        conditional_fanout: float,
        within: Optional[Sequence[int]] = None,
        matched_values: Optional[Sequence[str]] = None,
    ) -> PlantReport:
        """Plant a value pool with exact selectivity and fanout.

        ``round(selectivity * len(values))`` values (or exactly
        ``matched_values`` when given) each get planted into
        ``round(conditional_fanout)`` documents — drawn from ``within``
        when given (to force correlation with an earlier planting, e.g.
        putting student authors inside the 'belief update' documents),
        otherwise from the whole corpus.
        """
        self._check_field(field_name)
        if not 0.0 <= selectivity <= 1.0:
            raise WorkloadError("selectivity must be in [0, 1]")
        if conditional_fanout < 0:
            raise WorkloadError("conditional_fanout must be non-negative")

        if matched_values is not None:
            matched = list(matched_values)
            unknown = set(matched) - set(values)
            if unknown:
                raise WorkloadError(f"matched values not in pool: {sorted(unknown)}")
        else:
            match_count = int(round(selectivity * len(values)))
            matched = self.rng.sample(list(values), match_count)

        universe = list(within) if within is not None else list(range(self.document_count))
        per_value = max(0, int(round(conditional_fanout)))
        if per_value > len(universe):
            raise WorkloadError(
                f"conditional fanout {per_value} exceeds the {len(universe)} "
                "candidate documents"
            )

        documents_per_value: Dict[str, Tuple[int, ...]] = {}
        for value in matched:
            chosen = tuple(sorted(self.rng.sample(universe, per_value)))
            documents_per_value[value] = chosen
            self.plant_value(value, field_name, chosen)
        return PlantReport(
            field=field_name,
            pool_size=len(values),
            matched_values=tuple(matched),
            documents_per_value=documents_per_value,
        )

    def plant_phrase(
        self,
        phrase: str,
        field_name: str,
        document_count: int,
        within: Optional[Sequence[int]] = None,
    ) -> Tuple[int, ...]:
        """Plant a phrase/word into exactly ``document_count`` documents.

        Returns the chosen document indexes (useful as a ``within``
        universe for correlated plantings).
        """
        self._check_field(field_name)
        universe = list(within) if within is not None else list(range(self.document_count))
        if document_count > len(universe):
            raise WorkloadError(
                f"cannot plant into {document_count} of {len(universe)} documents"
            )
        chosen = tuple(sorted(self.rng.sample(universe, document_count)))
        self.plant_value(phrase, field_name, chosen)
        return chosen

    def pad_authors(self, per_document: int = 2, pool_size: int = 400) -> None:
        """Fill the author field with background authors.

        Called after all plantings so planted author statistics stay
        exact; background authors come from their own reserved pool.
        """
        from repro.workload.vocabulary import reserved_pool

        pool = reserved_pool("pad", pool_size, self.rng)
        for doc in range(self.document_count):
            count = self.rng.randint(1, per_document)
            for _ in range(count):
                self._chunks["author"][doc].append(
                    pool[self.rng.randrange(len(pool))]
                )

    # ------------------------------------------------------------------
    # freezing
    # ------------------------------------------------------------------
    def build_store(
        self, short_fields: Optional[Sequence[str]] = None
    ) -> DocumentStore:
        """Freeze the corpus into a :class:`DocumentStore`.

        ``short_fields`` defaults to everything except the abstract —
        bibliographic systems return the catalogue fields in the short
        form and the full record (with abstract) on retrieval.
        """
        if short_fields is None:
            short_fields = tuple(f for f in self.fields if f != "abstract")
        store = DocumentStore(self.fields, short_fields=short_fields)
        for doc in range(self.document_count):
            fields = {
                name: " ".join(self._chunks[name][doc])
                for name in self.fields
                if self._chunks[name][doc]
            }
            store.add(Document(f"doc{doc:05d}", fields))
        return store
