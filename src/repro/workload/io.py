"""Persisting whole scenarios to disk.

:func:`save_scenario` writes a scenario's relational tables (CSV, one
file per table) and its document collection (JSON-lines) into a
directory, plus a small manifest; :func:`load_scenario_data` reads them
back into a fresh catalog and text server.  Useful for inspecting the
synthetic workloads with external tools and for pinning a generated
world across library versions.

Planted parameters and the canonical query definitions are code, not
data, so a reloaded scenario exposes the raw relations and corpus rather
than the Q1–Q5 helpers.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Tuple, Union

from repro.errors import WorkloadError
from repro.relational.catalog import Catalog
from repro.relational.csv_io import load_table_csv, save_table_csv
from repro.relational.schema import Column, Schema
from repro.relational.types import DataType
from repro.textsys.persistence import load_store, save_store
from repro.textsys.server import BooleanTextServer
from repro.workload.scenarios import Scenario

__all__ = ["save_scenario", "load_scenario_data"]

_MANIFEST = "scenario.json"
_CORPUS = "corpus.jsonl"


def save_scenario(scenario: Scenario, directory: Union[str, Path]) -> None:
    """Write tables, corpus and a manifest into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)

    tables = []
    for table in scenario.catalog:
        save_table_csv(table, directory / f"{table.name}.csv")
        tables.append(
            {
                "name": table.name,
                "columns": [
                    {"name": column.name, "type": column.data_type.value}
                    for column in table.bare_schema
                ],
            }
        )
    save_store(scenario.server.store, directory / _CORPUS)
    manifest = {
        "format": "repro-scenario-v1",
        "tables": tables,
        "term_limit": scenario.server.term_limit,
        "parameters": scenario.parameters,
    }
    (directory / _MANIFEST).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )


def load_scenario_data(
    directory: Union[str, Path],
) -> Tuple[Catalog, BooleanTextServer, Dict]:
    """Read back what :func:`save_scenario` wrote.

    Returns ``(catalog, server, parameters)``.
    """
    directory = Path(directory)
    manifest_path = directory / _MANIFEST
    if not manifest_path.exists():
        raise WorkloadError(f"{directory}: no scenario manifest found")
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format") != "repro-scenario-v1":
        raise WorkloadError(
            f"{directory}: unknown scenario format {manifest.get('format')!r}"
        )

    catalog = Catalog()
    for entry in manifest["tables"]:
        schema = Schema(
            Column(column["name"], DataType(column["type"]))
            for column in entry["columns"]
        )
        table = load_table_csv(
            entry["name"], schema, directory / f"{entry['name']}.csv"
        )
        catalog.register(table)
    store = load_store(directory / _CORPUS)
    server = BooleanTextServer(store, term_limit=manifest["term_limit"])
    return catalog, server, manifest.get("parameters", {})
