"""Per-backend registration and charge attribution (DESIGN invariant 15).

One optimizer, several external text sources: each backend has its own
calibrated cost constants (``c_i, c_p, c_s, c_l, c_a``) and therefore
its own :class:`~repro.gateway.costs.CostLedger`.  The
:class:`BackendRegistry` is where a deployment declares its sources:

    registry = BackendRegistry()
    registry.register("mercury", boolean_server)           # paper defaults
    registry.register("vsim", vector_server)               # vector defaults
    client = registry.client("vsim", tracer=tracer)        # charges vsim only

**Invariant 15 (per-backend charge attribution).**  Every foreign call
issued through ``registry.client(name)`` charges *that* backend's ledger
with *that* backend's constants, and no other's; the registry-wide
``total()`` is exactly the sum of the per-backend ledger totals.  The
attribution is independent of transport (in-process, remote, sharded)
and engine mode, because each ledger's counts are the integer work
measures DESIGN invariants 10–13 already pin bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional

from repro.errors import GatewayError
from repro.gateway.cache import GatewayCache
from repro.gateway.client import TextClient
from repro.gateway.costs import VECTOR_CONSTANTS, CostConstants, CostLedger
from repro.gateway.tracing import CallTracer

__all__ = ["BackendBinding", "BackendRegistry"]


@dataclass
class BackendBinding:
    """One registered external source: server + constants + its ledger."""

    name: str
    server: Any
    constants: CostConstants
    ledger: CostLedger

    @property
    def source_kind(self) -> str:
        """The backend's predicate semantics (``"boolean"``/``"vector"``)."""
        return getattr(self.server, "source_kind", "boolean")

    def __repr__(self) -> str:
        return (
            f"BackendBinding({self.name!r}, kind={self.source_kind}, "
            f"total={self.ledger.total:.3f}s)"
        )


class BackendRegistry:
    """Named external text sources with per-backend cost attribution."""

    def __init__(self) -> None:
        self._bindings: Dict[str, BackendBinding] = {}

    def register(
        self,
        name: str,
        server: Any,
        constants: Optional[CostConstants] = None,
    ) -> BackendBinding:
        """Declare one backend; its ledger prices with its constants.

        When ``constants`` is omitted, the backend's published
        ``source_kind`` picks the calibrated defaults: the paper's
        Boolean constants, or :data:`~repro.gateway.costs.
        VECTOR_CONSTANTS` for a ranking source.
        """
        if not name:
            raise GatewayError("a backend needs a non-empty name")
        if name in self._bindings:
            raise GatewayError(f"backend {name!r} is already registered")
        if constants is None:
            kind = getattr(server, "source_kind", "boolean")
            constants = VECTOR_CONSTANTS if kind == "vector" else CostConstants()
        binding = BackendBinding(
            name=name,
            server=server,
            constants=constants,
            ledger=CostLedger(constants=constants),
        )
        self._bindings[name] = binding
        return binding

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def binding(self, name: str) -> BackendBinding:
        try:
            return self._bindings[name]
        except KeyError:
            raise GatewayError(
                f"unknown backend {name!r}; registered: {sorted(self._bindings)}"
            ) from None

    def names(self) -> list:
        return list(self._bindings)

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def __iter__(self) -> Iterator[BackendBinding]:
        return iter(self._bindings.values())

    def __len__(self) -> int:
        return len(self._bindings)

    # ------------------------------------------------------------------
    # the attribution surface
    # ------------------------------------------------------------------
    def client(
        self,
        name: str,
        cache: Optional[GatewayCache] = None,
        tracer: Optional[CallTracer] = None,
    ) -> TextClient:
        """A metered client whose charges land on ``name``'s ledger only."""
        binding = self.binding(name)
        return TextClient(
            binding.server,
            cache=cache,
            tracer=tracer,
            ledger=binding.ledger,
        )

    def ledger(self, name: str) -> CostLedger:
        return self.binding(name).ledger

    def server(self, name: str) -> Any:
        return self.binding(name).server

    def total(self) -> float:
        """The registry-wide spend: the sum of per-backend totals."""
        return sum(binding.ledger.total for binding in self)

    def report(self) -> Dict[str, dict]:
        """Per-backend accounting reports, keyed by backend name."""
        return {
            binding.name: {
                "source_kind": binding.source_kind,
                **binding.ledger.report(),
            }
            for binding in self
        }

    def reset(self) -> None:
        for binding in self:
            binding.ledger.reset()

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{binding.name}={binding.ledger.total:.3f}s" for binding in self
        )
        return f"BackendRegistry({parts})"
