"""Published text-system statistics (the other Section 8 proposal).

"We observe that the text system can help the optimizer by making
available statistics such as distribution of fanout of the words in the
vocabulary.  Such information will eliminate the need for sending all
single-column probes to the text system."

:func:`published_predicate_statistics` computes a predicate's
``(s_i, f_i)`` from the server's published per-term document frequencies
— *zero* search invocations — for single-word join values; multi-word
(phrase) values use the frequency of their rarest word as an upper-bound
fanout, with the corresponding optimistic selectivity.
:func:`field_statistics` summarizes a whole field's vocabulary (size,
postings, fanout distribution), the catalogue a cooperating text system
would export.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import StatisticsError
from repro.gateway.statistics import PredicateStatistics
from repro.textsys.analysis import tokenize
from repro.textsys.server import BooleanTextServer

__all__ = ["FieldStatistics", "field_statistics", "published_predicate_statistics"]


@dataclass(frozen=True)
class FieldStatistics:
    """The published catalogue for one text field."""

    field: str
    vocabulary_size: int
    total_postings: int
    mean_document_frequency: float
    max_document_frequency: int
    #: document-frequency histogram: bucket upper bounds 1, 2, 4, 8, ...
    frequency_histogram: Tuple[Tuple[int, int], ...]


def field_statistics(server: BooleanTextServer, field: str) -> FieldStatistics:
    """Summarize a field's vocabulary from the index (no searches sent)."""
    index = server.index
    vocabulary = index.vocabulary(field)
    frequencies = [index.document_frequency(field, term) for term in vocabulary]
    total = sum(frequencies)
    buckets: Dict[int, int] = {}
    for frequency in frequencies:
        bucket = 1 << max(0, (frequency - 1)).bit_length()
        buckets[bucket] = buckets.get(bucket, 0) + 1
    return FieldStatistics(
        field=field,
        vocabulary_size=len(vocabulary),
        total_postings=total,
        mean_document_frequency=total / len(vocabulary) if vocabulary else 0.0,
        max_document_frequency=max(frequencies) if frequencies else 0,
        frequency_histogram=tuple(sorted(buckets.items())),
    )


def published_predicate_statistics(
    server: BooleanTextServer,
    column: str,
    field: str,
    values: Sequence[object],
) -> PredicateStatistics:
    """Estimate ``(s_i, f_i)`` from published frequencies — no probes.

    Single-word values are exact.  Phrase values cannot be resolved from
    per-word frequencies alone, so the rarest word's frequency serves as
    an upper bound (safely overestimating both statistics, which only
    makes the optimizer more conservative about probing).
    """
    distinct: List[str] = []
    seen = set()
    for value in values:
        if value is None or value in seen:
            continue
        seen.add(value)
        distinct.append(str(value))
    if not distinct:
        raise StatisticsError(f"column {column!r} has no non-NULL values")

    matched = 0
    total_frequency = 0
    for text in distinct:
        words = tokenize(text)
        if not words:
            continue
        frequency = min(
            server.document_frequency(field, word) for word in words
        )
        if frequency > 0:
            matched += 1
        total_frequency += frequency
    return PredicateStatistics(
        column=column,
        field=field,
        selectivity=matched / len(distinct),
        fanout=total_frequency / len(distinct),
        sample_size=len(distinct),
    )
