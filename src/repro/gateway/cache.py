"""Gateway-level result caching for repeated foreign calls.

The cost model (Section 4.1) prices every search at
``c_i + c_p * postings + c_s * |result|`` and every long-form retrieval
at ``c_l`` — and the execution methods repeat themselves constantly: TS
sends one search per distinct joining tuple, probing replays identical
short-form probes across candidate plans, and the bench/adaptive layers
re-run the same queries many times per run.  The gateway cache answers a
repeated call locally: a hit charges *nothing* into the ledger, and the
avoided cost is tracked separately as "simulated seconds saved".

Two caches cover the two foreign operations:

- :class:`SearchCache` — LRU over short-form result sets, keyed on the
  *canonical* search expression (``SearchNode.to_expression()``), so
  structurally equal searches built through different code paths share
  one entry;
- :class:`RetrieveCache` — LRU over long-form documents, keyed by docid.

**Invalidation.**  Serving stale documents would be a correctness bug,
so both caches validate against a monotone *data version*: the
:class:`~repro.textsys.documents.DocumentStore` stamps every mutation
into ``store.version`` and the server publishes it as ``data_version``.
:meth:`GatewayCache.validate` clears everything the moment the observed
version moves, so a stale cache can never serve wrong documents.

Caching is **opt-in**: a :class:`~repro.gateway.client.TextClient`
constructed without a cache behaves exactly as before (ledger totals
bit-identical), which keeps the paper-calibrated measurements honest.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Generic, Optional, TypeVar

from repro.errors import GatewayError
from repro.textsys.documents import Document
from repro.textsys.result import ResultSet

__all__ = [
    "CacheStats",
    "LruCache",
    "SearchCache",
    "RetrieveCache",
    "PendingFill",
    "GatewayCache",
    "DEFAULT_SEARCH_CAPACITY",
    "DEFAULT_RETRIEVE_CAPACITY",
]

#: Default entry capacities.  Search results are small (short forms);
#: long-form documents are the expensive objects, so that cache is
#: smaller by default.
DEFAULT_SEARCH_CAPACITY = 4096
DEFAULT_RETRIEVE_CAPACITY = 1024

V = TypeVar("V")


@dataclass
class CacheStats:
    """Observable cache behavior (reset with the cache)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class LruCache(Generic[V]):
    """A bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` evicts the oldest entry once the
    capacity is exceeded.  Lookup statistics accumulate in ``stats``.

    Safe to share across threads: the recency bookkeeping
    (``move_to_end`` on the backing :class:`OrderedDict`, eviction via
    ``popitem``) and the hit/miss counters mutate under one internal
    lock.  Unlocked, two concurrent ``get``/``put`` calls can interleave
    inside ``move_to_end``/``popitem`` and raise ``KeyError`` (entry
    evicted between the membership check and the move) or corrupt the
    statistics — the races the serving front-end's shared caches hit.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise GatewayError("cache capacity must be at least 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._lock = threading.Lock()
        self._entries: "OrderedDict[str, V]" = OrderedDict()

    def get(self, key: str) -> Optional[V]:
        with self._lock:
            try:
                value = self._entries[key]
            except KeyError:
                self.stats.misses += 1
                return None
            self._entries.move_to_end(key)
            self.stats.hits += 1
            return value

    def peek(self, key: str) -> Optional[V]:
        """Like :meth:`get` but without touching recency or statistics."""
        with self._lock:
            return self._entries.get(key)

    def put(self, key: str, value: V) -> None:
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
            self._entries[key] = value
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.stats.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._entries

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({len(self)}/{self.capacity} entries, "
            f"{self.stats.hits} hits / {self.stats.misses} misses)"
        )


class SearchCache(LruCache[ResultSet]):
    """Short-form result sets keyed on the canonical search expression."""

    def __init__(self, capacity: int = DEFAULT_SEARCH_CAPACITY) -> None:
        super().__init__(capacity)


class RetrieveCache(LruCache[Document]):
    """Long-form documents keyed by docid."""

    def __init__(self, capacity: int = DEFAULT_RETRIEVE_CAPACITY) -> None:
        super().__init__(capacity)


class PendingFill:
    """One in-flight cache fill: the leader's promise of a result.

    Created by the first client to miss an expression
    (:meth:`GatewayCache.claim_search_fill` returns ``None`` to that
    *leader*); every later client that misses the same expression while
    the fill is outstanding gets this handle back and waits on it
    instead of dispatching its own search.  The leader resolves it via
    :meth:`GatewayCache.publish_search_fill`; a ``None`` outcome (the
    leader failed, or the data version moved mid-fetch) tells waiters to
    fall back to their own dispatch.
    """

    __slots__ = ("_event", "result")

    def __init__(self, result: Optional[ResultSet] = None) -> None:
        self._event = threading.Event()
        self.result = result
        if result is not None:
            self._event.set()

    def resolve(self, result: Optional[ResultSet]) -> None:
        self.result = result
        self._event.set()

    def wait(self, timeout: Optional[float] = None) -> Optional[ResultSet]:
        """The fill's outcome; None when it failed (or timed out)."""
        if not self._event.wait(timeout):
            return None
        return self.result


class GatewayCache:
    """The client-facing pair of caches plus version-based invalidation.

    The cache remembers the last data version it served under; when
    :meth:`validate` observes a different version (the document store
    mutated, or the client was pointed at another server), both caches
    are dropped wholesale.  Versions are compared for *inequality*, not
    order, so swapping between two servers also invalidates.

    The version key may be any hashable value.  Bare integers work, but
    they are unsafe across backends: two different servers can publish
    the same numeric ``data_version``, so an A→B swap (or A→B→A with
    equal counts) would serve A's entries for B.  Clients therefore
    validate with the server's ``data_fingerprint`` — a
    ``(store uid, version)`` pair (or a tuple of per-shard pairs on a
    sharded service) — whenever the server publishes one.

    **Concurrency.**  Validation is a check-then-act on the observed
    version, so it runs under its own lock: of two threads observing
    the same version bump, exactly one flushes (and records the
    invalidation) — unlocked, both could flush, double-counting
    invalidations, or one could swap ``_seen_version`` forward while
    the other still races the flush.  Cache *fills* are version-stamped
    (:meth:`put_search` / :meth:`put_retrieve`): a result fetched under
    version ``v`` is dropped instead of inserted when the observed
    version has moved past ``v`` by fill time, so a slow fetch can
    never plant a stale entry behind a newer validation.
    """

    def __init__(
        self,
        search_capacity: int = DEFAULT_SEARCH_CAPACITY,
        retrieve_capacity: int = DEFAULT_RETRIEVE_CAPACITY,
    ) -> None:
        self.search = SearchCache(search_capacity)
        self.retrieve = RetrieveCache(retrieve_capacity)
        self._lock = threading.Lock()
        self._seen_version: Optional[Any] = None
        #: Cross-ticket in-flight fills: expression -> the pending fill
        #: every concurrent misser waits on instead of dispatching its
        #: own identical search.  Without this map two tenants missing
        #: the same expression at the same time BOTH dispatched (the
        #: old fill path only deduplicated within one ``search_batch``
        #: call).
        self._pending: Dict[str, PendingFill] = {}
        #: How many lookups were served by waiting on another ticket's
        #: in-flight fill rather than by a cache entry or own dispatch.
        self.coalesced = 0

    def validate(self, data_version: Any) -> bool:
        """Drop everything if the backing data moved; True when still valid.

        Atomic: the stale check, the flush of both caches, and the
        version swap form one step under the validator lock.
        """
        with self._lock:
            if self._seen_version == data_version:
                return True
            stale = self._seen_version is not None
            if stale:
                # Each cache records its own invalidation only when it
                # actually held entries to drop — an empty cache was not
                # invalidated in any observable sense.
                if len(self.search):
                    self.search.stats.invalidations += 1
                if len(self.retrieve):
                    self.retrieve.stats.invalidations += 1
                self.search.clear()
                self.retrieve.clear()
            self._seen_version = data_version
            return not stale

    def put_search(self, expression: str, result: Any, data_version: Any) -> bool:
        """Insert a search result fetched under ``data_version``.

        Returns False (and inserts nothing) when the observed version
        has moved since the fetch began — the result describes data
        that no longer exists, and caching it would serve stale answers
        under the *new* version.
        """
        with self._lock:
            if self._seen_version != data_version:
                return False
            self.search.put(expression, result)
            return True

    def put_retrieve(self, docid: str, document: Any, data_version: Any) -> bool:
        """Insert a long-form document fetched under ``data_version``
        (dropped when the observed version has moved — see
        :meth:`put_search`)."""
        with self._lock:
            if self._seen_version != data_version:
                return False
            self.retrieve.put(docid, document)
            return True

    def claim_search_fill(self, expression: str) -> Optional[PendingFill]:
        """Claim leadership of the fill for ``expression``, or join it.

        Returns ``None`` when the caller becomes the fill leader — it
        MUST later call :meth:`publish_search_fill` (with ``None`` on
        failure), or waiters stall until their timeout.  Returns the
        outstanding :class:`PendingFill` when another ticket is already
        fetching; returns an already-resolved fill when the entry
        landed in the cache between the caller's miss and this claim.
        """
        with self._lock:
            cached = self.search.peek(expression)
            if cached is not None:
                return PendingFill(cached)
            pending = self._pending.get(expression)
            if pending is None:
                self._pending[expression] = PendingFill()
                return None
            self.coalesced += 1
            return pending

    def publish_search_fill(
        self, expression: str, result: Optional[ResultSet], data_version: Any
    ) -> None:
        """Resolve the pending fill for ``expression`` (leader only).

        A ``None`` result, or a data version that moved since the fetch
        began, resolves the fill as *failed*: waiters dispatch their own
        searches instead of consuming a stale or missing answer.
        """
        with self._lock:
            pending = self._pending.pop(expression, None)
            if pending is None:
                return
            if result is not None and self._seen_version != data_version:
                result = None
        pending.resolve(result)

    def clear(self) -> None:
        """Drop all entries and forget the observed version (stats kept)."""
        with self._lock:
            self.search.clear()
            self.retrieve.clear()
            self._seen_version = None

    @property
    def hits(self) -> int:
        return self.search.stats.hits + self.retrieve.stats.hits

    @property
    def misses(self) -> int:
        return self.search.stats.misses + self.retrieve.stats.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Any]:
        """JSON-friendly statistics for reports and the bench harness."""
        return {
            "search": self.search.stats.as_dict(),
            "retrieve": self.retrieve.stats.as_dict(),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "coalesced": self.coalesced,
            "entries": len(self.search) + len(self.retrieve),
        }

    def __repr__(self) -> str:
        return (
            f"GatewayCache(search={len(self.search)}, "
            f"retrieve={len(self.retrieve)}, hit_rate={self.hit_rate:.0%})"
        )
