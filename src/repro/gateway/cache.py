"""Gateway-level result caching for repeated foreign calls.

The cost model (Section 4.1) prices every search at
``c_i + c_p * postings + c_s * |result|`` and every long-form retrieval
at ``c_l`` — and the execution methods repeat themselves constantly: TS
sends one search per distinct joining tuple, probing replays identical
short-form probes across candidate plans, and the bench/adaptive layers
re-run the same queries many times per run.  The gateway cache answers a
repeated call locally: a hit charges *nothing* into the ledger, and the
avoided cost is tracked separately as "simulated seconds saved".

Two caches cover the two foreign operations:

- :class:`SearchCache` — LRU over short-form result sets, keyed on the
  *canonical* search expression (``SearchNode.to_expression()``), so
  structurally equal searches built through different code paths share
  one entry;
- :class:`RetrieveCache` — LRU over long-form documents, keyed by docid.

**Invalidation.**  Serving stale documents would be a correctness bug,
so both caches validate against a monotone *data version*: the
:class:`~repro.textsys.documents.DocumentStore` stamps every mutation
into ``store.version`` and the server publishes it as ``data_version``.
:meth:`GatewayCache.validate` clears everything the moment the observed
version moves, so a stale cache can never serve wrong documents.

Caching is **opt-in**: a :class:`~repro.gateway.client.TextClient`
constructed without a cache behaves exactly as before (ledger totals
bit-identical), which keeps the paper-calibrated measurements honest.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Dict, Generic, Optional, TypeVar

from repro.errors import GatewayError
from repro.textsys.documents import Document
from repro.textsys.result import ResultSet

__all__ = [
    "CacheStats",
    "LruCache",
    "SearchCache",
    "RetrieveCache",
    "GatewayCache",
    "DEFAULT_SEARCH_CAPACITY",
    "DEFAULT_RETRIEVE_CAPACITY",
]

#: Default entry capacities.  Search results are small (short forms);
#: long-form documents are the expensive objects, so that cache is
#: smaller by default.
DEFAULT_SEARCH_CAPACITY = 4096
DEFAULT_RETRIEVE_CAPACITY = 1024

V = TypeVar("V")


@dataclass
class CacheStats:
    """Observable cache behavior (reset with the cache)."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def as_dict(self) -> Dict[str, Any]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": self.hit_rate,
        }


class LruCache(Generic[V]):
    """A bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` evicts the oldest entry once the
    capacity is exceeded.  Lookup statistics accumulate in ``stats``.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise GatewayError("cache capacity must be at least 1")
        self.capacity = capacity
        self.stats = CacheStats()
        self._entries: "OrderedDict[str, V]" = OrderedDict()

    def get(self, key: str) -> Optional[V]:
        try:
            value = self._entries[key]
        except KeyError:
            self.stats.misses += 1
            return None
        self._entries.move_to_end(key)
        self.stats.hits += 1
        return value

    def peek(self, key: str) -> Optional[V]:
        """Like :meth:`get` but without touching recency or statistics."""
        return self._entries.get(key)

    def put(self, key: str, value: V) -> None:
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = value
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({len(self)}/{self.capacity} entries, "
            f"{self.stats.hits} hits / {self.stats.misses} misses)"
        )


class SearchCache(LruCache[ResultSet]):
    """Short-form result sets keyed on the canonical search expression."""

    def __init__(self, capacity: int = DEFAULT_SEARCH_CAPACITY) -> None:
        super().__init__(capacity)


class RetrieveCache(LruCache[Document]):
    """Long-form documents keyed by docid."""

    def __init__(self, capacity: int = DEFAULT_RETRIEVE_CAPACITY) -> None:
        super().__init__(capacity)


class GatewayCache:
    """The client-facing pair of caches plus version-based invalidation.

    The cache remembers the last data version it served under; when
    :meth:`validate` observes a different version (the document store
    mutated, or the client was pointed at another server), both caches
    are dropped wholesale.  Versions are compared for *inequality*, not
    order, so swapping between two servers also invalidates.

    The version key may be any hashable value.  Bare integers work, but
    they are unsafe across backends: two different servers can publish
    the same numeric ``data_version``, so an A→B swap (or A→B→A with
    equal counts) would serve A's entries for B.  Clients therefore
    validate with the server's ``data_fingerprint`` — a
    ``(store uid, version)`` pair (or a tuple of per-shard pairs on a
    sharded service) — whenever the server publishes one.
    """

    def __init__(
        self,
        search_capacity: int = DEFAULT_SEARCH_CAPACITY,
        retrieve_capacity: int = DEFAULT_RETRIEVE_CAPACITY,
    ) -> None:
        self.search = SearchCache(search_capacity)
        self.retrieve = RetrieveCache(retrieve_capacity)
        self._seen_version: Optional[Any] = None

    def validate(self, data_version: Any) -> bool:
        """Drop everything if the backing data moved; True when still valid."""
        if self._seen_version == data_version:
            return True
        stale = self._seen_version is not None
        if stale:
            # Each cache records its own invalidation only when it
            # actually held entries to drop — an empty cache was not
            # invalidated in any observable sense.
            if len(self.search):
                self.search.stats.invalidations += 1
            if len(self.retrieve):
                self.retrieve.stats.invalidations += 1
            self.search.clear()
            self.retrieve.clear()
        self._seen_version = data_version
        return not stale

    def clear(self) -> None:
        """Drop all entries and forget the observed version (stats kept)."""
        self.search.clear()
        self.retrieve.clear()
        self._seen_version = None

    @property
    def hits(self) -> int:
        return self.search.stats.hits + self.retrieve.stats.hits

    @property
    def misses(self) -> int:
        return self.search.stats.misses + self.retrieve.stats.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.hits + self.misses
        return self.hits / lookups if lookups else 0.0

    def stats(self) -> Dict[str, Any]:
        """JSON-friendly statistics for reports and the bench harness."""
        return {
            "search": self.search.stats.as_dict(),
            "retrieve": self.retrieve.stats.as_dict(),
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
            "entries": len(self.search) + len(self.retrieve),
        }

    def __repr__(self) -> str:
        return (
            f"GatewayCache(search={len(self.search)}, "
            f"retrieve={len(self.retrieve)}, hit_rate={self.hit_rate:.0%})"
        )
