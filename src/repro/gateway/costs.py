"""Cost constants and the metered cost ledger (Section 4.1).

The cost of accessing the text system has three components — invocation,
processing, and transmission — plus the relational-side string matching
cost for RTP methods:

    cost of one search  =  c_i  +  c_p * (postings processed)
                                +  c_s * |result set|        (short form)
    cost of one retrieve =  c_l                               (long form)
    relational text processing = c_a per document matched against

The paper calibrated the integrated OpenODB ↔ Mercury system and obtained
``c_i = 3`` s, ``c_p = 1e-5`` s/posting, short form ``0.015`` s/document
and long form ``4`` s/document ("the long-form transmission cost is
orders of magnitude more expensive than the short-form cost as each
retrieval requires a separate connection").  Those calibrated values are
the defaults here, so simulated costs land in the same regime as the
paper's measurements.  ``c_a`` is only described as a proportionality
constant; we default it to 1 ms/document (SQL substring matching of a
short field is far cheaper than any remote operation).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import GatewayError

__all__ = ["CostConstants", "CostLedger", "PAPER_CONSTANTS", "VECTOR_CONSTANTS"]


@dataclass(frozen=True)
class CostConstants:
    """The five proportionality constants of Table 1 (seconds)."""

    invocation: float = 3.0  # c_i, per search sent to the text system
    per_posting: float = 0.00001  # c_p, per posting on retrieved inverted lists
    short_form: float = 0.015  # c_s, per document in a short-form result set
    long_form: float = 4.0  # c_l, per long-form document retrieved
    rtp_per_document: float = 0.001  # c_a, per document string-matched in SQL

    def __post_init__(self) -> None:
        for name in (
            "invocation",
            "per_posting",
            "short_form",
            "long_form",
            "rtp_per_document",
        ):
            if getattr(self, name) < 0:
                raise GatewayError(f"cost constant {name} must be non-negative")

    def search_cost(self, postings_processed: int, result_size: int) -> float:
        """Cost of one search per the Section 4.1 formula."""
        return (
            self.invocation
            + self.per_posting * postings_processed
            + self.short_form * result_size
        )


#: The constants measured on the live OpenODB ↔ Mercury integration.
PAPER_CONSTANTS = CostConstants()

#: Default constants for the vector-space backend (Section 8 / ROADMAP
#: item 4).  Each external source carries its *own* ``c_i, c_p, c_s,
#: c_l`` — the paper calibrated one Boolean server; a ranking backend
#: pays more per posting (weighted accumulation instead of a sorted-list
#: merge) and per short-form document (each carries a score), while its
#: relational-side scoring constant is smaller than Boolean ``c_a``
#: (a dot product over a cached query vector beats SQL substring
#: matching).  The registry attributes charges per backend with these
#: (DESIGN invariant 15).
VECTOR_CONSTANTS = CostConstants(
    invocation=3.0,
    per_posting=0.00002,
    short_form=0.02,
    long_form=4.0,
    rtp_per_document=0.0005,
)


@dataclass
class CostLedger:
    """Accumulates metered work and prices it with :class:`CostConstants`.

    The ledger separates *counts* (observable work) from *cost* (counts
    priced by the constants), so tests can verify the accounting
    invariant exactly: ``total == c_i*searches + c_p*postings +
    c_s*short + c_l*long + c_a*rtp``.

    ``seconds_saved``, ``seconds_shared`` and ``seconds_retried`` are
    side channels, NOT part of ``total``: the first accumulates the
    simulated cost that gateway-cache hits avoided (a hit charges
    nothing into the counts above); the second accumulates the simulated
    backend work a tenant's searches avoided by *joining* another
    in-flight identical search under the serving layer's cross-query
    sharing executor (the tenant is still charged in full, as if it ran
    alone — DESIGN invariant 16); the third accumulates simulated
    seconds *wasted* by the remote transport on failed attempts and
    backoff pauses (see :mod:`repro.remote.transport`).  Keeping all
    three out of ``total`` preserves the Section 4.1 identity exactly
    while still making the cache, the sharing layer, and retry overhead
    observable next to the ``c_i``-dominated link costs.

    The ledger is safe to share across threads: pooled transports and
    the concurrent serving front-end charge one ledger from many worker
    threads, and every mutation (and every multi-field read —
    ``snapshot``, ``diff``, ``total``) holds an internal re-entrant
    lock.  Counts are integers, so a locked ledger accumulates the same
    values in any interleaving and ``total`` stays bit-identical to a
    serial run of the same charges.
    """

    constants: CostConstants = field(default_factory=CostConstants)
    searches: int = 0
    postings_processed: int = 0
    short_documents: int = 0
    long_documents: int = 0
    rtp_documents: int = 0
    seconds_saved: float = 0.0
    seconds_shared: float = 0.0
    seconds_retried: float = 0.0
    # Re-entrant so subclasses (the serving layer's budgeted ledger) can
    # enforce limits atomically around a charge.
    _lock: threading.RLock = field(
        default_factory=threading.RLock, init=False, repr=False, compare=False
    )

    def charge_search(self, postings_processed: int, result_size: int) -> float:
        """Record one search invocation; returns its cost."""
        with self._lock:
            self.searches += 1
            self.postings_processed += postings_processed
            self.short_documents += result_size
        return self.constants.search_cost(postings_processed, result_size)

    def charge_retrieve(self) -> float:
        """Record one long-form retrieval; returns its cost."""
        with self._lock:
            self.long_documents += 1
        return self.constants.long_form

    def charge_rtp(self, document_count: int) -> float:
        """Record relational text processing over ``document_count`` docs."""
        if document_count < 0:
            raise GatewayError("document count must be non-negative")
        with self._lock:
            self.rtp_documents += document_count
        return self.constants.rtp_per_document * document_count

    def credit_saved(self, seconds: float) -> float:
        """Record simulated seconds a cache hit avoided (not in ``total``)."""
        if seconds < 0:
            raise GatewayError("saved seconds must be non-negative")
        with self._lock:
            self.seconds_saved += seconds
        return seconds

    def credit_shared(self, seconds: float) -> float:
        """Record simulated seconds a shared execution avoided.

        A side channel like ``seconds_saved``: the tenant's ``total``
        already carries the full alone-cost of the search (DESIGN
        invariant 16); this records the backend work that did *not*
        happen because the search joined an identical in-flight one.
        """
        if seconds < 0:
            raise GatewayError("shared seconds must be non-negative")
        with self._lock:
            self.seconds_shared += seconds
        return seconds

    def charge_retry_waste(self, seconds: float) -> float:
        """Record simulated seconds wasted on failed remote attempts.

        A side channel like ``seconds_saved``: visible in reports but
        never part of ``total``, which prices only *answered* work.
        """
        if seconds < 0:
            raise GatewayError("retried seconds must be non-negative")
        with self._lock:
            self.seconds_retried += seconds
        return seconds

    @property
    def total(self) -> float:
        """Total simulated cost in seconds."""
        constants = self.constants
        with self._lock:
            return (
                constants.invocation * self.searches
                + constants.per_posting * self.postings_processed
                + constants.short_form * self.short_documents
                + constants.long_form * self.long_documents
                + constants.rtp_per_document * self.rtp_documents
            )

    def reset(self) -> None:
        with self._lock:
            self.searches = 0
            self.postings_processed = 0
            self.short_documents = 0
            self.long_documents = 0
            self.rtp_documents = 0
            self.seconds_saved = 0.0
            self.seconds_shared = 0.0
            self.seconds_retried = 0.0

    def snapshot(self) -> "CostLedger":
        """An independent copy of the current state."""
        with self._lock:
            return CostLedger(
                constants=self.constants,
                searches=self.searches,
                postings_processed=self.postings_processed,
                short_documents=self.short_documents,
                long_documents=self.long_documents,
                rtp_documents=self.rtp_documents,
                seconds_saved=self.seconds_saved,
                seconds_shared=self.seconds_shared,
                seconds_retried=self.seconds_retried,
            )

    def diff(self, earlier: "CostLedger") -> "CostLedger":
        """The work done since ``earlier`` (a snapshot of this ledger)."""
        with self._lock:
            return CostLedger(
                constants=self.constants,
                searches=self.searches - earlier.searches,
                postings_processed=self.postings_processed
                - earlier.postings_processed,
                short_documents=self.short_documents - earlier.short_documents,
                long_documents=self.long_documents - earlier.long_documents,
                rtp_documents=self.rtp_documents - earlier.rtp_documents,
                seconds_saved=self.seconds_saved - earlier.seconds_saved,
                seconds_shared=self.seconds_shared - earlier.seconds_shared,
                seconds_retried=self.seconds_retried - earlier.seconds_retried,
            )

    def report(self) -> dict:
        """JSON-friendly accounting report (counts, total, seconds saved)."""
        state = self.snapshot()
        return {
            "searches": state.searches,
            "postings_processed": state.postings_processed,
            "short_documents": state.short_documents,
            "long_documents": state.long_documents,
            "rtp_documents": state.rtp_documents,
            "total": state.total,
            "seconds_saved": state.seconds_saved,
            "seconds_shared": state.seconds_shared,
            "seconds_retried": state.seconds_retried,
        }

    def __repr__(self) -> str:
        return (
            f"CostLedger(total={self.total:.3f}s, searches={self.searches}, "
            f"postings={self.postings_processed}, short={self.short_documents}, "
            f"long={self.long_documents}, rtp={self.rtp_documents}, "
            f"saved={self.seconds_saved:.3f}s)"
        )
