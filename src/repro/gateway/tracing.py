"""Foreign-call tracing: every gateway operation becomes a span.

The paper's central claim is that foreign text-system calls dominate
query cost, so the gateway records *every* search, probe, batch and
long-form retrieval as a :class:`CallSpan` — what was sent, during which
execution phase (scan / probe / TS / SJ-batch / RTP), what it cost, and
whether the gateway cache answered it without touching the text system.

:class:`CallTracer` replaces the old ad-hoc ``call_log`` list on the
client.  Phases are pushed with :meth:`CallTracer.phase` (a context
manager) by the executor and the join methods; spans inherit the
innermost active phase.  The tracer stays allocated even when disabled
so call sites never need to branch — a disabled tracer simply drops
spans.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = ["CallSpan", "CallTracer", "format_trace"]

#: Span kinds, in the order the gateway can emit them.  The last two are
#: transport happenings (no foreign result): a retry/give-up on the
#: remote link and a circuit-breaker state transition.
SPAN_KINDS = ("search", "probe", "batch", "retrieve", "retry", "breaker")

#: The phase label spans get outside any declared phase.
UNPHASED = "-"


@dataclass(frozen=True)
class CallSpan:
    """One traced foreign call (or cache hit standing in for one)."""

    index: int
    kind: str  # "search" | "probe" | "batch" | "retrieve"
    phase: str  # "scan" | "probe" | "TS" | "SJ-batch" | "RTP" | ...
    expression: str
    result_size: int
    postings_processed: int
    cost: float  # simulated seconds actually charged
    saved: float  # simulated seconds a cache hit avoided
    cache_hit: bool

    def __repr__(self) -> str:
        hit = " HIT" if self.cache_hit else ""
        return (
            f"CallSpan(#{self.index} {self.kind}/{self.phase}{hit} "
            f"{self.expression!r} -> {self.result_size} docs, "
            f"cost={self.cost:.3f}s)"
        )


class CallTracer:
    """Records foreign-call spans with phase attribution.

    A tracer is cheap when disabled: :meth:`record` returns immediately
    and :meth:`phase` still maintains the label stack (so enabling a
    shared tracer mid-run attributes later spans correctly).

    Safe to share across threads: span emission (the index assignment
    plus the append) is atomic under an internal lock, and the phase
    stack is **per thread** — each serving worker's phases label only
    the spans that worker records, instead of bleeding into concurrent
    tenants' calls.  Single-threaded behaviour is unchanged.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: List[CallSpan] = []
        self._lock = threading.Lock()
        self._phases = threading.local()

    @property
    def _phase_stack(self) -> List[str]:
        stack = getattr(self._phases, "stack", None)
        if stack is None:
            stack = self._phases.stack = []
        return stack

    # ------------------------------------------------------------------
    # phase attribution
    # ------------------------------------------------------------------
    @property
    def current_phase(self) -> str:
        stack = self._phase_stack
        return stack[-1] if stack else UNPHASED

    @contextmanager
    def phase(self, label: str) -> Iterator[None]:
        """Attribute spans recorded inside the block to ``label``."""
        self._phase_stack.append(label)
        try:
            yield
        finally:
            self._phase_stack.pop()

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        expression: str,
        result_size: int,
        postings_processed: int,
        cost: float,
        saved: float = 0.0,
        cache_hit: bool = False,
    ) -> Optional[CallSpan]:
        """Append one span (no-op while disabled)."""
        if not self.enabled:
            return None
        with self._lock:
            # Index and append under one lock: racing emitters would
            # otherwise mint duplicate span indexes.
            span = CallSpan(
                index=len(self.spans),
                kind=kind,
                phase=self.current_phase,
                expression=expression,
                result_size=result_size,
                postings_processed=postings_processed,
                cost=cost,
                saved=saved,
                cache_hit=cache_hit,
            )
            self.spans.append(span)
        return span

    def clear(self) -> None:
        with self._lock:
            self.spans.clear()

    def __len__(self) -> int:
        return len(self.spans)

    # ------------------------------------------------------------------
    # aggregation
    # ------------------------------------------------------------------
    def hit_rate(self) -> float:
        """Fraction of spans answered by the cache (0.0 when no spans)."""
        spans = list(self.spans)  # stable view while emitters keep appending
        if not spans:
            return 0.0
        return sum(1 for span in spans if span.cache_hit) / len(spans)

    def by_phase(self) -> Dict[str, Dict[str, Any]]:
        """Per-phase aggregate: calls, hits, cost, saved."""
        phases: Dict[str, Dict[str, Any]] = {}
        for span in list(self.spans):
            entry = phases.setdefault(
                span.phase,
                {"calls": 0, "hits": 0, "cost": 0.0, "saved": 0.0},
            )
            entry["calls"] += 1
            entry["hits"] += 1 if span.cache_hit else 0
            entry["cost"] += span.cost
            entry["saved"] += span.saved
        return phases

    def summary(self) -> Dict[str, Any]:
        """One JSON-friendly dict describing the whole trace."""
        kinds = {kind: 0 for kind in SPAN_KINDS}
        hits = 0
        cost = saved = 0.0
        spans = list(self.spans)  # stable view while emitters keep appending
        for span in spans:
            kinds[span.kind] = kinds.get(span.kind, 0) + 1
            hits += 1 if span.cache_hit else 0
            cost += span.cost
            saved += span.saved
        return {
            "spans": len(spans),
            "by_kind": kinds,
            "cache_hits": hits,
            "cache_misses": len(spans) - hits,
            "hit_rate": hits / len(spans) if spans else 0.0,
            "cost": cost,
            "seconds_saved": saved,
            "by_phase": self.by_phase(),
        }

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return f"CallTracer({len(self.spans)} spans, {state})"


def format_trace(
    tracer: CallTracer, limit: Optional[int] = 20
) -> str:
    """Human-readable rendering of a trace: summary plus recent spans."""
    summary = tracer.summary()
    lines = [
        (
            f"{summary['spans']} foreign calls "
            f"({summary['cache_hits']} cache hits, "
            f"hit rate {summary['hit_rate']:.0%}), "
            f"cost {summary['cost']:.3f}s, "
            f"saved {summary['seconds_saved']:.3f}s"
        )
    ]
    for phase, entry in sorted(summary["by_phase"].items()):
        lines.append(
            f"  [{phase}] {entry['calls']} calls, {entry['hits']} hits, "
            f"cost {entry['cost']:.3f}s, saved {entry['saved']:.3f}s"
        )
    spans: Sequence[CallSpan] = tracer.spans
    shown = spans if limit is None else spans[-limit:]
    if len(shown) < len(spans):
        lines.append(f"  ... ({len(spans) - len(shown)} earlier spans elided)")
    for span in shown:
        hit = "HIT " if span.cache_hit else "    "
        lines.append(
            f"  #{span.index:<4} {span.kind:<8} {span.phase:<9} {hit}"
            f"{span.cost:8.3f}s  {span.expression}"
        )
    return "\n".join(lines)
