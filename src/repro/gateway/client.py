"""The metered text-system client (the foreign-function gateway).

Every database-side access to the external text system goes through
:class:`TextClient`, which forwards the call to the
:class:`~repro.textsys.server.BooleanTextServer` and charges the
corresponding cost into a :class:`~repro.gateway.costs.CostLedger`.

This is the reproduction's substitute for the paper's live network link
between OpenODB and the CMU Mercury server: instead of paying real
seconds per connection, the ledger accumulates *simulated* seconds using
the constants the paper calibrated on that link.

Two optional layers ride on the gateway:

- a :class:`~repro.gateway.cache.GatewayCache`: repeated searches and
  long-form retrievals are answered locally.  A hit charges *nothing*
  into the ledger; the avoided cost accumulates in
  ``ledger.seconds_saved``.  Entries are dropped wholesale whenever the
  server's ``data_version`` moves, so staleness is impossible.  Without
  a cache (the default) the client's accounting is bit-identical to the
  uncached gateway.
- a :class:`~repro.gateway.tracing.CallTracer`: every search, probe,
  batch and retrieval becomes a span labelled with the current execution
  phase (scan/probe/TS/SJ-batch/RTP).  The legacy ``call_log`` is now a
  view over the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import GatewayError
from repro.gateway.cache import CacheStats, GatewayCache, PendingFill
from repro.gateway.costs import CostConstants, CostLedger
from repro.gateway.tracing import CallTracer
from repro.textsys.documents import Document
from repro.textsys.parser import parse_search
from repro.textsys.query import SearchNode
from repro.textsys.result import ResultSet
from repro.textsys.server import BooleanTextServer

__all__ = ["TextClient", "SearchCall"]

#: How long a coalesced search waits for another ticket's in-flight
#: cache fill before falling back to its own dispatch.  Generous — a
#: resolved fill sets the event immediately; the bound only guards
#: against a fill leader dying without publishing.
_FILL_WAIT_SECONDS = 600.0


@dataclass(frozen=True)
class SearchCall:
    """One logged search: the expression sent and what came back."""

    expression: str
    result_size: int
    postings_processed: int
    cost: float


class TextClient:
    """Search/retrieve access to the text server with cost accounting."""

    def __init__(
        self,
        server: BooleanTextServer,
        constants: Optional[CostConstants] = None,
        log_calls: bool = False,
        cache: Optional[GatewayCache] = None,
        tracer: Optional[CallTracer] = None,
        ledger: Optional[CostLedger] = None,
        cache_stats: Optional[CacheStats] = None,
    ) -> None:
        self.server = server
        #: An explicit ``ledger`` lets several clients charge one shared
        #: (thread-safe) ledger — the serving front-end accumulates every
        #: query a tenant runs into that tenant's budgeted ledger this
        #: way.  When given, it wins over ``constants``.
        self.ledger = (
            ledger
            if ledger is not None
            else CostLedger(constants=constants or CostConstants())
        )
        self.cache = cache
        #: An optional caller-owned sink for this client's cache
        #: outcomes.  The shared cache's own statistics aggregate over
        #: every client; the serving layer passes each tenant's
        #: :class:`CacheStats` here so hit rates attribute per tenant
        #: (safe unlocked: the admission queue runs one query per
        #: tenant at a time).
        self.cache_stats = cache_stats
        self.tracer = tracer if tracer is not None else CallTracer(enabled=log_calls)

    # ------------------------------------------------------------------
    # tracing support
    # ------------------------------------------------------------------
    def trace_phase(self, label: str):
        """Context manager: attribute foreign calls inside to ``label``."""
        return self.tracer.phase(label)

    @property
    def call_log(self) -> List[SearchCall]:
        """Legacy view: the search-shaped spans of the trace."""
        return [
            SearchCall(
                expression=span.expression,
                result_size=span.result_size,
                postings_processed=span.postings_processed,
                cost=span.cost,
            )
            for span in self.tracer.spans
            if span.kind in ("search", "probe", "batch")
        ]

    def _settle_transport(self) -> None:
        """Drain a remote transport's retry waste and events, if any.

        When the server is a :class:`~repro.remote.transport.
        RemoteTextTransport`, failed attempts' wire time and backoff
        pauses accumulate there; this moves them into the ledger's
        ``seconds_retried`` side channel and records each retry/breaker
        event as a traced span.  With an in-process server this is a
        single attribute lookup — accounting stays bit-identical.
        """
        drain = getattr(self.server, "drain_accounting", None)
        if drain is None:
            return
        wasted, events = drain()
        if wasted:
            self.ledger.charge_retry_waste(wasted)
        if self.tracer.enabled:
            for event in events:
                self.tracer.record(
                    event.kind,
                    event.detail,
                    result_size=0,
                    postings_processed=0,
                    cost=0.0,
                )

    def _note_cache(self, hit: bool) -> None:
        """Attribute one cache outcome to the caller's sink, if any."""
        if self.cache_stats is None:
            return
        if hit:
            self.cache_stats.hits += 1
        else:
            self.cache_stats.misses += 1

    def _wants_expression(self) -> bool:
        return self.cache is not None or self.tracer.enabled

    def _canonical(
        self, query: Union[SearchNode, str]
    ) -> Tuple[Union[SearchNode, str], Optional[str]]:
        """The cache/trace key: the canonical rendering of the search.

        Strings are parsed so that ``"TI='belief'"`` and the equivalent
        :class:`~repro.textsys.query.TermQuery` share one cache entry.
        Only computed when a cache or an enabled tracer needs it.
        """
        if not self._wants_expression():
            return query, None
        if isinstance(query, str):
            query = parse_search(query)
        return query, query.to_expression()

    def _data_version(self):
        """The cache-validation key for the current server.

        Prefers the server's ``data_fingerprint`` (a ``(store uid,
        version)`` pair that cannot collide across backends) and falls
        back to the bare ``data_version`` counter for servers that do
        not publish one.
        """
        fingerprint = getattr(self.server, "data_fingerprint", None)
        if fingerprint is not None:
            return fingerprint
        return getattr(self.server, "data_version", 0)

    # ------------------------------------------------------------------
    # the two foreign operations
    # ------------------------------------------------------------------
    def search(self, query: Union[SearchNode, str]) -> ResultSet:
        """Send one search; returns the short-form result set.

        Charges ``c_i + c_p * postings + c_s * |result|`` — unless the
        gateway cache already holds the canonical expression, in which
        case nothing is charged and the avoided cost is credited to
        ``ledger.seconds_saved``.
        """
        return self._metered_search(query, kind="search")

    def _serve_cached(
        self, kind: str, expression: Optional[str], cached: ResultSet
    ) -> ResultSet:
        """Account one search answered without a dispatch (hit/coalesce)."""
        saved = self.ledger.constants.search_cost(
            cached.postings_processed, len(cached)
        )
        self.ledger.credit_saved(saved)
        self._note_cache(hit=True)
        self.tracer.record(
            kind,
            expression,
            result_size=len(cached),
            postings_processed=cached.postings_processed,
            cost=0.0,
            saved=saved,
            cache_hit=True,
        )
        return cached

    def _metered_search(self, query: Union[SearchNode, str], kind: str) -> ResultSet:
        query, expression = self._canonical(query)
        version = None
        fill_leader = False
        if self.cache is not None:
            version = self._data_version()
            self.cache.validate(version)
            cached = self.cache.search.get(expression)
            if cached is not None:
                return self._serve_cached(kind, expression, cached)
            # Single-flight: if another ticket is already fetching this
            # expression, wait for its fill instead of dispatching a
            # duplicate search; otherwise claim fill leadership (and
            # publish the outcome below, success or not).
            pending = self.cache.claim_search_fill(expression)
            if pending is not None:
                coalesced = pending.wait(_FILL_WAIT_SECONDS)
                if coalesced is not None:
                    return self._serve_cached(kind, expression, coalesced)
                # The leader failed or the data moved: fall through to
                # our own dispatch (without claiming — the herd is at
                # most one failed fill wide).
            else:
                fill_leader = True
            self._note_cache(hit=False)
        result = None
        try:
            result = self.server.search(query)
        finally:
            self._settle_transport()
            if fill_leader:
                # Insert before publishing so a fresh misser finds the
                # entry rather than claiming a new fill; both steps are
                # version-stamped (dropped if the data moved mid-fetch).
                if result is not None:
                    self.cache.put_search(expression, result, version)
                self.cache.publish_search_fill(expression, result, version)
        cost = self.ledger.charge_search(result.postings_processed, len(result))
        if self.cache is not None and not fill_leader:
            self.cache.put_search(expression, result, version)
        if self.tracer.enabled:
            self.tracer.record(
                kind,
                expression,
                result_size=len(result),
                postings_processed=result.postings_processed,
                cost=cost,
            )
        return result

    def search_batch(self, queries) -> List[ResultSet]:
        """Send many searches in ONE invocation (Section 8's proposal).

        Requires the server to support ``search_batch`` (see
        :class:`repro.textsys.batching.BatchingTextServer`).  Charges a
        single ``c_i`` for the whole batch plus the usual processing and
        short-form transmission for every query's answer.  With a cache,
        only the missing queries travel; if every query hits, the whole
        invocation (including ``c_i``) is saved.
        """
        search_batch = getattr(self.server, "search_batch", None)
        if search_batch is None:
            raise GatewayError(
                "the text server does not support batched invocations; "
                "wrap it in BatchingTextServer"
            )
        queries = list(queries)
        if self.cache is None:
            try:
                results = search_batch(queries)
            finally:
                self._settle_transport()
            postings = sum(result.postings_processed for result in results)
            returned = sum(len(result) for result in results)
            cost = self.ledger.charge_search(postings, returned)
            self.tracer.record(
                "batch",
                f"<batch of {len(queries)}>",
                result_size=returned,
                postings_processed=postings,
                cost=cost,
            )
            return results

        version = self._data_version()
        self.cache.validate(version)
        canonical = [self._canonical(query) for query in queries]
        results: List[Optional[ResultSet]] = []
        misses: List[Tuple[int, Union[SearchNode, str], str]] = []
        for index, (query, expression) in enumerate(canonical):
            cached = self.cache.search.get(expression)
            results.append(cached)
            if cached is None:
                misses.append((index, query, expression))

        # A batch may repeat the same instantiated conjunct (SJ batches
        # routinely do); each distinct expression travels — and is
        # metered — once, and the answer fans back out to every
        # occurrence, mirroring retrieve_many's duplicate handling.
        miss_positions: Dict[str, List[int]] = {}
        distinct: List[Tuple[Union[SearchNode, str], str]] = []
        for index, query, expression in misses:
            positions = miss_positions.get(expression)
            if positions is None:
                miss_positions[expression] = [index]
                distinct.append((query, expression))
            else:
                positions.append(index)

        # Cross-ticket single-flight: claim fill leadership per distinct
        # miss.  Claimed expressions travel in our batch; the rest are
        # already being fetched by another ticket, so we wait on their
        # fills instead of dispatching duplicates.
        dispatched: List[Tuple[Union[SearchNode, str], str]] = []
        waiting: List[Tuple[Union[SearchNode, str], str, PendingFill]] = []
        for query, expression in distinct:
            pending = self.cache.claim_search_fill(expression)
            if pending is None:
                dispatched.append((query, expression))
            else:
                waiting.append((query, expression, pending))

        def fan_out(expression: str, result: ResultSet) -> None:
            for index in miss_positions[expression]:
                results[index] = result

        constants = self.ledger.constants
        cost = 0.0
        invocations = 0
        if dispatched:
            fetched = None
            try:
                fetched = search_batch([query for query, _ in dispatched])
            finally:
                self._settle_transport()
                for position, (_, expression) in enumerate(dispatched):
                    result = (
                        fetched[position] if fetched is not None else None
                    )
                    if result is not None:
                        self.cache.put_search(expression, result, version)
                    self.cache.publish_search_fill(expression, result, version)
            cost += self.ledger.charge_search(
                sum(result.postings_processed for result in fetched),
                sum(len(result) for result in fetched),
            )
            invocations += 1
            for (_, expression), result in zip(dispatched, fetched):
                fan_out(expression, result)

        coalesced_expressions = set()
        retries: List[Tuple[Union[SearchNode, str], str]] = []
        for query, expression, pending in waiting:
            result = pending.wait(_FILL_WAIT_SECONDS)
            if result is None:
                # The other ticket's fill failed; fetch it ourselves in
                # a second (charged) invocation below.
                retries.append((query, expression))
            else:
                coalesced_expressions.add(expression)
                fan_out(expression, result)
        if retries:
            try:
                fetched = search_batch([query for query, _ in retries])
            finally:
                self._settle_transport()
            cost += self.ledger.charge_search(
                sum(result.postings_processed for result in fetched),
                sum(len(result) for result in fetched),
            )
            invocations += 1
            for (_, expression), result in zip(retries, fetched):
                self.cache.put_search(expression, result, version)
                fan_out(expression, result)

        # What the batch would have cost without the cache, minus what
        # was actually paid: the processing/transmission shares of every
        # occurrence answered locally (cache hits) or by another
        # ticket's fill (coalesced), plus the invocation itself when
        # nothing travelled at all.
        miss_indexes = {index for index, _, _ in misses}
        saved = 0.0
        for index, result in enumerate(results):
            if index not in miss_indexes:
                self._note_cache(hit=True)
            else:
                expression = canonical[index][1]
                if expression not in coalesced_expressions:
                    self._note_cache(hit=False)
                    continue
                self._note_cache(hit=True)
            saved += (
                constants.per_posting * result.postings_processed
                + constants.short_form * len(result)
            )
        if invocations == 0:
            saved += constants.invocation
        if saved:
            self.ledger.credit_saved(saved)

        postings = sum(result.postings_processed for result in results)
        returned = sum(len(result) for result in results)
        self.tracer.record(
            "batch",
            f"<batch of {len(queries)}>",
            result_size=returned,
            postings_processed=postings,
            cost=cost,
            saved=saved,
            cache_hit=invocations == 0,
        )
        return results

    def retrieve(self, docid: str) -> Document:
        """Fetch one long-form document; charges ``c_l`` (0 on a cache hit)."""
        version = None
        if self.cache is not None:
            version = self._data_version()
            self.cache.validate(version)
            cached = self.cache.retrieve.get(docid)
            if cached is not None:
                saved = self.ledger.constants.long_form
                self.ledger.credit_saved(saved)
                self._note_cache(hit=True)
                self.tracer.record(
                    "retrieve",
                    docid,
                    result_size=1,
                    postings_processed=0,
                    cost=0.0,
                    saved=saved,
                    cache_hit=True,
                )
                return cached
            self._note_cache(hit=False)
        try:
            document = self.server.retrieve(docid)
        finally:
            self._settle_transport()
        cost = self.ledger.charge_retrieve()
        if self.cache is not None:
            self.cache.put_retrieve(docid, document, version)
        if self.tracer.enabled:
            self.tracer.record(
                "retrieve", docid, result_size=1, postings_processed=0, cost=cost
            )
        return document

    def retrieve_many(self, docids: Iterable[str]) -> List[Document]:
        """Fetch several long forms, one retrieval (and one ``c_l``) each.

        Duplicate docids are fetched — and charged — only once: the
        returned list carries one :class:`Document` per *distinct*
        requested docid, in first-occurrence order.

        When the server exposes a ``retrieve_many`` of its own (remote
        and sharded transports dispatch it over their worker pools), the
        cache-missing docids travel as ONE batched call, so the fetches
        overlap on the wire; per-docid charges, cache fills, and traced
        spans are identical to the one-at-a-time path.  If the batched
        call fails, nothing is charged (the per-call path charges each
        document as it arrives).
        """
        wanted: List[str] = []
        seen = set()
        for docid in docids:
            if docid not in seen:
                seen.add(docid)
                wanted.append(docid)
        server_many = getattr(self.server, "retrieve_many", None)
        if server_many is None or len(wanted) < 2:
            return [self.retrieve(docid) for docid in wanted]

        documents: Dict[str, Document] = {}
        misses = wanted
        version = None
        if self.cache is not None:
            version = self._data_version()
            self.cache.validate(version)
            misses = []
            for docid in wanted:
                cached = self.cache.retrieve.get(docid)
                if cached is None:
                    misses.append(docid)
                    self._note_cache(hit=False)
                    continue
                saved = self.ledger.constants.long_form
                self.ledger.credit_saved(saved)
                self._note_cache(hit=True)
                self.tracer.record(
                    "retrieve",
                    docid,
                    result_size=1,
                    postings_processed=0,
                    cost=0.0,
                    saved=saved,
                    cache_hit=True,
                )
                documents[docid] = cached
        if misses:
            try:
                fetched = server_many(misses)
            finally:
                self._settle_transport()
            for docid, document in zip(misses, fetched):
                cost = self.ledger.charge_retrieve()
                if self.cache is not None:
                    self.cache.put_retrieve(docid, document, version)
                if self.tracer.enabled:
                    self.tracer.record(
                        "retrieve",
                        docid,
                        result_size=1,
                        postings_processed=0,
                        cost=cost,
                    )
                documents[docid] = document
        return [documents[docid] for docid in wanted]

    # ------------------------------------------------------------------
    # probing and RTP support
    # ------------------------------------------------------------------
    def probe(self, query: Union[SearchNode, str]) -> bool:
        """Send a probe: a search whose only use is "any matches?".

        A probe is an ordinary short-form search (Section 3.3: "requiring
        the text system to return only the information whether there are
        any matching documents ... by requesting the short form
        response"), so it is charged exactly like :meth:`search`.
        """
        return not self._metered_search(query, kind="probe").is_empty

    def charge_rtp(self, document_count: int) -> float:
        """Account for SQL string matching over ``document_count`` documents."""
        return self.ledger.charge_rtp(document_count)

    # ------------------------------------------------------------------
    # published meta information
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        """``D``, the collection size."""
        return self.server.document_count

    @property
    def term_limit(self) -> int:
        """``M``, the per-search basic-term limit."""
        return self.server.term_limit

    @property
    def source_kind(self) -> str:
        """The backend's predicate semantics: ``"boolean"`` or ``"vector"``.

        Published by the server (remote transports relay it in their
        meta frame); servers that predate the heterogeneous-backend work
        are Boolean.  The optimizer's method-legality check reads this —
        probe-based methods are sound only against ``"boolean"`` sources
        (Section 8).
        """
        return getattr(self.server, "source_kind", "boolean")

    def reset_accounting(self, include_cache_stats: bool = False) -> None:
        """Zero the ledger and the trace (server counters and cache kept).

        By default the gateway cache's hit/miss statistics survive a
        reset — they describe the cache, not this client's accounting
        period, and several harnesses read them across resets.  Pass
        ``include_cache_stats=True`` to zero them too (the cached
        *entries* are always kept; only the counters reset).
        """
        self.ledger.reset()
        self.tracer.clear()
        if include_cache_stats and self.cache is not None:
            self.cache.search.stats.reset()
            self.cache.retrieve.stats.reset()
