"""The metered text-system client (the foreign-function gateway).

Every database-side access to the external text system goes through
:class:`TextClient`, which forwards the call to the
:class:`~repro.textsys.server.BooleanTextServer` and charges the
corresponding cost into a :class:`~repro.gateway.costs.CostLedger`.

This is the reproduction's substitute for the paper's live network link
between OpenODB and the CMU Mercury server: instead of paying real
seconds per connection, the ledger accumulates *simulated* seconds using
the constants the paper calibrated on that link.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Union

from repro.errors import GatewayError
from repro.gateway.costs import CostConstants, CostLedger
from repro.textsys.documents import Document
from repro.textsys.query import SearchNode
from repro.textsys.result import ResultSet
from repro.textsys.server import BooleanTextServer

__all__ = ["TextClient", "SearchCall"]


@dataclass(frozen=True)
class SearchCall:
    """One logged search: the expression sent and what came back."""

    expression: str
    result_size: int
    postings_processed: int
    cost: float


class TextClient:
    """Search/retrieve access to the text server with cost accounting."""

    def __init__(
        self,
        server: BooleanTextServer,
        constants: Optional[CostConstants] = None,
        log_calls: bool = False,
    ) -> None:
        self.server = server
        self.ledger = CostLedger(constants=constants or CostConstants())
        self.log_calls = log_calls
        self.call_log: List[SearchCall] = []

    # ------------------------------------------------------------------
    # the two foreign operations
    # ------------------------------------------------------------------
    def search(self, query: Union[SearchNode, str]) -> ResultSet:
        """Send one search; returns the short-form result set.

        Charges ``c_i + c_p * postings + c_s * |result|``.
        """
        result = self.server.search(query)
        cost = self.ledger.charge_search(result.postings_processed, len(result))
        if self.log_calls:
            expression = query.to_expression() if isinstance(query, SearchNode) else query
            self.call_log.append(
                SearchCall(
                    expression=expression,
                    result_size=len(result),
                    postings_processed=result.postings_processed,
                    cost=cost,
                )
            )
        return result

    def search_batch(self, queries) -> List[ResultSet]:
        """Send many searches in ONE invocation (Section 8's proposal).

        Requires the server to support ``search_batch`` (see
        :class:`repro.textsys.batching.BatchingTextServer`).  Charges a
        single ``c_i`` for the whole batch plus the usual processing and
        short-form transmission for every query's answer.
        """
        search_batch = getattr(self.server, "search_batch", None)
        if search_batch is None:
            raise GatewayError(
                "the text server does not support batched invocations; "
                "wrap it in BatchingTextServer"
            )
        results = search_batch(queries)
        postings = sum(result.postings_processed for result in results)
        returned = sum(len(result) for result in results)
        cost = self.ledger.charge_search(postings, returned)
        if self.log_calls:
            self.call_log.append(
                SearchCall(
                    expression=f"<batch of {len(queries)}>",
                    result_size=returned,
                    postings_processed=postings,
                    cost=cost,
                )
            )
        return results

    def retrieve(self, docid: str) -> Document:
        """Fetch one long-form document; charges ``c_l``."""
        document = self.server.retrieve(docid)
        self.ledger.charge_retrieve()
        return document

    def retrieve_many(self, docids: Iterable[str]) -> List[Document]:
        """Fetch several long forms, one retrieval (and one ``c_l``) each."""
        return [self.retrieve(docid) for docid in docids]

    # ------------------------------------------------------------------
    # probing and RTP support
    # ------------------------------------------------------------------
    def probe(self, query: Union[SearchNode, str]) -> bool:
        """Send a probe: a search whose only use is "any matches?".

        A probe is an ordinary short-form search (Section 3.3: "requiring
        the text system to return only the information whether there are
        any matching documents ... by requesting the short form
        response"), so it is charged exactly like :meth:`search`.
        """
        return not self.search(query).is_empty

    def charge_rtp(self, document_count: int) -> float:
        """Account for SQL string matching over ``document_count`` documents."""
        return self.ledger.charge_rtp(document_count)

    # ------------------------------------------------------------------
    # published meta information
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        """``D``, the collection size."""
        return self.server.document_count

    @property
    def term_limit(self) -> int:
        """``M``, the per-search basic-term limit."""
        return self.server.term_limit

    def reset_accounting(self) -> None:
        """Zero the ledger and the call log (server counters untouched)."""
        self.ledger.reset()
        self.call_log.clear()
