"""The metered text-system client (the foreign-function gateway).

Every database-side access to the external text system goes through
:class:`TextClient`, which forwards the call to the
:class:`~repro.textsys.server.BooleanTextServer` and charges the
corresponding cost into a :class:`~repro.gateway.costs.CostLedger`.

This is the reproduction's substitute for the paper's live network link
between OpenODB and the CMU Mercury server: instead of paying real
seconds per connection, the ledger accumulates *simulated* seconds using
the constants the paper calibrated on that link.

Two optional layers ride on the gateway:

- a :class:`~repro.gateway.cache.GatewayCache`: repeated searches and
  long-form retrievals are answered locally.  A hit charges *nothing*
  into the ledger; the avoided cost accumulates in
  ``ledger.seconds_saved``.  Entries are dropped wholesale whenever the
  server's ``data_version`` moves, so staleness is impossible.  Without
  a cache (the default) the client's accounting is bit-identical to the
  uncached gateway.
- a :class:`~repro.gateway.tracing.CallTracer`: every search, probe,
  batch and retrieval becomes a span labelled with the current execution
  phase (scan/probe/TS/SJ-batch/RTP).  The legacy ``call_log`` is now a
  view over the trace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.errors import GatewayError
from repro.gateway.cache import GatewayCache
from repro.gateway.costs import CostConstants, CostLedger
from repro.gateway.tracing import CallTracer
from repro.textsys.documents import Document
from repro.textsys.parser import parse_search
from repro.textsys.query import SearchNode
from repro.textsys.result import ResultSet
from repro.textsys.server import BooleanTextServer

__all__ = ["TextClient", "SearchCall"]


@dataclass(frozen=True)
class SearchCall:
    """One logged search: the expression sent and what came back."""

    expression: str
    result_size: int
    postings_processed: int
    cost: float


class TextClient:
    """Search/retrieve access to the text server with cost accounting."""

    def __init__(
        self,
        server: BooleanTextServer,
        constants: Optional[CostConstants] = None,
        log_calls: bool = False,
        cache: Optional[GatewayCache] = None,
        tracer: Optional[CallTracer] = None,
        ledger: Optional[CostLedger] = None,
    ) -> None:
        self.server = server
        #: An explicit ``ledger`` lets several clients charge one shared
        #: (thread-safe) ledger — the serving front-end accumulates every
        #: query a tenant runs into that tenant's budgeted ledger this
        #: way.  When given, it wins over ``constants``.
        self.ledger = (
            ledger
            if ledger is not None
            else CostLedger(constants=constants or CostConstants())
        )
        self.cache = cache
        self.tracer = tracer if tracer is not None else CallTracer(enabled=log_calls)

    # ------------------------------------------------------------------
    # tracing support
    # ------------------------------------------------------------------
    def trace_phase(self, label: str):
        """Context manager: attribute foreign calls inside to ``label``."""
        return self.tracer.phase(label)

    @property
    def call_log(self) -> List[SearchCall]:
        """Legacy view: the search-shaped spans of the trace."""
        return [
            SearchCall(
                expression=span.expression,
                result_size=span.result_size,
                postings_processed=span.postings_processed,
                cost=span.cost,
            )
            for span in self.tracer.spans
            if span.kind in ("search", "probe", "batch")
        ]

    def _settle_transport(self) -> None:
        """Drain a remote transport's retry waste and events, if any.

        When the server is a :class:`~repro.remote.transport.
        RemoteTextTransport`, failed attempts' wire time and backoff
        pauses accumulate there; this moves them into the ledger's
        ``seconds_retried`` side channel and records each retry/breaker
        event as a traced span.  With an in-process server this is a
        single attribute lookup — accounting stays bit-identical.
        """
        drain = getattr(self.server, "drain_accounting", None)
        if drain is None:
            return
        wasted, events = drain()
        if wasted:
            self.ledger.charge_retry_waste(wasted)
        if self.tracer.enabled:
            for event in events:
                self.tracer.record(
                    event.kind,
                    event.detail,
                    result_size=0,
                    postings_processed=0,
                    cost=0.0,
                )

    def _wants_expression(self) -> bool:
        return self.cache is not None or self.tracer.enabled

    def _canonical(
        self, query: Union[SearchNode, str]
    ) -> Tuple[Union[SearchNode, str], Optional[str]]:
        """The cache/trace key: the canonical rendering of the search.

        Strings are parsed so that ``"TI='belief'"`` and the equivalent
        :class:`~repro.textsys.query.TermQuery` share one cache entry.
        Only computed when a cache or an enabled tracer needs it.
        """
        if not self._wants_expression():
            return query, None
        if isinstance(query, str):
            query = parse_search(query)
        return query, query.to_expression()

    def _data_version(self):
        """The cache-validation key for the current server.

        Prefers the server's ``data_fingerprint`` (a ``(store uid,
        version)`` pair that cannot collide across backends) and falls
        back to the bare ``data_version`` counter for servers that do
        not publish one.
        """
        fingerprint = getattr(self.server, "data_fingerprint", None)
        if fingerprint is not None:
            return fingerprint
        return getattr(self.server, "data_version", 0)

    # ------------------------------------------------------------------
    # the two foreign operations
    # ------------------------------------------------------------------
    def search(self, query: Union[SearchNode, str]) -> ResultSet:
        """Send one search; returns the short-form result set.

        Charges ``c_i + c_p * postings + c_s * |result|`` — unless the
        gateway cache already holds the canonical expression, in which
        case nothing is charged and the avoided cost is credited to
        ``ledger.seconds_saved``.
        """
        return self._metered_search(query, kind="search")

    def _metered_search(self, query: Union[SearchNode, str], kind: str) -> ResultSet:
        query, expression = self._canonical(query)
        version = None
        if self.cache is not None:
            version = self._data_version()
            self.cache.validate(version)
            cached = self.cache.search.get(expression)
            if cached is not None:
                saved = self.ledger.constants.search_cost(
                    cached.postings_processed, len(cached)
                )
                self.ledger.credit_saved(saved)
                self.tracer.record(
                    kind,
                    expression,
                    result_size=len(cached),
                    postings_processed=cached.postings_processed,
                    cost=0.0,
                    saved=saved,
                    cache_hit=True,
                )
                return cached
        try:
            result = self.server.search(query)
        finally:
            self._settle_transport()
        cost = self.ledger.charge_search(result.postings_processed, len(result))
        if self.cache is not None:
            # Version-stamped fill: dropped if the data moved mid-fetch.
            self.cache.put_search(expression, result, version)
        if self.tracer.enabled:
            self.tracer.record(
                kind,
                expression,
                result_size=len(result),
                postings_processed=result.postings_processed,
                cost=cost,
            )
        return result

    def search_batch(self, queries) -> List[ResultSet]:
        """Send many searches in ONE invocation (Section 8's proposal).

        Requires the server to support ``search_batch`` (see
        :class:`repro.textsys.batching.BatchingTextServer`).  Charges a
        single ``c_i`` for the whole batch plus the usual processing and
        short-form transmission for every query's answer.  With a cache,
        only the missing queries travel; if every query hits, the whole
        invocation (including ``c_i``) is saved.
        """
        search_batch = getattr(self.server, "search_batch", None)
        if search_batch is None:
            raise GatewayError(
                "the text server does not support batched invocations; "
                "wrap it in BatchingTextServer"
            )
        queries = list(queries)
        if self.cache is None:
            try:
                results = search_batch(queries)
            finally:
                self._settle_transport()
            postings = sum(result.postings_processed for result in results)
            returned = sum(len(result) for result in results)
            cost = self.ledger.charge_search(postings, returned)
            self.tracer.record(
                "batch",
                f"<batch of {len(queries)}>",
                result_size=returned,
                postings_processed=postings,
                cost=cost,
            )
            return results

        version = self._data_version()
        self.cache.validate(version)
        canonical = [self._canonical(query) for query in queries]
        results: List[Optional[ResultSet]] = []
        misses: List[Tuple[int, Union[SearchNode, str], str]] = []
        for index, (query, expression) in enumerate(canonical):
            cached = self.cache.search.get(expression)
            results.append(cached)
            if cached is None:
                misses.append((index, query, expression))

        # A batch may repeat the same instantiated conjunct (SJ batches
        # routinely do); each distinct expression travels — and is
        # metered — once, and the answer fans back out to every
        # occurrence, mirroring retrieve_many's duplicate handling.
        miss_positions: Dict[str, List[int]] = {}
        distinct: List[Tuple[Union[SearchNode, str], str]] = []
        for index, query, expression in misses:
            positions = miss_positions.get(expression)
            if positions is None:
                miss_positions[expression] = [index]
                distinct.append((query, expression))
            else:
                positions.append(index)

        constants = self.ledger.constants
        cost = 0.0
        if distinct:
            try:
                fetched = search_batch([query for query, _ in distinct])
            finally:
                self._settle_transport()
            miss_postings = sum(result.postings_processed for result in fetched)
            miss_returned = sum(len(result) for result in fetched)
            cost = self.ledger.charge_search(miss_postings, miss_returned)
            for (_, expression), result in zip(distinct, fetched):
                for index in miss_positions[expression]:
                    results[index] = result
                self.cache.put_search(expression, result, version)

        # What the batch would have cost without the cache, minus what
        # was actually paid: the hits' processing/transmission shares,
        # plus the invocation itself when nothing travelled at all.
        miss_indexes = {index for index, _, _ in misses}
        hit_results = [
            result
            for index, result in enumerate(results)
            if index not in miss_indexes
        ]
        saved = sum(
            constants.per_posting * result.postings_processed
            + constants.short_form * len(result)
            for result in hit_results
        )
        if not misses:
            saved += constants.invocation
        if saved:
            self.ledger.credit_saved(saved)

        postings = sum(result.postings_processed for result in results)
        returned = sum(len(result) for result in results)
        self.tracer.record(
            "batch",
            f"<batch of {len(queries)}>",
            result_size=returned,
            postings_processed=postings,
            cost=cost,
            saved=saved,
            cache_hit=not misses,
        )
        return results

    def retrieve(self, docid: str) -> Document:
        """Fetch one long-form document; charges ``c_l`` (0 on a cache hit)."""
        version = None
        if self.cache is not None:
            version = self._data_version()
            self.cache.validate(version)
            cached = self.cache.retrieve.get(docid)
            if cached is not None:
                saved = self.ledger.constants.long_form
                self.ledger.credit_saved(saved)
                self.tracer.record(
                    "retrieve",
                    docid,
                    result_size=1,
                    postings_processed=0,
                    cost=0.0,
                    saved=saved,
                    cache_hit=True,
                )
                return cached
        try:
            document = self.server.retrieve(docid)
        finally:
            self._settle_transport()
        cost = self.ledger.charge_retrieve()
        if self.cache is not None:
            self.cache.put_retrieve(docid, document, version)
        if self.tracer.enabled:
            self.tracer.record(
                "retrieve", docid, result_size=1, postings_processed=0, cost=cost
            )
        return document

    def retrieve_many(self, docids: Iterable[str]) -> List[Document]:
        """Fetch several long forms, one retrieval (and one ``c_l``) each.

        Duplicate docids are fetched — and charged — only once: the
        returned list carries one :class:`Document` per *distinct*
        requested docid, in first-occurrence order.

        When the server exposes a ``retrieve_many`` of its own (remote
        and sharded transports dispatch it over their worker pools), the
        cache-missing docids travel as ONE batched call, so the fetches
        overlap on the wire; per-docid charges, cache fills, and traced
        spans are identical to the one-at-a-time path.  If the batched
        call fails, nothing is charged (the per-call path charges each
        document as it arrives).
        """
        wanted: List[str] = []
        seen = set()
        for docid in docids:
            if docid not in seen:
                seen.add(docid)
                wanted.append(docid)
        server_many = getattr(self.server, "retrieve_many", None)
        if server_many is None or len(wanted) < 2:
            return [self.retrieve(docid) for docid in wanted]

        documents: Dict[str, Document] = {}
        misses = wanted
        version = None
        if self.cache is not None:
            version = self._data_version()
            self.cache.validate(version)
            misses = []
            for docid in wanted:
                cached = self.cache.retrieve.get(docid)
                if cached is None:
                    misses.append(docid)
                    continue
                saved = self.ledger.constants.long_form
                self.ledger.credit_saved(saved)
                self.tracer.record(
                    "retrieve",
                    docid,
                    result_size=1,
                    postings_processed=0,
                    cost=0.0,
                    saved=saved,
                    cache_hit=True,
                )
                documents[docid] = cached
        if misses:
            try:
                fetched = server_many(misses)
            finally:
                self._settle_transport()
            for docid, document in zip(misses, fetched):
                cost = self.ledger.charge_retrieve()
                if self.cache is not None:
                    self.cache.put_retrieve(docid, document, version)
                if self.tracer.enabled:
                    self.tracer.record(
                        "retrieve",
                        docid,
                        result_size=1,
                        postings_processed=0,
                        cost=cost,
                    )
                documents[docid] = document
        return [documents[docid] for docid in wanted]

    # ------------------------------------------------------------------
    # probing and RTP support
    # ------------------------------------------------------------------
    def probe(self, query: Union[SearchNode, str]) -> bool:
        """Send a probe: a search whose only use is "any matches?".

        A probe is an ordinary short-form search (Section 3.3: "requiring
        the text system to return only the information whether there are
        any matching documents ... by requesting the short form
        response"), so it is charged exactly like :meth:`search`.
        """
        return not self._metered_search(query, kind="probe").is_empty

    def charge_rtp(self, document_count: int) -> float:
        """Account for SQL string matching over ``document_count`` documents."""
        return self.ledger.charge_rtp(document_count)

    # ------------------------------------------------------------------
    # published meta information
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        """``D``, the collection size."""
        return self.server.document_count

    @property
    def term_limit(self) -> int:
        """``M``, the per-search basic-term limit."""
        return self.server.term_limit

    @property
    def source_kind(self) -> str:
        """The backend's predicate semantics: ``"boolean"`` or ``"vector"``.

        Published by the server (remote transports relay it in their
        meta frame); servers that predate the heterogeneous-backend work
        are Boolean.  The optimizer's method-legality check reads this —
        probe-based methods are sound only against ``"boolean"`` sources
        (Section 8).
        """
        return getattr(self.server, "source_kind", "boolean")

    def reset_accounting(self, include_cache_stats: bool = False) -> None:
        """Zero the ledger and the trace (server counters and cache kept).

        By default the gateway cache's hit/miss statistics survive a
        reset — they describe the cache, not this client's accounting
        period, and several harnesses read them across resets.  Pass
        ``include_cache_stats=True`` to zero them too (the cached
        *entries* are always kept; only the counters reset).
        """
        self.ledger.reset()
        self.tracer.clear()
        if include_cache_stats and self.cache is not None:
            self.cache.search.stats.reset()
            self.cache.retrieve.stats.reset()
