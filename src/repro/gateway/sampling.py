"""Sampling-based estimation of predicate selectivity and fanout (Section 4.2).

"To estimate these statistics, we employ sampling techniques.  We sample
terms from column *i*, access the text retrieval system to check if they
appear in field *i* of some document, and obtain the frequencies if so."

:func:`sample_predicate_statistics` draws a random sample of distinct
column values, sends one single-term search per sampled value through a
:class:`~repro.gateway.client.TextClient` (so sampling cost is metered —
the paper amortizes it across queries on the same predicate), and
estimates:

- ``s_i`` = fraction of sampled terms that matched at least one document;
- ``f_i`` = mean result-set size over *all* sampled terms (zero matches
  included), so that ``n`` searches over random tuples are expected to
  return ``n * f_i`` documents — the role ``f_i`` plays in the Section
  4.3 formulas.

:func:`exact_predicate_statistics` computes the same two numbers exactly
from the full value list, for tests and for calibrated experiments where
estimation error should be zero.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence

from repro.errors import StatisticsError
from repro.gateway.client import TextClient
from repro.gateway.statistics import PredicateStatistics
from repro.textsys.query import make_term
from repro.textsys.server import BooleanTextServer

__all__ = [
    "sample_predicate_statistics",
    "exact_predicate_statistics",
    "observed_predicate_statistics",
]


def _distinct_strings(values: Iterable[object]) -> List[str]:
    seen = set()
    out: List[str] = []
    for value in values:
        if value is None or value in seen:
            continue
        seen.add(value)
        out.append(str(value))
    return out


def sample_predicate_statistics(
    client: TextClient,
    column: str,
    field: str,
    values: Sequence[object],
    sample_size: int = 20,
    rng: Optional[random.Random] = None,
) -> PredicateStatistics:
    """Estimate ``(s_i, f_i)`` for ``column in field`` by metered sampling."""
    if sample_size < 1:
        raise StatisticsError("sample size must be at least 1")
    distinct = _distinct_strings(values)
    if not distinct:
        raise StatisticsError(f"column {column!r} has no non-NULL values to sample")
    rng = rng or random.Random(0)
    chosen = (
        distinct
        if len(distinct) <= sample_size
        else rng.sample(distinct, sample_size)
    )
    matched = 0
    total_results = 0
    for term_text in chosen:
        result = client.search(make_term(field, term_text))
        if not result.is_empty:
            matched += 1
        total_results += len(result)
    return PredicateStatistics(
        column=column,
        field=field,
        selectivity=matched / len(chosen),
        fanout=total_results / len(chosen),
        sample_size=len(chosen),
    )


def observed_predicate_statistics(
    column: str,
    field: str,
    searches: int,
    matched: int,
    documents: float,
) -> PredicateStatistics:
    """``(s_i, f_i)`` from searches the runtime already paid for.

    Execution-time observations are free statistics: ``searches``
    instantiated probes/searches on distinct column values, of which
    ``matched`` returned at least one document and ``documents`` results
    came back in total.  The counts are clamped into the valid domain so
    a truncated observation (an aborted method counted only part of its
    probes) still yields well-formed statistics.
    """
    if searches < 1:
        raise StatisticsError(
            f"observation for {column!r} needs at least one search"
        )
    matched = min(max(matched, 0), searches)
    documents = max(float(documents), 0.0)
    return PredicateStatistics(
        column=column,
        field=field,
        selectivity=matched / searches,
        fanout=documents / searches,
        sample_size=searches,
    )


def exact_predicate_statistics(
    server: BooleanTextServer,
    column: str,
    field: str,
    values: Sequence[object],
) -> PredicateStatistics:
    """Compute ``(s_i, f_i)`` exactly over every distinct column value.

    Uses the server's published meta interface (document frequencies)
    rather than metered searches; intended for tests and calibrated
    benchmark setups.
    """
    distinct = _distinct_strings(values)
    if not distinct:
        raise StatisticsError(f"column {column!r} has no non-NULL values")
    matched = 0
    total_results = 0
    for term_text in distinct:
        result = server.search(make_term(field, term_text))
        if not result.is_empty:
            matched += 1
        total_results += len(result)
    return PredicateStatistics(
        column=column,
        field=field,
        selectivity=matched / len(distinct),
        fanout=total_results / len(distinct),
        sample_size=len(distinct),
    )
