"""Text-predicate statistics and the *g*-correlated joint model (Section 4.2).

For each foreign join predicate ``column_i in field_i`` the optimizer
keeps two statistics:

- **selectivity** ``s_i`` — the probability that a term drawn from
  column *i* occurs in field *i* of some document;
- **fanout** ``f_i`` — the average number of documents in which a term
  drawn from column *i* occurs in field *i*.

When a query has several text join predicates, joint statistics follow
the *g-correlated* model: order the predicates by increasing statistic
and keep only the ``g`` most selective —

    S_{g,K} = prod of the g smallest s_i
    F_{g,K} = (prod of the g smallest f_i) / D^(g-1)

``g = 1`` assumes full correlation (joint = minimum); ``g = k`` assumes
full independence (joint = product).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import StatisticsError

__all__ = [
    "PredicateStatistics",
    "CorrelationModel",
    "TextStatisticsRegistry",
    "joint_selectivity",
    "joint_fanout",
    "blend_statistics",
]


@dataclass(frozen=True)
class PredicateStatistics:
    """Estimated statistics for one foreign predicate ``column in field``."""

    column: str
    field: str
    selectivity: float  # s_i in [0, 1]
    fanout: float  # f_i >= 0 (mean documents per term, zero-matches included)
    sample_size: int = 0

    def __post_init__(self) -> None:
        if not 0.0 <= self.selectivity <= 1.0:
            raise StatisticsError(
                f"selectivity {self.selectivity} for {self.column!r} not in [0, 1]"
            )
        if self.fanout < 0:
            raise StatisticsError(f"fanout {self.fanout} for {self.column!r} negative")

    @property
    def conditional_fanout(self) -> float:
        """Mean result size given the term matches at all (``f_i / s_i``)."""
        if self.selectivity == 0:
            return 0.0
        return self.fanout / self.selectivity


def joint_selectivity(selectivities: Sequence[float], g: int) -> float:
    """``S_{g,K}``: product of the ``g`` smallest selectivities."""
    if not selectivities:
        return 1.0
    if g < 1:
        raise StatisticsError("g must be at least 1")
    ordered = sorted(selectivities)
    product = 1.0
    for value in ordered[: min(g, len(ordered))]:
        product *= value
    return product


def joint_fanout(fanouts: Sequence[float], g: int, document_count: int) -> float:
    """``F_{g,K}``: product of the ``g`` smallest fanouts over ``D^(g-1)``."""
    if not fanouts:
        return float(document_count)
    if g < 1:
        raise StatisticsError("g must be at least 1")
    if document_count < 1:
        raise StatisticsError("document count must be positive")
    ordered = sorted(fanouts)
    effective = min(g, len(ordered))
    product = 1.0
    for value in ordered[:effective]:
        product *= value
    return product / (document_count ** (effective - 1))


def blend_statistics(
    prior: PredicateStatistics,
    observed: PredicateStatistics,
    prior_weight: float,
) -> PredicateStatistics:
    """Weighted blend of a prior estimate with runtime observations.

    ``prior_weight`` is the prior's equivalent sample size; the observed
    statistics weigh in with their own ``sample_size`` (number of real
    searches behind them).  The blend is the precision-weighted mean

        s = (w_p * s_prior + w_o * s_obs) / (w_p + w_o)

    clamped back into the valid domain, so a malformed input can never
    produce a selectivity outside ``[0, 1]`` or a negative fanout.
    """
    if prior_weight < 0:
        raise StatisticsError("prior_weight must be non-negative")
    w_obs = float(max(observed.sample_size, 0))
    if w_obs == 0.0:
        return prior
    total = prior_weight + w_obs
    if total <= 0.0:
        return observed
    selectivity = (
        prior_weight * prior.selectivity + w_obs * observed.selectivity
    ) / total
    fanout = (prior_weight * prior.fanout + w_obs * observed.fanout) / total
    return PredicateStatistics(
        column=prior.column,
        field=prior.field,
        selectivity=min(1.0, max(0.0, selectivity)),
        fanout=max(0.0, fanout),
        sample_size=prior.sample_size + observed.sample_size,
    )


@dataclass(frozen=True)
class CorrelationModel:
    """A *g*-correlated joint-statistics model over ``D`` documents."""

    g: int
    document_count: int

    def __post_init__(self) -> None:
        if self.g < 1:
            raise StatisticsError("g must be at least 1")
        if self.document_count < 1:
            raise StatisticsError("document count must be positive")

    @classmethod
    def fully_correlated(cls, document_count: int) -> "CorrelationModel":
        """The 1-correlated model: joint statistic = minimum."""
        return cls(g=1, document_count=document_count)

    @classmethod
    def independent(cls, document_count: int, k: int) -> "CorrelationModel":
        """The k-correlated model: joint statistic = full product."""
        return cls(g=max(k, 1), document_count=document_count)

    def selectivity(self, predicates: Sequence[PredicateStatistics]) -> float:
        """Joint selectivity ``S_{g,K}`` of a predicate set."""
        return joint_selectivity([p.selectivity for p in predicates], self.g)

    def fanout(self, predicates: Sequence[PredicateStatistics]) -> float:
        """Joint fanout ``F_{g,K}`` of a predicate set."""
        return joint_fanout(
            [p.fanout for p in predicates], self.g, self.document_count
        )


class TextStatisticsRegistry:
    """The optimizer's store of per-predicate statistics.

    "The estimates thus obtained are maintained by the optimizer, and the
    sampling cost is amortized over queries with the same predicate."
    Keys are ``(column, field)`` pairs.
    """

    def __init__(self) -> None:
        self._stats: Dict[Tuple[str, str], PredicateStatistics] = {}

    def put(self, stats: PredicateStatistics) -> None:
        self._stats[(stats.column, stats.field)] = stats

    def get(self, column: str, field: str) -> PredicateStatistics:
        try:
            return self._stats[(column, field)]
        except KeyError:
            raise StatisticsError(
                f"no statistics for predicate {column!r} in {field!r}; "
                "sample it first (gateway.sampling) or register it explicitly"
            ) from None

    def has(self, column: str, field: str) -> bool:
        return (column, field) in self._stats

    def __len__(self) -> int:
        return len(self._stats)

    def items(self) -> List[PredicateStatistics]:
        return list(self._stats.values())
