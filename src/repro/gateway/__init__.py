"""Loose-integration gateway between the database and the text system.

Provides the metered :class:`TextClient` (every search/retrieve is priced
with the paper's calibrated cost constants into a :class:`CostLedger`),
sampling-based predicate statistics, and the *g*-correlated joint
selectivity/fanout models of Section 4.2.
"""

from repro.gateway.cache import (
    CacheStats,
    GatewayCache,
    LruCache,
    RetrieveCache,
    SearchCache,
)
from repro.gateway.client import SearchCall, TextClient
from repro.gateway.costs import (
    PAPER_CONSTANTS,
    VECTOR_CONSTANTS,
    CostConstants,
    CostLedger,
)
from repro.gateway.registry import BackendBinding, BackendRegistry
from repro.gateway.tracing import CallSpan, CallTracer, format_trace
from repro.gateway.published import (
    FieldStatistics,
    field_statistics,
    published_predicate_statistics,
)
from repro.gateway.sampling import (
    exact_predicate_statistics,
    sample_predicate_statistics,
)
from repro.gateway.statistics import (
    CorrelationModel,
    PredicateStatistics,
    TextStatisticsRegistry,
    joint_fanout,
    joint_selectivity,
)

__all__ = [
    "TextClient",
    "SearchCall",
    "CostConstants",
    "CostLedger",
    "PAPER_CONSTANTS",
    "VECTOR_CONSTANTS",
    "BackendBinding",
    "BackendRegistry",
    "GatewayCache",
    "SearchCache",
    "RetrieveCache",
    "LruCache",
    "CacheStats",
    "CallSpan",
    "CallTracer",
    "format_trace",
    "PredicateStatistics",
    "CorrelationModel",
    "TextStatisticsRegistry",
    "joint_selectivity",
    "joint_fanout",
    "sample_predicate_statistics",
    "exact_predicate_statistics",
    "FieldStatistics",
    "field_statistics",
    "published_predicate_statistics",
]
