"""Exception hierarchy for the ``repro`` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch library failures without also
swallowing programming errors such as :class:`TypeError`.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "SchemaError",
    "CatalogError",
    "ExpressionError",
    "TypeMismatchError",
    "TextSystemError",
    "SearchSyntaxError",
    "SearchLimitExceeded",
    "UnknownFieldError",
    "UnknownDocumentError",
    "GatewayError",
    "TransportError",
    "TransportTimeout",
    "TransportDropped",
    "CircuitOpenError",
    "RemoteProtocolError",
    "ServingError",
    "AdmissionRejected",
    "QuotaExceededError",
    "BudgetExceededError",
    "StatisticsError",
    "FeedbackError",
    "PlanError",
    "OptimizationError",
    "JoinMethodError",
    "WorkloadError",
]


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` library."""


class SchemaError(ReproError):
    """A schema is malformed: duplicate columns, unknown column, bad type."""


class CatalogError(ReproError):
    """A catalog operation failed (duplicate table, missing table)."""


class ExpressionError(ReproError):
    """An expression tree is malformed or cannot be evaluated."""


class TypeMismatchError(ExpressionError):
    """An expression combined operands of incompatible types."""


class TextSystemError(ReproError):
    """Base class for errors raised by the Boolean text retrieval system."""


class SearchSyntaxError(TextSystemError):
    """A text search expression could not be parsed."""


class SearchLimitExceeded(TextSystemError):
    """A search used more terms than the system's per-search limit ``M``."""


class UnknownFieldError(TextSystemError):
    """A search referenced a text field that the collection does not define."""


class UnknownDocumentError(TextSystemError):
    """A ``retrieve`` named a docid that is not in the collection."""


class GatewayError(ReproError):
    """The loose-integration gateway was misused (e.g. bad cost constants)."""


class TransportError(GatewayError):
    """A remote text-source call failed at the network layer."""


class TransportTimeout(TransportError):
    """A remote call exceeded its deadline waiting for a response."""


class TransportDropped(TransportError):
    """A frame was dropped on the simulated wire (no response at all)."""


class CircuitOpenError(TransportError):
    """The circuit breaker is open: calls are refused without the wire."""


class RemoteProtocolError(TransportError):
    """A wire frame could not be encoded or decoded."""


class ServingError(ReproError):
    """Base class for errors raised by the concurrent serving front-end."""


class AdmissionRejected(ServingError):
    """The admission queue is full; retry after ``retry_after`` seconds.

    Backpressure, not failure: the queue protects the service from
    unbounded backlog, and the rejection carries an estimate of when
    capacity should free up.
    """

    def __init__(self, message: str, retry_after: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QuotaExceededError(ServingError):
    """A tenant exhausted its admitted-query quota."""


class BudgetExceededError(ServingError):
    """A tenant's cost ledger crossed its simulated-seconds budget.

    Raised at charge time: the charge that crossed the line *stays* on
    the ledger (the foreign call already happened and must be accounted
    for); the in-flight query aborts and later admissions are refused.
    """


class StatisticsError(ReproError):
    """Statistics were requested for a predicate that was never sampled."""


class FeedbackError(StatisticsError):
    """A feedback-statistics store is corrupt or could not be loaded.

    Subclasses :class:`StatisticsError` so statistics-aware callers can
    treat unusable feedback like missing statistics; loading never falls
    back to a possibly-wrong estimate silently.
    """


class PlanError(ReproError):
    """A query plan is structurally invalid."""


class OptimizationError(ReproError):
    """The optimizer could not produce a plan for a query."""


class JoinMethodError(ReproError):
    """A join method was applied to a query it does not support."""


class WorkloadError(ReproError):
    """A workload generator received unsatisfiable parameters."""
