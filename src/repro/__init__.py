"""repro — a full reproduction of *Join Queries with External Text
Sources: Execution and Optimization Techniques* (Chaudhuri, Dayal, Yan;
SIGMOD 1995).

The package builds every system the paper relies on:

- ``repro.relational`` — an in-memory relational engine (the OpenODB
  stand-in);
- ``repro.textsys`` — an inversion-based Boolean text retrieval system
  (the CMU Mercury stand-in);
- ``repro.gateway`` — the loose-integration access layer: metered
  search/retrieve with the paper's calibrated cost constants, sampled
  predicate statistics, g-correlated joint models;
- ``repro.core`` — the contribution: the foreign-join methods (TS, RTP,
  SJ, SJ+RTP, P+TS, P+RTP), the Section 4 cost model, optimal
  probe-column selection, and the PrL-tree multi-join optimizer;
- ``repro.workload`` — synthetic bibliographic corpora and university
  databases with controllable selectivity/fanout, plus the paper's
  canonical queries Q1–Q5;
- ``repro.bench`` — the experiment harness regenerating every table and
  figure.

Quickstart::

    from repro.workload import build_default_scenario
    from repro.core import TupleSubstitution

    scenario = build_default_scenario(seed=7)
    execution = TupleSubstitution().execute(scenario.q1(), scenario.context())
    print(execution.pairs[:3], execution.cost.total)
"""

from repro.core import (
    JoinContext,
    MethodExecution,
    MultiJoinQuery,
    ProbeRtp,
    ProbeSemiJoin,
    ProbeTupleSubstitution,
    RelationalTextProcessing,
    ResultShape,
    SemiJoin,
    SemiJoinRtp,
    TextJoinPredicate,
    TextJoinQuery,
    TextSelection,
    TupleSubstitution,
    build_cost_inputs,
    choose_join_method,
    execute_plan,
    optimize_multijoin,
)
from repro.gateway import CostConstants, CostLedger, TextClient
from repro.relational import Catalog, DataType, Schema, Table
from repro.textsys import BooleanTextServer, Document, DocumentStore

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "TextJoinQuery",
    "TextJoinPredicate",
    "TextSelection",
    "ResultShape",
    "JoinContext",
    "MethodExecution",
    "TupleSubstitution",
    "RelationalTextProcessing",
    "SemiJoin",
    "SemiJoinRtp",
    "ProbeTupleSubstitution",
    "ProbeRtp",
    "ProbeSemiJoin",
    "MultiJoinQuery",
    "build_cost_inputs",
    "choose_join_method",
    "optimize_multijoin",
    "execute_plan",
    "CostConstants",
    "CostLedger",
    "TextClient",
    "Catalog",
    "Schema",
    "Table",
    "DataType",
    "BooleanTextServer",
    "Document",
    "DocumentStore",
]
