"""The simulated network link: latency, timeouts, errors and drops.

The paper's calibrated constants are dominated by the OpenODB ↔ Mercury
network link (``c_i = 3`` s per invocation is almost entirely connection
set-up).  The in-process reproduction charges those seconds into the
:class:`~repro.gateway.costs.CostLedger` without ever *being* slow or
unreliable; this module supplies the missing physical layer so the
resilience machinery has something real to push against.

A :class:`FaultInjectingChannel` carries one frame per :meth:`send`:

- **latency** — every frame sleeps ``latency ± jitter`` (scaled by
  ``time_scale`` so tests stay fast while wall-clock ratios survive);
- **transient errors** — with probability ``error_rate`` the frame is
  rejected with :class:`~repro.errors.TransportError` after its latency
  was paid (the wasted seconds ride on the exception for accounting);
- **drops** — with probability ``drop_rate`` the frame vanishes: the
  caller waits out the profile's ``timeout`` and gets
  :class:`~repro.errors.TransportTimeout`.

All randomness comes from one seeded :class:`random.Random`, so a given
seed replays the same fault sequence.  Named profiles (``lan``, ``wan``,
``flaky``, ``degraded``) bundle the parameters of links we care about.

The channel is thread-safe: random draws and statistics updates happen
under a lock; the sleeps do not, so concurrent dispatch genuinely
overlaps latency (which is what the connection pool exploits).
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from repro.errors import GatewayError, TransportDropped, TransportError

__all__ = [
    "FaultProfile",
    "FAULT_PROFILES",
    "ChannelStats",
    "LoopbackChannel",
    "FaultInjectingChannel",
]


@dataclass(frozen=True)
class FaultProfile:
    """One named link regime: latency distribution plus fault rates.

    ``latency``/``jitter``/``timeout`` are seconds of simulated wire
    time per frame; a channel's ``time_scale`` maps them to real sleeps.
    """

    name: str
    latency: float = 0.0  # mean one-way-ish seconds per frame
    jitter: float = 0.0  # uniform extra latency in [0, jitter]
    error_rate: float = 0.0  # P(frame rejected with TransportError)
    drop_rate: float = 0.0  # P(frame vanishes -> TransportTimeout)
    timeout: float = 0.25  # seconds waited before a drop is detected

    def __post_init__(self) -> None:
        for name in ("latency", "jitter", "timeout"):
            if getattr(self, name) < 0:
                raise GatewayError(f"fault profile {name} must be non-negative")
        for name in ("error_rate", "drop_rate"):
            rate = getattr(self, name)
            if not 0.0 <= rate <= 1.0:
                raise GatewayError(f"fault profile {name} must be in [0, 1]")


#: The four link regimes the benchmarks and examples exercise.
FAULT_PROFILES: Dict[str, FaultProfile] = {
    # Same machine room: sub-millisecond, reliable.
    "lan": FaultProfile("lan", latency=0.0005, jitter=0.0002),
    # The paper's situation: a wide-area link to CMU.  Tens of
    # milliseconds per frame, still reliable.
    "wan": FaultProfile("wan", latency=0.02, jitter=0.002),
    # An unreliable link: frames error or vanish outright.
    "flaky": FaultProfile(
        "flaky",
        latency=0.002,
        jitter=0.001,
        error_rate=0.15,
        drop_rate=0.05,
        timeout=0.02,
    ),
    # A source in trouble: slow AND failing often enough to trip
    # breakers and trigger the executor's degradation policy.
    "degraded": FaultProfile(
        "degraded",
        latency=0.04,
        jitter=0.01,
        error_rate=0.4,
        drop_rate=0.1,
        timeout=0.08,
    ),
}


@dataclass
class ChannelStats:
    """Observable wire behaviour, cumulative per channel."""

    frames_sent: int = 0
    frames_delivered: int = 0
    injected_errors: int = 0
    injected_drops: int = 0
    simulated_seconds: float = 0.0  # wire time at time_scale=1
    slept_seconds: float = 0.0  # real time actually slept

    def as_dict(self) -> Dict[str, Any]:
        return {
            "frames_sent": self.frames_sent,
            "frames_delivered": self.frames_delivered,
            "injected_errors": self.injected_errors,
            "injected_drops": self.injected_drops,
            "simulated_seconds": self.simulated_seconds,
            "slept_seconds": self.slept_seconds,
        }


class LoopbackChannel:
    """A perfect wire: frames go straight to the handler, no faults.

    Used as the base class so the transport can talk to any channel
    through one ``send`` method.
    """

    def __init__(self, handler: Callable[[str], str]) -> None:
        self.handler = handler
        self.stats = ChannelStats()
        self._lock = threading.Lock()

    def send(self, frame: str) -> str:
        with self._lock:
            self.stats.frames_sent += 1
            self.stats.frames_delivered += 1
        return self.handler(frame)


class FaultInjectingChannel(LoopbackChannel):
    """A seeded lossy link in front of a frame handler."""

    def __init__(
        self,
        handler: Callable[[str], str],
        profile: FaultProfile,
        seed: int = 0,
        time_scale: float = 1.0,
        sleeper: Optional[Callable[[float], None]] = None,
    ) -> None:
        if time_scale < 0:
            raise GatewayError("time_scale must be non-negative")
        super().__init__(handler)
        self.profile = profile
        self.time_scale = time_scale
        self._rng = random.Random(seed)
        self._sleep = sleeper if sleeper is not None else time.sleep

    def _pause(self, simulated_seconds: float) -> None:
        real = simulated_seconds * self.time_scale
        with self._lock:
            self.stats.simulated_seconds += simulated_seconds
            self.stats.slept_seconds += real
        if real > 0:
            self._sleep(real)

    def send(self, frame: str) -> str:
        profile = self.profile
        with self._lock:
            self.stats.frames_sent += 1
            latency = profile.latency + self._rng.uniform(0.0, profile.jitter)
            roll = self._rng.random()
        if roll < profile.drop_rate:
            # The frame vanished: the caller only learns at the deadline.
            with self._lock:
                self.stats.injected_drops += 1
            self._pause(profile.timeout)
            error = TransportDropped(
                f"frame dropped on the {profile.name!r} link "
                f"(waited {profile.timeout}s)"
            )
            error.simulated_seconds = profile.timeout
            raise error
        if roll < profile.drop_rate + profile.error_rate:
            # Transient failure after the latency was paid.
            with self._lock:
                self.stats.injected_errors += 1
            self._pause(latency)
            error = TransportError(
                f"injected transient failure on the {profile.name!r} link"
            )
            error.simulated_seconds = latency
            raise error
        self._pause(latency)
        response = self.handler(frame)
        with self._lock:
            self.stats.frames_delivered += 1
        return response
