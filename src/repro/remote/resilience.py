"""Retries, circuit breaking, and degradation for the remote transport.

The in-process reproduction never fails; a networked text source fails
routinely.  Three cooperating policies keep queries correct and the
accounting honest:

- :class:`RetryPolicy` — exponential backoff with a cap and an optional
  per-call deadline.  Every failed attempt's wire time plus every
  backoff pause is *wasted* seconds; the transport charges that waste
  into the ledger's ``seconds_retried`` channel so retry overhead is as
  visible as the paper's ``c_i``-dominated costs.
- :class:`CircuitBreaker` — after ``failure_threshold`` consecutive
  failures the circuit opens and calls are refused locally (no wire,
  no wasted seconds) until ``recovery_time`` has passed; then a limited
  number of half-open probes decide between closing and re-opening.
  Every state transition is recorded (and traced by the client).
- :class:`DegradationPolicy` — the optimizer-facing knob: while the
  source is degraded (breaker not closed, or a forced flag), the
  executor shrinks semi-join batch capacity — smaller searches lose
  less work per failed frame — and can fall back from SJ-family methods
  to plain TS, whose per-tuple searches are individually retryable.

The breaker takes an injectable clock so tests can drive recovery
without sleeping.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.errors import GatewayError

__all__ = [
    "RetryPolicy",
    "CircuitBreaker",
    "DegradationPolicy",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
]

BREAKER_CLOSED = "closed"
BREAKER_OPEN = "open"
BREAKER_HALF_OPEN = "half-open"


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with a per-call deadline.

    ``max_attempts`` counts the first try: ``max_attempts=4`` means one
    call plus up to three retries.  ``deadline`` (seconds, simulated
    wire time) bounds the *whole* call including backoff pauses; once
    exceeded, no further attempt is made even if attempts remain.
    """

    max_attempts: int = 4
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25
    deadline: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise GatewayError("max_attempts must be at least 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise GatewayError("backoff delays must be non-negative")
        if self.multiplier < 1.0:
            raise GatewayError("backoff multiplier must be >= 1")
        if self.deadline is not None and self.deadline <= 0:
            raise GatewayError("deadline must be positive when given")

    def backoff(self, attempt: int) -> float:
        """Pause before retry number ``attempt`` (1 = first retry)."""
        if attempt < 1:
            raise GatewayError("attempt numbers start at 1")
        return min(self.base_delay * self.multiplier ** (attempt - 1), self.max_delay)

    def exhausted(self, attempts_made: int, elapsed: float) -> bool:
        """No more attempts allowed after ``attempts_made`` tries?"""
        if attempts_made >= self.max_attempts:
            return True
        return self.deadline is not None and elapsed >= self.deadline


#: One breaker transition: (clock time, from-state, to-state).
Transition = Tuple[float, str, str]


class CircuitBreaker:
    """A three-state breaker with half-open probing.

    Thread-safe; all state moves happen under one lock.  The breaker
    never sleeps — ``recovery_time`` is measured against the injected
    ``clock``, so tests can advance time explicitly.

    Half-open admission is gated to ``half_open_probes`` *in-flight*
    trial calls, correlated by thread: under pooled dispatch, calls
    admitted before the circuit tripped can still be in flight when the
    breaker reaches half-open, and their late outcomes must not decide
    the probe — a stale success would close the circuit (admitting the
    whole pool while the source may still be down) and a stale failure
    would re-open it under the actual probe.  Only outcomes recorded by
    a thread that :meth:`allow` admitted *as a probe* move the
    half-open state; everyone else's are ignored until the probe rules.
    """

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_time: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise GatewayError("failure_threshold must be at least 1")
        if recovery_time < 0:
            raise GatewayError("recovery_time must be non-negative")
        if half_open_probes < 1:
            raise GatewayError("half_open_probes must be at least 1")
        self.failure_threshold = failure_threshold
        self.recovery_time = recovery_time
        self.half_open_probes = half_open_probes
        self.clock = clock
        self.transitions: List[Transition] = []
        self._lock = threading.Lock()
        self._state = BREAKER_CLOSED
        self._consecutive_failures = 0
        self._opened_at = 0.0
        #: Thread idents of in-flight half-open probes.
        self._probe_threads: set = set()

    # ------------------------------------------------------------------
    def _move(self, new_state: str) -> None:
        self.transitions.append((self.clock(), self._state, new_state))
        self._state = new_state

    @property
    def state(self) -> str:
        with self._lock:
            self._maybe_half_open()
            return self._state

    def _maybe_half_open(self) -> None:
        if (
            self._state == BREAKER_OPEN
            and self.clock() - self._opened_at >= self.recovery_time
        ):
            self._move(BREAKER_HALF_OPEN)
            self._probe_threads.clear()

    # ------------------------------------------------------------------
    def allow(self) -> bool:
        """May a call go out right now?  Half-open admits only probes."""
        with self._lock:
            self._maybe_half_open()
            if self._state == BREAKER_CLOSED:
                return True
            if self._state == BREAKER_OPEN:
                return False
            if len(self._probe_threads) < self.half_open_probes:
                ident = threading.get_ident()
                self._probe_threads.add(ident)
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            ident = threading.get_ident()
            was_probe = ident in self._probe_threads
            self._probe_threads.discard(ident)
            self._consecutive_failures = 0
            if self._state == BREAKER_HALF_OPEN and was_probe:
                self._move(BREAKER_CLOSED)

    def record_failure(self) -> None:
        with self._lock:
            self._maybe_half_open()
            ident = threading.get_ident()
            was_probe = ident in self._probe_threads
            self._probe_threads.discard(ident)
            if self._state == BREAKER_HALF_OPEN:
                if was_probe:
                    # The probe failed: straight back to open.
                    self._move(BREAKER_OPEN)
                    self._opened_at = self.clock()
                    self._consecutive_failures = 0
                return
            self._consecutive_failures += 1
            if (
                self._state == BREAKER_CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._move(BREAKER_OPEN)
                self._opened_at = self.clock()

    def drain_transitions(self, seen: int) -> List[Transition]:
        """Transitions recorded after the first ``seen`` (for tracing)."""
        with self._lock:
            return list(self.transitions[seen:])

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker({self.state}, "
            f"threshold={self.failure_threshold}, "
            f"recovery={self.recovery_time}s)"
        )


@dataclass
class DegradationPolicy:
    """Executor-facing view of source health.

    When ``degraded`` is true the executor and the SJ-family methods
    adapt: :meth:`effective_term_limit` shrinks the semi-join batch
    capacity (by ``shrink_factor``, floored at ``min_term_budget``), and
    :meth:`should_fallback` tells the executor to swap an annotated
    SJ-family method for plain TS.  Smaller batches bound the work lost
    when one frame fails; TS bounds it to a single tuple's search.

    Health comes from an attached :class:`CircuitBreaker` (degraded
    whenever the breaker is not closed) or from ``force_degraded``
    (manual override for tests and operations).
    """

    breaker: Optional[CircuitBreaker] = None
    shrink_factor: float = 0.5
    min_term_budget: int = 8
    fallback_to_ts: bool = True
    force_degraded: bool = False
    #: Method-name prefixes the fallback applies to.
    fallback_prefixes: Tuple[str, ...] = ("SJ",)
    #: How often each adaptation fired (observability).
    shrink_applications: int = field(default=0)
    fallback_applications: int = field(default=0)

    def __post_init__(self) -> None:
        if not 0.0 < self.shrink_factor <= 1.0:
            raise GatewayError("shrink_factor must be in (0, 1]")
        if self.min_term_budget < 1:
            raise GatewayError("min_term_budget must be at least 1")

    @property
    def degraded(self) -> bool:
        if self.force_degraded:
            return True
        return self.breaker is not None and self.breaker.state != BREAKER_CLOSED

    def effective_term_limit(self, term_limit: int) -> int:
        """The per-search term budget SJ batching may use right now."""
        if not self.degraded:
            return term_limit
        self.shrink_applications += 1
        return max(self.min_term_budget, int(term_limit * self.shrink_factor))

    def should_fallback(self, method_name: str) -> bool:
        """Swap this method for plain TS while the source is degraded?"""
        if not (self.degraded and self.fallback_to_ts):
            return False
        if any(method_name.startswith(prefix) for prefix in self.fallback_prefixes):
            self.fallback_applications += 1
            return True
        return False
