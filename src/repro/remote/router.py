"""Scatter-gather routing over a sharded text service.

:class:`ShardedTextTransport` presents the full text-server API —
``search``, ``search_batch``, ``retrieve``, ``retrieve_many``,
``document_frequency``, published meta — over N corpus shards, each
served by its own :class:`~repro.remote.transport.RemoteTextTransport`
(its own channel, retry policy and circuit breaker), so it drops into a
:class:`~repro.gateway.client.TextClient` exactly like a single remote
server:

- **searches scatter**: the expression goes to every shard concurrently
  and the per-shard result sets are merged by
  :meth:`~repro.textsys.sharding.ShardedCorpus.merge_results`, which
  restores the single-server docid ordering and sums the per-shard
  ``postings_processed`` counts — so the gateway charges exactly what
  it would have charged against the unsharded server and
  ``CostLedger.total`` stays bit-identical;
- **retrievals route**: a docid travels only to the shard that owns it,
  which is where the wall-clock win lives — a ``retrieve_many`` over N
  shards splits into N concurrent per-shard frame streams;
- **failover**: each shard may carry replicas; when the primary's
  transport gives up (retries exhausted, or its circuit breaker refuses
  the call outright), the same call is replayed against the next
  replica and the failover is recorded as a drainable event.  The
  primary's breaker keeps probing in the background of later calls, so
  a recovered primary is readopted automatically.

The merged published view keeps downstream layers working unchanged:
``document_count`` is the sum over shards, ``data_version`` is the sum
of the shard versions (monotone — any shard mutation moves it), and
``data_fingerprint`` is the tuple of per-shard fingerprints, which is
what :class:`~repro.gateway.cache.GatewayCache` validates against.
``counters`` is a live merged view over every shard server (replicas
included) that supports the usual ``snapshot``/``as_dict``/``-`` diffs.
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import CircuitOpenError, GatewayError, TextSystemError, TransportError
from repro.remote.resilience import CircuitBreaker, RetryPolicy
from repro.remote.transport import RemoteTextTransport, TransportEvent, TransportStats
from repro.textsys.documents import Document
from repro.textsys.parser import parse_search
from repro.textsys.query import SearchNode
from repro.textsys.result import ResultSet
from repro.textsys.server import BooleanTextServer, ServerCounters
from repro.textsys.sharding import ShardedCorpus, merge_scored_results, partition_store
from repro.textsys.vector import VectorQuery
from repro.textsys.vectorserver import VectorTextServer, build_vector_shard_servers

__all__ = [
    "ShardBackend",
    "MergedServerCounters",
    "ShardedTextTransport",
    "build_sharded_transport",
]


class ShardBackend:
    """One shard's primary transport plus its ordered failover chain."""

    def __init__(
        self,
        shard_id: int,
        primary: RemoteTextTransport,
        replicas: Sequence[RemoteTextTransport] = (),
    ) -> None:
        self.shard_id = shard_id
        self.primary = primary
        self.replicas = list(replicas)
        self.failovers = 0

    @property
    def transports(self) -> List[RemoteTextTransport]:
        return [self.primary] + self.replicas


class MergedServerCounters:
    """A live sum over every shard server's :class:`ServerCounters`.

    Reads aggregate on access (the parts keep mutating underneath);
    ``snapshot`` materialises a plain :class:`ServerCounters`, so the
    usual ``(after - before).as_dict()`` reporting idiom keeps working.
    """

    def __init__(self, parts: Sequence[ServerCounters]) -> None:
        self._parts = list(parts)

    @property
    def searches(self) -> int:
        return sum(part.searches for part in self._parts)

    @property
    def postings_processed(self) -> int:
        return sum(part.postings_processed for part in self._parts)

    @property
    def short_documents(self) -> int:
        return sum(part.short_documents for part in self._parts)

    @property
    def long_documents(self) -> int:
        return sum(part.long_documents for part in self._parts)

    def reset(self) -> None:
        for part in self._parts:
            part.reset()

    def snapshot(self) -> ServerCounters:
        return ServerCounters(
            searches=self.searches,
            postings_processed=self.postings_processed,
            short_documents=self.short_documents,
            long_documents=self.long_documents,
        )

    def as_dict(self) -> Dict[str, int]:
        return self.snapshot().as_dict()

    def __sub__(self, earlier: Any) -> ServerCounters:
        if isinstance(earlier, MergedServerCounters):
            earlier = earlier.snapshot()
        return self.snapshot() - earlier

    def __repr__(self) -> str:
        return f"MergedServerCounters({self.as_dict()})"


#: One scatter job: a backend plus the operation to run on a transport.
_Job = Tuple[ShardBackend, Callable[[RemoteTextTransport], Any]]


class ShardedTextTransport:
    """The text-server API scatter-gathered across shard transports."""

    def __init__(
        self,
        corpus: ShardedCorpus,
        backends: Sequence[ShardBackend],
        *,
        source_server: Optional[Any] = None,
    ) -> None:
        if len(backends) != corpus.shard_count:
            raise GatewayError(
                f"{corpus.shard_count} shards need {corpus.shard_count} "
                f"backends, got {len(backends)}"
            )
        self.corpus = corpus
        self.backends = list(backends)
        self._source_server = source_server
        self._lock = threading.Lock()
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pending_events: List[TransportEvent] = []

    # ------------------------------------------------------------------
    # pass-throughs: published schema and out-of-band counters
    # ------------------------------------------------------------------
    @property
    def store(self):
        """The *source* collection schema (partitioning is a snapshot)."""
        return self.corpus.source

    @property
    def index(self):
        if self._source_server is None:
            raise AttributeError(
                "this sharded transport was built without a source server; "
                "no merged index view is available"
            )
        return self._source_server.index

    @property
    def counters(self) -> MergedServerCounters:
        return MergedServerCounters(
            [
                transport.counters
                for backend in self.backends
                for transport in backend.transports
            ]
        )

    @property
    def profile(self):
        return self.backends[0].primary.profile

    @property
    def shard_count(self) -> int:
        return len(self.backends)

    @property
    def replica_count(self) -> int:
        """Replicas per shard (uniform by construction)."""
        return len(self.backends[0].replicas)

    @property
    def failovers(self) -> int:
        return sum(backend.failovers for backend in self.backends)

    @property
    def batch_limit(self) -> int:
        return min(backend.primary.batch_limit for backend in self.backends)

    @property
    def source_kind(self) -> str:
        """The shards' predicate semantics (uniform by construction)."""
        return self.backends[0].primary.source_kind

    # ------------------------------------------------------------------
    # published meta information (merged across shards)
    # ------------------------------------------------------------------
    @property
    def document_count(self) -> int:
        return sum(
            self._scatter_all(lambda transport: transport.document_count)
        )

    @property
    def term_limit(self) -> int:
        return min(self._scatter_all(lambda transport: transport.term_limit))

    @property
    def data_version(self) -> int:
        """Monotone merged version: the sum of the shard versions."""
        return sum(self._scatter_all(lambda transport: transport.data_version))

    @property
    def data_fingerprint(self) -> Tuple[Any, ...]:
        """The tuple of per-shard fingerprints (collision-free)."""
        return tuple(
            self._scatter_all(lambda transport: transport.data_fingerprint)
        )

    # ------------------------------------------------------------------
    # the foreign operations
    # ------------------------------------------------------------------
    def search(self, query: Union[SearchNode, str]) -> ResultSet:
        if isinstance(query, str):
            query = parse_search(query)
        partials = self._scatter_all(
            lambda transport, query=query: transport.search(query)
        )
        return self._merge(query, partials)

    def search_batch(
        self, queries: Sequence[Union[SearchNode, str]]
    ) -> List[ResultSet]:
        """Scatter the whole batch to every shard, merge per query."""
        parsed = [
            parse_search(query) if isinstance(query, str) else query
            for query in queries
        ]
        if not parsed:
            raise TextSystemError("a batch must contain at least one search")
        if len(parsed) > self.batch_limit:
            raise TextSystemError(
                f"batch of {len(parsed)} searches exceeds the limit of "
                f"{self.batch_limit}"
            )
        per_shard = self._scatter_all(
            lambda transport, parsed=parsed: transport.search_batch(parsed)
        )
        return [
            self._merge(query, [answers[position] for answers in per_shard])
            for position, query in enumerate(parsed)
        ]

    def retrieve(self, docid: str) -> Document:
        backend = self.backends[self.corpus.shard_of(docid)]
        return self._on_backend(
            backend, lambda transport, docid=docid: transport.retrieve(docid)
        )

    def retrieve_many(self, docids: Sequence[str]) -> List[Document]:
        """Route docids to their shards, fetch the groups concurrently."""
        wanted = list(docids)
        if not wanted:
            return []
        groups: Dict[int, List[Tuple[int, str]]] = {}
        for position, docid in enumerate(wanted):
            groups.setdefault(self.corpus.shard_of(docid), []).append(
                (position, docid)
            )
        jobs: List[_Job] = []
        placements: List[List[int]] = []
        for shard_id in sorted(groups):
            entries = groups[shard_id]
            shard_docids = [docid for _, docid in entries]
            jobs.append(
                (
                    self.backends[shard_id],
                    lambda transport, shard_docids=shard_docids: (
                        transport.retrieve_many(shard_docids)
                    ),
                )
            )
            placements.append([position for position, _ in entries])
        fetched = self._scatter(jobs)
        documents: List[Optional[Document]] = [None] * len(wanted)
        for positions, shard_documents in zip(placements, fetched):
            for position, document in zip(positions, shard_documents):
                documents[position] = document
        return documents  # type: ignore[return-value]

    def document_frequency(self, field_name: str, term: str) -> int:
        """Shards partition the collection, so frequencies sum exactly."""
        return sum(
            self._scatter_all(
                lambda transport: transport.document_frequency(field_name, term)
            )
        )

    # ------------------------------------------------------------------
    # accounting drain (pulled by the metered client)
    # ------------------------------------------------------------------
    def drain_accounting(self) -> Tuple[float, List[TransportEvent]]:
        """Aggregate every shard transport's pending waste and events,
        plus the router's own failover events."""
        with self._lock:
            events = self._pending_events
            self._pending_events = []
        waste = 0.0
        for backend in self.backends:
            for transport in backend.transports:
                shard_waste, shard_events = transport.drain_accounting()
                waste += shard_waste
                events.extend(shard_events)
        return waste, events

    @property
    def stats(self) -> TransportStats:
        """The element-wise sum of every shard transport's stats."""
        total = TransportStats()
        for backend in self.backends:
            for transport in backend.transports:
                stats = transport.stats
                total.calls += stats.calls
                total.attempts += stats.attempts
                total.retries += stats.retries
                total.failures += stats.failures
                total.frames_sent += stats.frames_sent
                total.breaker_trips += stats.breaker_trips
                total.seconds_retried += stats.seconds_retried
                total.wall_seconds += stats.wall_seconds
        return total

    def report(self) -> Dict[str, Any]:
        """JSON-friendly scatter-gather report (totals plus per shard)."""
        return {
            "shards": self.shard_count,
            "replicas_per_shard": self.replica_count,
            "scheme": self.corpus.scheme,
            "failovers": self.failovers,
            "totals": self.stats.as_dict(),
            "per_shard": [
                {
                    "shard": backend.shard_id,
                    "documents": len(self.corpus.stores[backend.shard_id]),
                    "failovers": backend.failovers,
                    "breaker_state": backend.primary.breaker.state,
                    "frames_sent": backend.primary.stats.frames_sent,
                    "seconds_retried": round(
                        backend.primary.stats.seconds_retried, 6
                    ),
                }
                for backend in self.backends
            ],
        }

    def close(self) -> None:
        """Shut every shard transport and the scatter pool down."""
        for backend in self.backends:
            for transport in backend.transports:
                transport.close()
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        profile = getattr(self.profile, "name", "loopback")
        return (
            f"ShardedTextTransport({self.shard_count} shards x "
            f"{1 + self.replica_count} servers, {profile}, "
            f"scheme={self.corpus.scheme}, failovers={self.failovers})"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _merge(self, query: Any, partials: List[ResultSet]) -> ResultSet:
        """Merge per-shard answers with the query's own semantics.

        Boolean results restore the single-server docid ordering
        (:meth:`ShardedCorpus.merge_results`); ranked results re-sort by
        ``(-score, docid)`` and re-truncate to the *global* top-k — each
        shard already ranked locally, and the global top-k is a subset
        of the union of the shard top-ks, so local truncation loses
        nothing.
        """
        if isinstance(query, VectorQuery):
            return merge_scored_results(partials, query.top_k)
        return self.corpus.merge_results(partials)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=len(self.backends),
                    thread_name_prefix="repro-shard",
                )
            return self._pool

    def _on_backend(
        self,
        backend: ShardBackend,
        operation: Callable[[RemoteTextTransport], Any],
    ) -> Any:
        """Run one operation with failover down the backend's chain.

        Only transport-level unavailability fails over — retries
        exhausted (:class:`TransportError`) or the breaker refusing the
        call (:class:`CircuitOpenError`).  Server-side semantic errors
        (term limit, unknown docid, ...) are identical on every replica
        and propagate untouched.
        """
        last_error: Optional[Exception] = None
        for transport in backend.transports:
            if last_error is not None:
                with self._lock:
                    backend.failovers += 1
                    self._pending_events.append(
                        TransportEvent(
                            "failover",
                            f"shard {backend.shard_id}: primary unavailable "
                            f"({last_error}); replica serving",
                        )
                    )
            try:
                return operation(transport)
            except (TransportError, CircuitOpenError) as exc:
                last_error = exc
        raise last_error  # type: ignore[misc]

    def _scatter(self, jobs: Sequence[_Job]) -> List[Any]:
        """Run the jobs, concurrently when there is more than one."""
        if len(jobs) <= 1:
            return [self._on_backend(backend, operation) for backend, operation in jobs]
        pool = self._ensure_pool()
        futures = [
            pool.submit(self._on_backend, backend, operation)
            for backend, operation in jobs
        ]
        return [future.result() for future in futures]

    def _scatter_all(
        self, operation: Callable[[RemoteTextTransport], Any]
    ) -> List[Any]:
        return self._scatter([(backend, operation) for backend in self.backends])


def build_sharded_transport(
    server_or_store: Any,
    shards: int,
    *,
    replicas: int = 0,
    scheme: str = "hash",
    profile: Union[str, Any] = "wan",
    seed: int = 0,
    time_scale: float = 1.0,
    retry: Optional[RetryPolicy] = None,
    breaker_factory: Optional[Callable[[], CircuitBreaker]] = None,
    pool_size: int = 1,
    batch_frame_size: int = 4,
    batch_limit: Optional[int] = None,
    term_limit: Optional[int] = None,
    engine_mode: Optional[str] = None,
) -> ShardedTextTransport:
    """Partition a corpus and stand up the whole sharded service.

    Accepts either a :class:`BooleanTextServer` (whose store, term limit
    and index are reused as the source view) or a bare
    :class:`~repro.textsys.documents.DocumentStore`.  Every shard gets
    ``1 + replicas`` servers over its shard store, each behind its own
    fault-injecting channel (deterministically distinct seeds derived
    from ``seed``), retry policy, and circuit breaker.
    """
    if replicas < 0:
        raise GatewayError("replicas must be non-negative")
    source_server = None
    store = server_or_store
    if isinstance(server_or_store, BooleanTextServer) or hasattr(
        server_or_store, "store"
    ):
        source_server = server_or_store
        store = server_or_store.store
    if term_limit is None:
        term_limit = getattr(source_server, "term_limit", None)
    if engine_mode is None:
        # Shards inherit the source server's engine so the deployment
        # change never swaps evaluation kernels underneath the caller.
        engine_mode = getattr(source_server, "engine_mode", None)
    corpus = partition_store(store, shards, scheme=scheme)
    vector_field = None
    vector_servers: List[VectorTextServer] = []
    if getattr(source_server, "source_kind", "boolean") == "vector":
        # Vector shards must score with *global* collection statistics
        # (idf, document norms) so per-shard rankings merge into exactly
        # the unsharded ranking; build_vector_shard_servers measures the
        # statistics once on the source corpus and injects them.
        vector_field = source_server.field
        vector_servers = build_vector_shard_servers(
            corpus,
            vector_field,
            term_limit=term_limit
            if term_limit is not None
            else source_server.term_limit,
        )
    backends: List[ShardBackend] = []
    for shard_id, shard_store in enumerate(corpus.stores):
        shard_transports: List[RemoteTextTransport] = []
        for copy in range(1 + replicas):
            server_kwargs = {} if term_limit is None else {"term_limit": term_limit}
            if vector_field is not None:
                server = (
                    vector_servers[shard_id]
                    if copy == 0
                    else VectorTextServer(
                        shard_store,
                        vector_field,
                        term_limit=vector_servers[shard_id].term_limit,
                        statistics=vector_servers[shard_id].statistics,
                    )
                )
            else:
                server = BooleanTextServer(
                    shard_store, engine_mode=engine_mode, **server_kwargs
                )
            shard_transports.append(
                RemoteTextTransport(
                    server,
                    profile=profile,
                    # Distinct, reproducible fault streams per server.
                    seed=seed + 1009 * shard_id + 499 * copy,
                    time_scale=time_scale,
                    retry=retry,
                    breaker=breaker_factory() if breaker_factory else None,
                    pool_size=pool_size,
                    batch_frame_size=batch_frame_size,
                    batch_limit=batch_limit,
                )
            )
        backends.append(
            ShardBackend(shard_id, shard_transports[0], shard_transports[1:])
        )
    return ShardedTextTransport(corpus, backends, source_server=source_server)
