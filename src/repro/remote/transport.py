"""The client side of the wire: the full text-server API over a channel.

:class:`RemoteTextTransport` is a drop-in replacement for the in-process
:class:`~repro.textsys.server.BooleanTextServer` behind a
:class:`~repro.gateway.client.TextClient`: it implements ``search``,
``search_batch``, ``retrieve``, ``retrieve_many``,
``document_frequency`` and the published meta information
(``document_count``, ``term_limit``, ``data_version``) by encoding each
operation as a wire frame, sending it over a (typically fault-injecting)
channel, and decoding the response.

On top of the bare wire it layers the resilience machinery:

- every call runs under a :class:`~repro.remote.resilience.RetryPolicy`
  (exponential backoff, optional per-call deadline) and is gated by a
  :class:`~repro.remote.resilience.CircuitBreaker`;
- batched operations are split into frames of ``batch_frame_size``
  queries and dispatched over a bounded thread pool (``pool_size``
  workers), so frame latency overlaps; a failed frame is retried alone —
  frames that already succeeded are never resent;
- wasted simulated seconds (failed attempts' wire time plus backoff
  pauses) and every retry/breaker event accumulate until the metered
  client *drains* them (:meth:`drain_accounting`) into the ledger's
  ``seconds_retried`` channel and the call trace.

Separation of concerns: the transport never touches the cost ledger
directly.  The :class:`~repro.gateway.client.TextClient` charges the
usual Section 4.1 costs from the *results* — which are identical to the
in-process results — so installing a transport changes wall-clock
behaviour and adds ``seconds_retried``, but leaves ``CostLedger.total``
bit-identical for the same answered calls.

``store``, ``counters`` and ``index`` pass through to the wrapped
in-process server: they model the *published* collection schema and the
server-side usage counters that the reproduction's harnesses read out of
band, not data that travels per-call.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import (
    CircuitOpenError,
    GatewayError,
    RemoteProtocolError,
    TextSystemError,
    TransportError,
)
from repro.remote.channel import (
    FAULT_PROFILES,
    FaultInjectingChannel,
    LoopbackChannel,
)
from repro.remote.codec import (
    decode_response,
    document_from_wire,
    encode_request,
    node_to_wire,
    result_from_wire,
)
from repro.remote.endpoint import TextServerEndpoint, resolve_remote_error
from repro.remote.resilience import BREAKER_OPEN, CircuitBreaker, RetryPolicy
from repro.textsys.batching import DEFAULT_BATCH_LIMIT
from repro.textsys.documents import Document
from repro.textsys.parser import parse_search
from repro.textsys.query import SearchNode
from repro.textsys.result import ResultSet

__all__ = [
    "TransportEvent",
    "TransportStats",
    "RemoteTextTransport",
    "install_transport",
]


@dataclass(frozen=True)
class TransportEvent:
    """One traced transport happening: a retry, give-up, or breaker move."""

    kind: str  # "retry" | "breaker"
    detail: str


@dataclass
class TransportStats:
    """Cumulative transport behaviour (wall clock vs simulated waste)."""

    calls: int = 0
    attempts: int = 0
    retries: int = 0
    failures: int = 0
    frames_sent: int = 0
    breaker_trips: int = 0
    seconds_retried: float = 0.0  # simulated seconds wasted on failures
    wall_seconds: float = 0.0  # real time spent inside transport calls

    def as_dict(self) -> Dict[str, Any]:
        return {
            "calls": self.calls,
            "attempts": self.attempts,
            "retries": self.retries,
            "failures": self.failures,
            "frames_sent": self.frames_sent,
            "breaker_trips": self.breaker_trips,
            "seconds_retried": self.seconds_retried,
            "wall_seconds": self.wall_seconds,
        }


def install_transport(client: Any, transport: "RemoteTextTransport") -> "RemoteTextTransport":
    """Point a metered client's foreign calls at a remote transport.

    After this, every ``client`` operation travels the transport's
    channel; the client automatically drains the transport's retry waste
    into ``ledger.seconds_retried`` and its events into the call trace.
    """
    client.server = transport
    return transport


class RemoteTextTransport:
    """The text-server API spoken over a frame channel with resilience."""

    def __init__(
        self,
        server: Optional[Any] = None,
        *,
        channel: Optional[LoopbackChannel] = None,
        profile: Union[str, Any] = "wan",
        seed: int = 0,
        time_scale: float = 1.0,
        retry: Optional[RetryPolicy] = None,
        breaker: Optional[CircuitBreaker] = None,
        pool_size: int = 1,
        batch_frame_size: int = 4,
        batch_limit: Optional[int] = None,
    ) -> None:
        if channel is None:
            if server is None:
                raise GatewayError("a transport needs a server or a channel")
            if isinstance(profile, str):
                try:
                    profile = FAULT_PROFILES[profile]
                except KeyError:
                    raise GatewayError(
                        f"unknown fault profile {profile!r}; "
                        f"known: {sorted(FAULT_PROFILES)}"
                    ) from None
            channel = FaultInjectingChannel(
                TextServerEndpoint(server).handle,
                profile,
                seed=seed,
                time_scale=time_scale,
            )
        if pool_size < 1:
            raise GatewayError("pool_size must be at least 1")
        if batch_frame_size < 1:
            raise GatewayError("batch_frame_size must be at least 1")
        self._server = server
        self.channel = channel
        self.retry = retry if retry is not None else RetryPolicy()
        self.breaker = (
            breaker
            if breaker is not None
            else CircuitBreaker(failure_threshold=8, recovery_time=0.25)
        )
        self.pool_size = pool_size
        self.batch_frame_size = batch_frame_size
        self._batch_limit = batch_limit
        self.stats = TransportStats()
        self._time_scale = getattr(channel, "time_scale", 1.0)
        self._sleep = time.sleep
        self._lock = threading.Lock()
        self._frame_ids = itertools.count(1)
        self._pool: Optional[ThreadPoolExecutor] = None
        self._pending_waste = 0.0
        self._pending_events: List[TransportEvent] = []
        self._transitions_seen = 0
        self._meta: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # pass-throughs: published schema and out-of-band counters
    # ------------------------------------------------------------------
    @property
    def store(self):
        return self._server.store

    @property
    def index(self):
        return self._server.index

    @property
    def counters(self):
        return self._server.counters

    @property
    def profile(self):
        """The channel's fault profile (``None`` on a bare loopback)."""
        return getattr(self.channel, "profile", None)

    @property
    def batch_limit(self) -> int:
        if self._batch_limit is not None:
            return self._batch_limit
        backing = getattr(self._server, "batch_limit", None)
        return backing if backing is not None else DEFAULT_BATCH_LIMIT

    # ------------------------------------------------------------------
    # published meta information (one wire call, then cached; the data
    # version is always fetched fresh because it is what moves)
    # ------------------------------------------------------------------
    def _fetch_meta(self) -> Dict[str, Any]:
        return self._call("meta", {}, "meta")

    def _cached_meta(self) -> Dict[str, Any]:
        if self._meta is None:
            self._meta = self._fetch_meta()
        return self._meta

    @property
    def document_count(self) -> int:
        return self._cached_meta()["document_count"]

    @property
    def term_limit(self) -> int:
        return self._cached_meta()["term_limit"]

    @property
    def source_kind(self) -> str:
        """The backend's predicate semantics, as published in its meta.

        Pre-``source_kind`` endpoints omit the key; they are Boolean.
        """
        return self._cached_meta().get("source_kind", "boolean")

    @property
    def data_version(self) -> int:
        return self._fetch_meta()["data_version"]

    @property
    def data_fingerprint(self):
        """The server's collision-free validation key (fetched fresh).

        Tuples travel the JSON wire as lists; they are restored here so
        the fingerprint compares equal to the in-process one.
        """
        fingerprint = self._fetch_meta().get("data_fingerprint")
        if fingerprint is None:
            return None
        return tuple(
            tuple(part) if isinstance(part, list) else part for part in fingerprint
        )

    # ------------------------------------------------------------------
    # the foreign operations
    # ------------------------------------------------------------------
    def search(self, query: Union[SearchNode, str]) -> ResultSet:
        if isinstance(query, str):
            query = parse_search(query)
        payload = self._call("search", {"query": node_to_wire(query)}, "search")
        return result_from_wire(payload["result"])

    def search_batch(
        self, queries: Sequence[Union[SearchNode, str]]
    ) -> List[ResultSet]:
        """Many searches, frame-split and dispatched over the pool.

        Answers come back in query order.  A frame that fails is retried
        by itself; frames that already succeeded are never resent.
        """
        parsed = [
            parse_search(query) if isinstance(query, str) else query
            for query in queries
        ]
        if not parsed:
            raise TextSystemError("a batch must contain at least one search")
        if len(parsed) > self.batch_limit:
            raise TextSystemError(
                f"batch of {len(parsed)} searches exceeds the limit of "
                f"{self.batch_limit}"
            )
        frames = self._frame_split(parsed, self.batch_frame_size)

        def run(frame: List[SearchNode], position: int) -> List[ResultSet]:
            payload = self._call(
                "search_batch",
                {"queries": [node_to_wire(query) for query in frame]},
                f"search_batch#{position}",
            )
            return [result_from_wire(wire) for wire in payload["results"]]

        return [
            result for frame in self._dispatch(frames, run) for result in frame
        ]

    def retrieve(self, docid: str) -> Document:
        payload = self._call("retrieve", {"docid": docid}, "retrieve")
        return document_from_wire(payload["document"])

    def retrieve_many(self, docids: Iterable[str]) -> List[Document]:
        """Many long forms, frame-split and dispatched over the pool."""
        wanted = list(docids)
        if not wanted:
            return []
        frames = self._frame_split(wanted, self.batch_frame_size)

        def run(frame: List[str], position: int) -> List[Document]:
            payload = self._call(
                "retrieve_many",
                {"docids": frame},
                f"retrieve_many#{position}",
            )
            return [document_from_wire(wire) for wire in payload["documents"]]

        return [
            document for frame in self._dispatch(frames, run) for document in frame
        ]

    def document_frequency(self, field_name: str, term: str) -> int:
        payload = self._call(
            "document_frequency",
            {"field": field_name, "term": term},
            "document_frequency",
        )
        return payload["frequency"]

    # ------------------------------------------------------------------
    # accounting drain (pulled by the metered client)
    # ------------------------------------------------------------------
    def drain_accounting(self) -> Tuple[float, List[TransportEvent]]:
        """Hand pending waste + events to the caller, clearing them.

        The :class:`~repro.gateway.client.TextClient` calls this after
        every foreign operation: the wasted seconds land in the ledger's
        ``seconds_retried`` channel and each event becomes a traced span.
        """
        with self._lock:
            waste = self._pending_waste
            events = self._pending_events
            self._pending_waste = 0.0
            self._pending_events = []
        return waste, events

    def report(self) -> Dict[str, Any]:
        """JSON-friendly transport report: stats, channel, breaker."""
        report = self.stats.as_dict()
        report["channel"] = self.channel.stats.as_dict()
        report["breaker_state"] = self.breaker.state
        report["breaker_transitions"] = [
            f"{old} -> {new}" for _, old, new in self.breaker.transitions
        ]
        return report

    def close(self) -> None:
        """Shut the connection pool down (idempotent)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __repr__(self) -> str:
        profile = getattr(self.channel, "profile", None)
        name = getattr(profile, "name", "loopback")
        return (
            f"RemoteTextTransport({name}, pool={self.pool_size}, "
            f"breaker={self.breaker.state}, "
            f"retried={self.stats.seconds_retried:.3f}s)"
        )

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    @staticmethod
    def _frame_split(items: List[Any], size: int) -> List[List[Any]]:
        return [items[start : start + size] for start in range(0, len(items), size)]

    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.pool_size,
                    thread_name_prefix="repro-remote",
                )
            return self._pool

    def _dispatch(
        self,
        frames: List[Any],
        run: Callable[[Any, int], Any],
    ) -> List[Any]:
        """Run one callable per frame, concurrently when pooled."""
        if self.pool_size <= 1 or len(frames) <= 1:
            return [run(frame, position) for position, frame in enumerate(frames)]
        pool = self._ensure_pool()
        futures = [
            pool.submit(run, frame, position)
            for position, frame in enumerate(frames)
        ]
        return [future.result() for future in futures]

    def _record_event(self, kind: str, detail: str) -> None:
        with self._lock:
            self._pending_events.append(TransportEvent(kind, detail))

    def _add_waste(self, simulated_seconds: float) -> None:
        if simulated_seconds <= 0:
            return
        with self._lock:
            self._pending_waste += simulated_seconds
            self.stats.seconds_retried += simulated_seconds

    def _note_breaker(self) -> None:
        """Turn new breaker transitions into traceable events.

        The read of ``_transitions_seen``, the drain, and the cursor
        advance must form one atomic step: two pool workers racing here
        would otherwise drain the same transitions (duplicate breaker
        events) while advancing the cursor twice (losing later ones).
        """
        with self._lock:
            transitions = self.breaker.drain_transitions(self._transitions_seen)
            if not transitions:
                return
            self._transitions_seen += len(transitions)
            for _, old_state, new_state in transitions:
                if new_state == BREAKER_OPEN:
                    self.stats.breaker_trips += 1
                self._pending_events.append(
                    TransportEvent("breaker", f"{old_state} -> {new_state}")
                )

    def _pause(self, simulated_seconds: float) -> None:
        real = simulated_seconds * self._time_scale
        if real > 0:
            self._sleep(real)

    def _call(self, op: str, payload: Dict[str, Any], label: str) -> Dict[str, Any]:
        started = time.perf_counter()
        with self._lock:
            self.stats.calls += 1
        try:
            return self._call_with_retry(op, payload, label)
        finally:
            with self._lock:
                self.stats.wall_seconds += time.perf_counter() - started

    def _call_with_retry(
        self, op: str, payload: Dict[str, Any], label: str
    ) -> Dict[str, Any]:
        policy = self.retry
        attempts = 0
        elapsed = 0.0  # simulated seconds spent on this call so far
        while True:
            if not self.breaker.allow():
                self._record_event("breaker", f"{label}: refused (circuit open)")
                raise CircuitOpenError(
                    f"circuit open: {label} refused without touching the wire"
                )
            frame_id = next(self._frame_ids)
            frame = encode_request(frame_id, op, payload)
            attempts += 1
            with self._lock:
                self.stats.attempts += 1
                self.stats.frames_sent += 1
            try:
                response = self.channel.send(frame)
            except TransportError as exc:
                wasted = getattr(exc, "simulated_seconds", 0.0)
                elapsed += wasted
                self._add_waste(wasted)
                self.breaker.record_failure()
                self._note_breaker()
                if policy.exhausted(attempts, elapsed):
                    with self._lock:
                        self.stats.failures += 1
                    self._record_event(
                        "retry", f"{label}: gave up after {attempts} attempts ({exc})"
                    )
                    raise
                pause = policy.backoff(attempts)
                elapsed += pause
                self._add_waste(pause)
                with self._lock:
                    self.stats.retries += 1
                self._record_event(
                    "retry",
                    f"{label}: attempt {attempts} failed ({exc}); "
                    f"backing off {pause:.3f}s",
                )
                self._pause(pause)
                continue
            self.breaker.record_success()
            self._note_breaker()
            response_id, ok, body = decode_response(response)
            if response_id != frame_id:
                raise RemoteProtocolError(
                    f"response frame {response_id} does not match request {frame_id}"
                )
            if not ok:
                raise resolve_remote_error(body["type"], body["message"])
            return body
