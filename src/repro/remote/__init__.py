"""Remote text-source transport: a simulated network between gateway and server.

The reproduction's loose integration becomes *physically* loose here: a
wire protocol (:mod:`~repro.remote.codec`), a fault-injecting channel
with named link profiles (:mod:`~repro.remote.channel`), a resilience
layer of retries, circuit breaking and degradation
(:mod:`~repro.remote.resilience`), and a pooled transport implementing
the full text-server API over frames
(:mod:`~repro.remote.transport`).

Install with::

    from repro.remote import RemoteTextTransport, install_transport

    transport = RemoteTextTransport(server, profile="flaky", seed=7)
    install_transport(client, transport)

With no transport installed, nothing here runs and the gateway's cost
accounting stays bit-identical to the in-process reproduction.
"""

from repro.remote.channel import (
    FAULT_PROFILES,
    ChannelStats,
    FaultInjectingChannel,
    FaultProfile,
    LoopbackChannel,
)
from repro.remote.codec import (
    decode_request,
    decode_response,
    document_from_wire,
    document_to_wire,
    encode_error,
    encode_request,
    encode_response,
    node_from_wire,
    node_to_wire,
    result_from_wire,
    result_to_wire,
)
from repro.remote.endpoint import TextServerEndpoint, resolve_remote_error
from repro.remote.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    CircuitBreaker,
    DegradationPolicy,
    RetryPolicy,
)
from repro.remote.router import (
    MergedServerCounters,
    ShardBackend,
    ShardedTextTransport,
    build_sharded_transport,
)
from repro.remote.transport import (
    RemoteTextTransport,
    TransportEvent,
    TransportStats,
    install_transport,
)

__all__ = [
    "FaultProfile",
    "FAULT_PROFILES",
    "ChannelStats",
    "LoopbackChannel",
    "FaultInjectingChannel",
    "node_to_wire",
    "node_from_wire",
    "document_to_wire",
    "document_from_wire",
    "result_to_wire",
    "result_from_wire",
    "encode_request",
    "decode_request",
    "encode_response",
    "encode_error",
    "decode_response",
    "TextServerEndpoint",
    "resolve_remote_error",
    "RetryPolicy",
    "CircuitBreaker",
    "DegradationPolicy",
    "BREAKER_CLOSED",
    "BREAKER_OPEN",
    "BREAKER_HALF_OPEN",
    "RemoteTextTransport",
    "TransportEvent",
    "TransportStats",
    "install_transport",
    "ShardBackend",
    "MergedServerCounters",
    "ShardedTextTransport",
    "build_sharded_transport",
]
