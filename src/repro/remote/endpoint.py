"""The server side of the wire: decode frames, run the text server.

:class:`TextServerEndpoint` is what would run *next to* Mercury: it
receives one request frame (a JSON string), dispatches it to the wrapped
:class:`~repro.textsys.server.BooleanTextServer`, and encodes the answer
(or the server-side exception) as a response frame.

Server-side exceptions do not tear down the link: they travel back as
typed error frames and are re-raised client-side as the same
:mod:`repro.errors` class (``SearchLimitExceeded`` on the client means
exactly what it means in-process).  Only transport faults — injected by
the channel, never by this endpoint — surface as
:class:`~repro.errors.TransportError`.

Dispatch into the underlying server is serialised with a lock: the
in-process server mutates usage counters and is not thread-safe, while
the connection pool sends frames concurrently.  The lock is held only
for index evaluation — simulated wire latency is paid in the channel,
outside the lock — so concurrent dispatch still overlaps the expensive
part of a remote call.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Dict

import repro.errors as errors_module
from repro.errors import RemoteProtocolError, ReproError
from repro.remote.codec import (
    decode_request,
    document_to_wire,
    encode_error,
    encode_response,
    node_from_wire,
    result_to_wire,
)

__all__ = ["TextServerEndpoint", "resolve_remote_error"]


def resolve_remote_error(error_type: str, message: str) -> ReproError:
    """Map a wire error frame back to the library exception it encodes."""
    exception_class = getattr(errors_module, error_type, None)
    if isinstance(exception_class, type) and issubclass(exception_class, ReproError):
        return exception_class(message)
    return RemoteProtocolError(f"remote {error_type}: {message}")


class TextServerEndpoint:
    """Frame-level dispatcher over an in-process text server."""

    def __init__(self, server: Any) -> None:
        self.server = server
        self._lock = threading.Lock()
        self._operations: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
            "search": self._op_search,
            "search_batch": self._op_search_batch,
            "retrieve": self._op_retrieve,
            "retrieve_many": self._op_retrieve_many,
            "document_frequency": self._op_document_frequency,
            "meta": self._op_meta,
        }

    # ------------------------------------------------------------------
    # the frame handler (what the channel calls)
    # ------------------------------------------------------------------
    def handle(self, frame: str) -> str:
        frame_id, op, payload = decode_request(frame)
        operation = self._operations.get(op)
        if operation is None:
            return encode_error(frame_id, "RemoteProtocolError", f"unknown op {op!r}")
        try:
            with self._lock:
                result = operation(payload)
        except ReproError as exc:
            return encode_error(frame_id, type(exc).__name__, str(exc))
        return encode_response(frame_id, result)

    # ------------------------------------------------------------------
    # operations
    # ------------------------------------------------------------------
    def _op_search(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        result = self.server.search(node_from_wire(payload["query"]))
        return {"result": result_to_wire(result)}

    def _op_search_batch(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        queries = [node_from_wire(wire) for wire in payload["queries"]]
        return {
            "results": [result_to_wire(self.server.search(query)) for query in queries]
        }

    def _op_retrieve(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return {"document": document_to_wire(self.server.retrieve(payload["docid"]))}

    def _op_retrieve_many(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "documents": [
                document_to_wire(self.server.retrieve(docid))
                for docid in payload["docids"]
            ]
        }

    def _op_document_frequency(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        return {
            "frequency": self.server.document_frequency(
                payload["field"], payload["term"]
            )
        }

    def _op_meta(self, payload: Dict[str, Any]) -> Dict[str, Any]:
        fingerprint = getattr(self.server, "data_fingerprint", None)
        return {
            "document_count": self.server.document_count,
            "term_limit": self.server.term_limit,
            "data_version": getattr(self.server, "data_version", 0),
            "data_fingerprint": list(fingerprint) if fingerprint is not None else None,
            "source_kind": getattr(self.server, "source_kind", "boolean"),
        }
