"""Wire-protocol JSON codecs for the remote text-source transport.

The in-process reproduction passes :class:`~repro.textsys.query.SearchNode`
trees, :class:`~repro.textsys.result.ResultSet` objects and
:class:`~repro.textsys.documents.Document` objects between the gateway
and the text server as Python objects.  A real loose integration (OpenODB
to the CMU Mercury server) serialises every call onto a network link; the
codecs here define that wire format:

- every search-expression node type round-trips through a tagged JSON
  object (``node_to_wire`` / ``node_from_wire``), preserving
  ``to_expression()`` exactly;
- documents and result sets round-trip losslessly
  (``document_to_wire`` / ``result_to_wire`` and their inverses);
- request/response **frames** wrap one operation each: a frame id for
  correlation, an op name, and the op's payload.  Batch operations carry
  many queries in one frame so that partial failures can be retried per
  frame (see :mod:`repro.remote.transport`).

Frames travel as JSON strings; nothing outside this module touches the
serialised form.  Malformed wire data raises
:class:`~repro.errors.RemoteProtocolError` rather than leaking JSON or
key errors.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Tuple

from repro.errors import RemoteProtocolError
from repro.textsys.documents import Document
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    PhraseQuery,
    ProximityQuery,
    SearchNode,
    TermQuery,
    TruncatedQuery,
)
from repro.textsys.result import ResultSet
from repro.textsys.vector import VectorQuery

__all__ = [
    "node_to_wire",
    "node_from_wire",
    "document_to_wire",
    "document_from_wire",
    "result_to_wire",
    "result_from_wire",
    "encode_request",
    "decode_request",
    "encode_response",
    "encode_error",
    "decode_response",
]


# ----------------------------------------------------------------------
# search expressions
# ----------------------------------------------------------------------
def node_to_wire(node: SearchNode) -> Dict[str, Any]:
    """Serialise one search-expression node to a tagged JSON object."""
    if isinstance(node, TermQuery):
        return {"type": "term", "field": node.field, "term": node.term}
    if isinstance(node, PhraseQuery):
        return {"type": "phrase", "field": node.field, "words": list(node.words)}
    if isinstance(node, TruncatedQuery):
        return {"type": "truncated", "field": node.field, "prefix": node.prefix}
    if isinstance(node, ProximityQuery):
        return {
            "type": "proximity",
            "field": node.field,
            "left": node.left,
            "right": node.right,
            "distance": node.distance,
        }
    if isinstance(node, AndQuery):
        return {"type": "and", "operands": [node_to_wire(op) for op in node.operands]}
    if isinstance(node, OrQuery):
        return {"type": "or", "operands": [node_to_wire(op) for op in node.operands]}
    if isinstance(node, NotQuery):
        return {"type": "not", "operand": node_to_wire(node.operand)}
    if isinstance(node, VectorQuery):
        # The vector backend's query object travels the same tagged
        # frame; ``top_k=None`` (no truncation) is JSON null.
        return {
            "type": "vector",
            "field": node.field,
            "terms": list(node.terms),
            "top_k": node.top_k,
            "threshold": node.threshold,
        }
    raise RemoteProtocolError(f"cannot encode search node {type(node).__name__}")


def node_from_wire(wire: Dict[str, Any]) -> SearchNode:
    """Rebuild a search-expression node from its tagged JSON object."""
    try:
        kind = wire["type"]
        if kind == "term":
            return TermQuery(wire["field"], wire["term"])
        if kind == "phrase":
            return PhraseQuery(wire["field"], tuple(wire["words"]))
        if kind == "truncated":
            return TruncatedQuery(wire["field"], wire["prefix"])
        if kind == "proximity":
            return ProximityQuery(
                wire["field"], wire["left"], wire["right"], wire["distance"]
            )
        if kind == "and":
            return AndQuery(tuple(node_from_wire(op) for op in wire["operands"]))
        if kind == "or":
            return OrQuery(tuple(node_from_wire(op) for op in wire["operands"]))
        if kind == "not":
            return NotQuery(node_from_wire(wire["operand"]))
        if kind == "vector":
            return VectorQuery(
                wire["field"],
                tuple(wire["terms"]),
                top_k=wire["top_k"],
                threshold=wire["threshold"],
            )
    except (KeyError, TypeError) as exc:
        raise RemoteProtocolError(f"malformed search-node wire object: {exc}") from exc
    raise RemoteProtocolError(f"unknown search-node type {kind!r}")


# ----------------------------------------------------------------------
# documents and result sets
# ----------------------------------------------------------------------
def document_to_wire(document: Document) -> Dict[str, Any]:
    return {"docid": document.docid, "fields": dict(document.fields)}


def document_from_wire(wire: Dict[str, Any]) -> Document:
    try:
        return Document(wire["docid"], dict(wire["fields"]))
    except (KeyError, TypeError) as exc:
        raise RemoteProtocolError(f"malformed document wire object: {exc}") from exc


def result_to_wire(result: ResultSet) -> Dict[str, Any]:
    wire = {
        "docids": list(result.docids),
        "documents": [document_to_wire(document) for document in result.documents],
        "postings_processed": result.postings_processed,
    }
    if result.scores:
        # Ranked results carry one score per docid; Boolean results omit
        # the key entirely (old frames stay decodable).
        wire["scores"] = list(result.scores)
    return wire


def result_from_wire(wire: Dict[str, Any]) -> ResultSet:
    try:
        return ResultSet(
            docids=tuple(wire["docids"]),
            documents=tuple(
                document_from_wire(document) for document in wire["documents"]
            ),
            postings_processed=wire["postings_processed"],
            scores=tuple(wire.get("scores", ())),
        )
    except (KeyError, TypeError) as exc:
        raise RemoteProtocolError(f"malformed result-set wire object: {exc}") from exc


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def encode_request(frame_id: int, op: str, payload: Dict[str, Any]) -> str:
    """One request frame: ``{"id": n, "op": name, "payload": {...}}``."""
    try:
        return json.dumps({"id": frame_id, "op": op, "payload": payload})
    except (TypeError, ValueError) as exc:
        raise RemoteProtocolError(f"unencodable request payload: {exc}") from exc


def decode_request(frame: str) -> Tuple[int, str, Dict[str, Any]]:
    try:
        wire = json.loads(frame)
        return wire["id"], wire["op"], wire["payload"]
    except (ValueError, KeyError, TypeError) as exc:
        raise RemoteProtocolError(f"malformed request frame: {exc}") from exc


def encode_response(frame_id: int, payload: Dict[str, Any]) -> str:
    """A success response frame, correlated by ``frame_id``."""
    try:
        return json.dumps({"id": frame_id, "ok": True, "payload": payload})
    except (TypeError, ValueError) as exc:
        raise RemoteProtocolError(f"unencodable response payload: {exc}") from exc


def encode_error(frame_id: int, error_type: str, message: str) -> str:
    """An error response frame carrying the server-side exception."""
    return json.dumps(
        {"id": frame_id, "ok": False, "error": {"type": error_type, "message": message}}
    )


def decode_response(frame: str) -> Tuple[int, bool, Dict[str, Any]]:
    """Returns ``(frame_id, ok, payload-or-error)``."""
    try:
        wire = json.loads(frame)
        if wire["ok"]:
            return wire["id"], True, wire["payload"]
        return wire["id"], False, wire["error"]
    except (ValueError, KeyError, TypeError) as exc:
        raise RemoteProtocolError(f"malformed response frame: {exc}") from exc
