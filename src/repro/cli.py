"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro table2          # E3: Table 2
    python -m repro ranking         # E7: predicted vs measured rankings
    python -m repro figures         # E4/E5/E6: the cost-formula sweeps
    python -m repro multijoin       # E8: PrL vs left-deep
    python -m repro enumeration     # E9: optimizer effort vs n
    python -m repro trace           # gateway cache + foreign-call trace
    python -m repro serve           # concurrent multi-tenant serving demo
    python -m repro all             # everything above (except serve)
    python -m repro all --seed 11   # a different synthetic world
    python -m repro table2 --trace  # append the foreign-call trace
    python -m repro table2 --remote flaky   # run over a faulty transport
    python -m repro serve --shards 4 --pool 4   # serve over shards
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import (
    cache_report,
    enumeration_report,
    fig1a_series,
    fig1b_series,
    fig2_grid,
    multijoin_report,
    ranking_report,
    table2_rows,
)
from repro.bench.reporting import ascii_table
from repro.gateway.cache import GatewayCache
from repro.gateway.tracing import CallTracer, format_trace
from repro.remote import (
    FAULT_PROFILES,
    CircuitBreaker,
    RemoteTextTransport,
    RetryPolicy,
    ShardedTextTransport,
    build_sharded_transport,
)
from repro.workload import build_default_scenario
from repro.workload.scenarios import build_prl_scenario

__all__ = ["main"]


def _print_table2(scenario) -> None:
    rows = []
    for query_id, runs in table2_rows(scenario).items():
        for run in runs:
            rows.append(
                [
                    query_id,
                    run.method,
                    round(run.measured_cost, 2),
                    run.predicted_cost and round(run.predicted_cost, 2),
                    run.searches,
                    run.results,
                ]
            )
    print(
        ascii_table(
            ["query", "method", "measured (s)", "predicted (s)",
             "searches", "results"],
            rows,
            title="E3: Table 2 — join method costs on Q1-Q4",
        )
    )


def _print_ranking(scenario) -> None:
    rows = [
        [
            entry["query"],
            " < ".join(entry["measured_order"]),
            entry["winner_match"],
            round(entry["kendall_tau"], 2),
        ]
        for entry in ranking_report(scenario)
    ]
    print(
        ascii_table(
            ["query", "measured order", "winner predicted", "tau"],
            rows,
            title="E7: does the cost model predict the ranking?",
        )
    )


def _print_figures() -> None:
    s1_values = [round(i / 10, 2) for i in range(11)]
    series = fig1a_series(s1_values)
    print(
        ascii_table(
            ["s1"] + list(series),
            [
                [s1] + [round(series[name][index], 1) for name in series]
                for index, s1 in enumerate(s1_values)
            ],
            title="E4: Figure 1(A) — cost vs s1 (Q3 shape)",
        )
    )
    print()
    ratios = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    series = fig1b_series(ratios)
    print(
        ascii_table(
            ["N1/N"] + list(series),
            [
                [ratio] + [round(series[name][index], 2) for name in series]
                for index, ratio in enumerate(ratios)
            ],
            title="E5: Figure 1(B) — cost vs N1/N (Q4 shape, s1=1)",
        )
    )
    print()
    print("E6: Figure 2 — winner per (s1 across, N1/N down); P = P+TS")
    ratio_values = [0.01] + [round(i / 10, 2) for i in range(1, 11)]
    grid = fig2_grid(s1_values, ratio_values)
    print("N1/N \\ s1 " + " ".join(f"{s1:>4}" for s1 in s1_values))
    for ratio, row in zip(ratio_values, grid):
        cells = " ".join(f"{'P' if w == 'P+TS' else 'T':>4}" for w in row)
        print(f"{ratio:>9} {cells}")


def _print_multijoin(scenario) -> None:
    for title, (target, query, spaces) in {
        "E8a: Q5 across execution spaces": (
            scenario, scenario.q5(), ("traditional", "prl", "extended")
        ),
        "E8b: PrL showcase (probe node strictly wins)": (
            *build_prl_scenario(), ("traditional", "prl")
        ),
    }.items():
        report = multijoin_report(target, query, spaces=spaces)
        rows = [
            [
                entry["space"],
                round(entry["estimated_cost"], 1),
                round(entry["measured_cost"], 1),
                entry["rows"],
            ]
            for entry in report
        ]
        print(ascii_table(["space", "estimated", "measured", "rows"], rows, title=title))
        for entry in report:
            print(f"\n[{entry['space']}]")
            print(entry["plan"])
        print()


def _print_trace(scenario) -> None:
    report = cache_report(scenario)
    rows = [
        [
            entry["workload"],
            entry["query"],
            entry["method"],
            round(entry["first_cost"], 2),
            round(entry["second_cost"], 2),
            f"{entry['reduction']:.0%}",
            entry["cache_hits"],
            entry["cache_misses"],
            round(entry["seconds_saved"], 2),
        ]
        for entry in report
    ]
    print(
        ascii_table(
            ["workload", "query", "method", "1st run (s)", "2nd run (s)",
             "reduction", "hits", "misses", "saved (s)"],
            rows,
            title="Gateway cache: cost of re-executing each workload",
        )
    )
    for entry in report:
        trace = entry["trace"]
        by_phase = ", ".join(
            f"{phase}={info['calls']}"
            for phase, info in trace["by_phase"].items()
        )
        print(
            f"\n[{entry['workload']} / {entry['query']}] "
            f"{trace['spans']} foreign calls, hit rate "
            f"{trace['hit_rate']:.0%}, phases: {by_phase}"
        )


def _print_transport_report(transport) -> None:
    report = transport.report()
    channel = report.pop("channel")
    transitions = report.pop("breaker_transitions")
    rows = [[key, value] for key, value in report.items()]
    rows += [[f"channel.{key}", value] for key, value in channel.items()]
    print(
        ascii_table(
            ["transport metric", "value"],
            rows,
            title=f"Remote transport ({transport.profile.name} profile)",
        )
    )
    if transitions:
        print("breaker transitions: " + ", ".join(
            f"{old}->{new}" for _, old, new in transitions
        ))


def _print_sharded_report(transport) -> None:
    report = transport.report()
    per_shard = report.pop("per_shard")
    totals = report.pop("totals")
    rows = [[key, value] for key, value in report.items()]
    rows += [[f"totals.{key}", round(value, 6)] for key, value in totals.items()]
    profile = getattr(transport.profile, "name", "loopback")
    print(
        ascii_table(
            ["sharding metric", "value"],
            rows,
            title=f"Sharded text service ({profile} profile)",
        )
    )
    print(
        ascii_table(
            ["shard", "documents", "failovers", "breaker", "frames", "retried s"],
            [
                [
                    shard["shard"],
                    shard["documents"],
                    shard["failovers"],
                    shard["breaker_state"],
                    shard["frames_sent"],
                    shard["seconds_retried"],
                ]
                for shard in per_shard
            ],
        )
    )


def _print_serving(scenario) -> None:
    """A mixed-tenant serving session over whatever backend is wired in."""
    import time as _time

    from repro.errors import AdmissionRejected, BudgetExceededError
    from repro.serving import QueryService, TenantSpec

    tenants = [
        TenantSpec("gold", weight=4.0),
        TenantSpec("silver", weight=2.0),
        TenantSpec("bronze", weight=1.0),
        TenantSpec("metered", weight=1.0, budget_seconds=60.0, query_quota=4),
    ]
    submissions = []
    for round_index in range(3):
        query_id = "q2" if round_index % 2 == 0 else "q4"
        for spec in tenants:
            submissions.append((spec.name, query_id))

    service = QueryService(
        scenario, tenants, workers=4, capacity=8, cache=scenario.shared_cache
    )
    refused = 0
    with service:
        tickets = []
        for tenant, query_id in submissions:
            while True:
                try:
                    tickets.append(service.submit(tenant, query_id))
                    break
                except AdmissionRejected as rejected:
                    _time.sleep(rejected.retry_after)
                except BudgetExceededError:
                    refused += 1
                    break
        for ticket in tickets:
            try:
                ticket.result(timeout=300)
            except BudgetExceededError:
                pass
        snapshot = service.metrics_snapshot()

    print(
        ascii_table(
            ["tenant", "weight", "budget (s)", "admitted", "done", "failed",
             "refused", "ledger (s)"],
            [
                [
                    entry["tenant"],
                    entry["weight"],
                    entry["budget_seconds"] or "-",
                    entry["admitted"],
                    entry["completed"],
                    entry["failed"],
                    entry["rejected"],
                    round(entry["ledger_total"], 2),
                ]
                for entry in service.tenant_reports()
            ],
            title="Concurrent serving: per-tenant accounting",
        )
    )
    rows = [
        ["completed / submitted", f"{snapshot['completed']}/{snapshot['submitted']}"],
        ["throughput (QPS)", round(snapshot["qps"], 1)],
        ["latency p50 / p99 (ms)",
         f"{snapshot['latency_p50'] * 1000:.0f} / {snapshot['latency_p99'] * 1000:.0f}"],
        ["foreign calls", snapshot.get("foreign_calls", 0)],
        ["cache hit rate", f"{snapshot.get('cache_hit_rate', 0.0):.0%}"],
        ["breaker states", ", ".join(snapshot["breaker_states"]) or "-"],
    ]
    print(ascii_table(["serving metric", "value"], rows))


def _print_enumeration() -> None:
    rows = [
        [
            entry["relations"],
            entry["space"],
            entry["join_tasks"],
            entry["plans_considered"],
            round(entry["seconds"] * 1000, 1),
        ]
        for entry in enumeration_report([1, 2, 3, 4, 5])
    ]
    print(
        ascii_table(
            ["n relations", "space", "join tasks", "plans", "ms"],
            rows,
            title="E9: enumeration effort vs number of relations",
        )
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'Join Queries with "
        "External Text Sources' (SIGMOD 1995).",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table2", "ranking", "figures", "multijoin", "enumeration",
            "trace", "serve", "all",
        ],
        help="which experiment(s) to run",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default 7)"
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record every foreign call and print the trace afterwards",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="share one gateway cache across the experiments' clients",
    )
    parser.add_argument(
        "--remote",
        choices=sorted(FAULT_PROFILES),
        help="reach the text server over a simulated network with this "
        "fault profile (retries and circuit breaking included)",
    )
    parser.add_argument(
        "--pool",
        type=int,
        default=1,
        help="connection-pool size for batched remote calls (default 1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition the corpus across N shard servers and "
        "scatter-gather every foreign call (0 = unsharded, the default; "
        "combines with --remote for the link profile, else lan)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="failover replicas per shard (only meaningful with --shards)",
    )
    arguments = parser.parse_args(argv)

    needs_scenario = arguments.experiment in (
        "table2", "ranking", "multijoin", "trace", "serve", "all"
    )
    scenario = build_default_scenario(seed=arguments.seed) if needs_scenario else None
    tracer = None
    transport = None
    if scenario is not None:
        if arguments.trace:
            tracer = CallTracer(enabled=True)
            scenario.shared_tracer = tracer
        if arguments.cache:
            scenario.shared_cache = GatewayCache()
        if arguments.shards:
            # Sharded scatter-gather: same simulated-network setup as
            # --remote (time_scale=0, persistent retries) but the corpus
            # is partitioned and every shard gets its own channel,
            # breaker, and optional failover replicas.
            transport = build_sharded_transport(
                scenario.server,
                arguments.shards,
                replicas=arguments.replicas,
                profile=arguments.remote or "lan",
                seed=arguments.seed,
                pool_size=arguments.pool,
                time_scale=0.0,
                retry=RetryPolicy(max_attempts=12),
                breaker_factory=lambda: CircuitBreaker(
                    failure_threshold=64, recovery_time=0.05
                ),
            )
            scenario.server = transport
        elif arguments.remote:
            # time_scale=0: pay the simulated network in the accounting
            # report, not in the user's wall clock.  The experiments make
            # thousands of foreign calls, so retry persistently enough
            # that even the degraded profile finishes the run.
            transport = RemoteTextTransport(
                scenario.server,
                profile=arguments.remote,
                seed=arguments.seed,
                pool_size=arguments.pool,
                time_scale=0.0,
                retry=RetryPolicy(max_attempts=12),
                breaker=CircuitBreaker(failure_threshold=64, recovery_time=0.05),
            )
            scenario.server = transport

    ran_any = False
    if arguments.experiment in ("table2", "all"):
        _print_table2(scenario)
        print()
        ran_any = True
    if arguments.experiment in ("ranking", "all"):
        _print_ranking(scenario)
        print()
        ran_any = True
    if arguments.experiment in ("figures", "all"):
        _print_figures()
        print()
        ran_any = True
    if arguments.experiment in ("multijoin", "all"):
        _print_multijoin(scenario)
        ran_any = True
    if arguments.experiment in ("enumeration", "all"):
        _print_enumeration()
        print()
        ran_any = True
    if arguments.experiment in ("trace", "all"):
        _print_trace(scenario)
        ran_any = True
    if arguments.experiment == "serve":
        _print_serving(scenario)
        ran_any = True
    if tracer is not None and tracer.spans:
        print()
        print(format_trace(tracer))
    if transport is not None:
        print()
        if isinstance(transport, ShardedTextTransport):
            _print_sharded_report(transport)
        else:
            _print_transport_report(transport)
    return 0 if ran_any else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
