"""Command-line interface: regenerate the paper's experiments.

Usage::

    python -m repro table2          # E3: Table 2
    python -m repro ranking         # E7: predicted vs measured rankings
    python -m repro figures         # E4/E5/E6: the cost-formula sweeps
    python -m repro multijoin       # E8: PrL vs left-deep
    python -m repro enumeration     # E9: optimizer effort vs n
    python -m repro trace           # gateway cache + foreign-call trace
    python -m repro multibackend    # Boolean + vector sources, one optimizer
    python -m repro serve           # concurrent multi-tenant serving demo
    python -m repro serve --vector  # ...with a second, ranked backend
    python -m repro index build --synthetic 100000 --out corpus.ridx
    python -m repro index stats corpus.ridx
    python -m repro index query corpus.ridx --expr "TI='database'"
    python -m repro qerror demo --store feedback.json   # the estimator loop
    python -m repro qerror report --store feedback.json # q-error summary
    python -m repro all             # everything above (except serve/index)
    python -m repro all --seed 11   # a different synthetic world
    python -m repro table2 --trace  # append the foreign-call trace
    python -m repro table2 --remote flaky   # run over a faulty transport
    python -m repro serve --shards 4 --pool 4   # serve over shards
    python -m repro table2 --feedback feedback.json  # record q-errors
    python -m repro serve --feedback feedback.json   # feedback-driven plans
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import (
    cache_report,
    enumeration_report,
    fig1a_series,
    fig1b_series,
    fig2_grid,
    multijoin_report,
    ranking_report,
    table2_rows,
)
from repro.bench.reporting import ascii_table
from repro.gateway.cache import GatewayCache
from repro.gateway.tracing import CallTracer, format_trace
from repro.remote import (
    FAULT_PROFILES,
    CircuitBreaker,
    RemoteTextTransport,
    RetryPolicy,
    ShardedTextTransport,
    build_sharded_transport,
)
from repro.workload import build_default_scenario
from repro.workload.scenarios import build_prl_scenario

__all__ = ["main"]


def _print_table2(scenario, feedback=None) -> None:
    rows = []
    by_query = table2_rows(scenario)
    if feedback is not None:
        # Every (predicted, measured) pair the experiment produced is
        # q-error evidence; recording it is read-only for the ledger.
        for query_id, runs in by_query.items():
            for run in runs:
                if run.predicted_cost is not None:
                    feedback.record_event(
                        kind="method",
                        label=f"{query_id}:{run.method}",
                        estimated=run.predicted_cost,
                        actual=run.measured_cost,
                        unit="seconds",
                    )
    for query_id, runs in by_query.items():
        for run in runs:
            rows.append(
                [
                    query_id,
                    run.method,
                    round(run.measured_cost, 2),
                    run.predicted_cost and round(run.predicted_cost, 2),
                    run.searches,
                    run.results,
                ]
            )
    print(
        ascii_table(
            ["query", "method", "measured (s)", "predicted (s)",
             "searches", "results"],
            rows,
            title="E3: Table 2 — join method costs on Q1-Q4",
        )
    )


def _print_ranking(scenario) -> None:
    rows = [
        [
            entry["query"],
            " < ".join(entry["measured_order"]),
            entry["winner_match"],
            round(entry["kendall_tau"], 2),
        ]
        for entry in ranking_report(scenario)
    ]
    print(
        ascii_table(
            ["query", "measured order", "winner predicted", "tau"],
            rows,
            title="E7: does the cost model predict the ranking?",
        )
    )


def _print_figures() -> None:
    s1_values = [round(i / 10, 2) for i in range(11)]
    series = fig1a_series(s1_values)
    print(
        ascii_table(
            ["s1"] + list(series),
            [
                [s1] + [round(series[name][index], 1) for name in series]
                for index, s1 in enumerate(s1_values)
            ],
            title="E4: Figure 1(A) — cost vs s1 (Q3 shape)",
        )
    )
    print()
    ratios = [0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    series = fig1b_series(ratios)
    print(
        ascii_table(
            ["N1/N"] + list(series),
            [
                [ratio] + [round(series[name][index], 2) for name in series]
                for index, ratio in enumerate(ratios)
            ],
            title="E5: Figure 1(B) — cost vs N1/N (Q4 shape, s1=1)",
        )
    )
    print()
    print("E6: Figure 2 — winner per (s1 across, N1/N down); P = P+TS")
    ratio_values = [0.01] + [round(i / 10, 2) for i in range(1, 11)]
    grid = fig2_grid(s1_values, ratio_values)
    print("N1/N \\ s1 " + " ".join(f"{s1:>4}" for s1 in s1_values))
    for ratio, row in zip(ratio_values, grid):
        cells = " ".join(f"{'P' if w == 'P+TS' else 'T':>4}" for w in row)
        print(f"{ratio:>9} {cells}")


def _print_multijoin(scenario) -> None:
    for title, (target, query, spaces) in {
        "E8a: Q5 across execution spaces": (
            scenario, scenario.q5(), ("traditional", "prl", "extended")
        ),
        "E8b: PrL showcase (probe node strictly wins)": (
            *build_prl_scenario(), ("traditional", "prl")
        ),
    }.items():
        report = multijoin_report(target, query, spaces=spaces)
        rows = [
            [
                entry["space"],
                round(entry["estimated_cost"], 1),
                round(entry["measured_cost"], 1),
                entry["rows"],
            ]
            for entry in report
        ]
        print(ascii_table(["space", "estimated", "measured", "rows"], rows, title=title))
        for entry in report:
            print(f"\n[{entry['space']}]")
            print(entry["plan"])
        print()


def _print_trace(scenario) -> None:
    report = cache_report(scenario)
    rows = [
        [
            entry["workload"],
            entry["query"],
            entry["method"],
            round(entry["first_cost"], 2),
            round(entry["second_cost"], 2),
            f"{entry['reduction']:.0%}",
            entry["cache_hits"],
            entry["cache_misses"],
            round(entry["seconds_saved"], 2),
        ]
        for entry in report
    ]
    print(
        ascii_table(
            ["workload", "query", "method", "1st run (s)", "2nd run (s)",
             "reduction", "hits", "misses", "saved (s)"],
            rows,
            title="Gateway cache: cost of re-executing each workload",
        )
    )
    for entry in report:
        trace = entry["trace"]
        by_phase = ", ".join(
            f"{phase}={info['calls']}"
            for phase, info in trace["by_phase"].items()
        )
        print(
            f"\n[{entry['workload']} / {entry['query']}] "
            f"{trace['spans']} foreign calls, hit rate "
            f"{trace['hit_rate']:.0%}, phases: {by_phase}"
        )


def _print_transport_report(transport) -> None:
    report = transport.report()
    channel = report.pop("channel")
    transitions = report.pop("breaker_transitions")
    rows = [[key, value] for key, value in report.items()]
    rows += [[f"channel.{key}", value] for key, value in channel.items()]
    print(
        ascii_table(
            ["transport metric", "value"],
            rows,
            title=f"Remote transport ({transport.profile.name} profile)",
        )
    )
    if transitions:
        print("breaker transitions: " + ", ".join(
            f"{old}->{new}" for _, old, new in transitions
        ))


def _print_sharded_report(transport) -> None:
    report = transport.report()
    per_shard = report.pop("per_shard")
    totals = report.pop("totals")
    rows = [[key, value] for key, value in report.items()]
    rows += [[f"totals.{key}", round(value, 6)] for key, value in totals.items()]
    profile = getattr(transport.profile, "name", "loopback")
    print(
        ascii_table(
            ["sharding metric", "value"],
            rows,
            title=f"Sharded text service ({profile} profile)",
        )
    )
    print(
        ascii_table(
            ["shard", "documents", "failovers", "breaker", "frames", "retried s"],
            [
                [
                    shard["shard"],
                    shard["documents"],
                    shard["failovers"],
                    shard["breaker_state"],
                    shard["frames_sent"],
                    shard["seconds_retried"],
                ]
                for shard in per_shard
            ],
        )
    )


def _print_multibackend(seed: int) -> None:
    """The heterogeneous tentpole: one query, two backends, one optimizer."""
    from repro.bench.multibackend import (
        build_multibackend_scenario,
        multibackend_report,
    )

    scenario = build_multibackend_scenario(seed=seed)
    report = multibackend_report(scenario)
    print(report["explain"])
    print()
    print(report["attribution"])
    flipped = multibackend_report(scenario, vector_column="student.name")
    print(
        f"\n{len(report['execution'].rows)} ranked result rows; sweeping the "
        f"vector column to 14 distinct bindings flips the ranked strategy "
        f"to {flipped['plan'].vector_choice.name}"
    )


def _print_serving(
    scenario, feedback=None, vector_server=None, share_window=None
) -> None:
    """A mixed-tenant serving session over whatever backend is wired in."""
    import time as _time

    from repro.errors import AdmissionRejected, BudgetExceededError
    from repro.gateway.statistics import TextStatisticsRegistry
    from repro.serving import QueryService, TenantSpec

    tenants = [
        TenantSpec("gold", weight=4.0),
        TenantSpec("silver", weight=2.0),
        TenantSpec("bronze", weight=1.0),
        TenantSpec("metered", weight=1.0, budget_seconds=60.0, query_quota=4),
    ]
    submissions = []
    for round_index in range(3):
        query_id = "q2" if round_index % 2 == 0 else "q4"
        for spec in tenants:
            submissions.append((spec.name, query_id))
    if vector_server is not None:
        from repro.textsys.vector import VectorQuery

        # Every tenant mixes one ranked search into its load; charges
        # land on the per-tenant *vector* ledgers (invariant 15).
        for spec in tenants:
            submissions.append(
                (
                    spec.name,
                    VectorQuery(
                        vector_server.field, ("belief", "update"), top_k=5
                    ),
                )
            )

    service = QueryService(
        scenario,
        tenants,
        workers=4,
        capacity=8,
        cache=scenario.shared_cache,
        feedback=feedback,
        statistics=TextStatisticsRegistry() if feedback is not None else None,
        vector_backend=vector_server,
        share_window=share_window,
    )
    refused = 0
    with service:
        tickets = []
        for tenant, query_id in submissions:
            while True:
                try:
                    tickets.append(service.submit(tenant, query_id))
                    break
                except AdmissionRejected as rejected:
                    _time.sleep(rejected.retry_after)
                except BudgetExceededError:
                    refused += 1
                    break
        for ticket in tickets:
            try:
                ticket.result(timeout=300)
            except BudgetExceededError:
                pass
        snapshot = service.metrics_snapshot()

    print(
        ascii_table(
            ["tenant", "weight", "budget (s)", "admitted", "done", "failed",
             "refused", "ledger (s)"],
            [
                [
                    entry["tenant"],
                    entry["weight"],
                    entry["budget_seconds"] or "-",
                    entry["admitted"],
                    entry["completed"],
                    entry["failed"],
                    entry["rejected"],
                    round(entry["ledger_total"], 2),
                ]
                for entry in service.tenant_reports()
            ],
            title="Concurrent serving: per-tenant accounting",
        )
    )
    rows = [
        ["completed / submitted", f"{snapshot['completed']}/{snapshot['submitted']}"],
        ["throughput (QPS)", round(snapshot["qps"], 1)],
        ["latency p50 / p99 (ms)",
         f"{snapshot['latency_p50'] * 1000:.0f} / {snapshot['latency_p99'] * 1000:.0f}"],
        ["foreign calls", snapshot.get("foreign_calls", 0)],
        ["cache hit rate", f"{snapshot.get('cache_hit_rate', 0.0):.0%}"],
        ["breaker states", ", ".join(snapshot["breaker_states"]) or "-"],
    ]
    sharing = snapshot.get("sharing")
    if sharing is not None:
        rows.append(
            ["shared searches (joins)", sharing["shared_searches"]]
        )
        rows.append(
            ["seconds shared (side channel)",
             round(sharing["seconds_shared"], 2)],
        )
    print(ascii_table(["serving metric", "value"], rows))
    if vector_server is not None:
        totals = service.vector_ledger_totals()
        print(
            ascii_table(
                ["tenant", "vector ledger (s)", "vector searches"],
                [
                    [name, round(total, 2),
                     service.tenant(name).vector_ledger.searches]
                    for name, total in totals.items()
                ],
                title="Vector-backend attribution (per-tenant, invariant 15)",
            )
        )
    if feedback is not None:
        summary = feedback.summary()
        print(
            f"feedback: {summary['methods']} method keys, "
            f"{summary['predicates']} predicate observations recorded"
        )


def _print_enumeration() -> None:
    rows = [
        [
            entry["relations"],
            entry["space"],
            entry["join_tasks"],
            entry["plans_considered"],
            round(entry["seconds"] * 1000, 1),
        ]
        for entry in enumeration_report([1, 2, 3, 4, 5])
    ]
    print(
        ascii_table(
            ["n relations", "space", "join tasks", "plans", "ms"],
            rows,
            title="E9: enumeration effort vs number of relations",
        )
    )


def _index_main(argv: List[str]) -> int:
    """The ``repro index`` tool: build / inspect / query disk indexes."""
    import time

    from repro.textsys.diskindex import (
        DEFAULT_BLOCK_SIZE,
        DiskIndexBuilder,
        DiskInvertedIndex,
    )
    from repro.textsys.engine import evaluate
    from repro.textsys.parser import parse_search
    from repro.textsys.persistence import load_store
    from repro.workload.corpus import iter_synthetic_documents

    parser = argparse.ArgumentParser(
        prog="repro index",
        description="Build and serve disk-backed compressed inverted "
        "indexes (delta + group-varint blocks, skip entries, bounded "
        "block cache).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    build = commands.add_parser("build", help="build an index file")
    source = build.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--synthetic",
        type=int,
        metavar="N",
        help="stream N synthetic documents (never materialized in RAM)",
    )
    source.add_argument(
        "--store",
        metavar="PATH",
        help="index a saved document store (.jsonl or .jsonl.gz)",
    )
    build.add_argument("--out", required=True, help="index file to write")
    build.add_argument("--seed", type=int, default=7)
    build.add_argument(
        "--fields",
        default="title,abstract",
        help="synthetic fields (comma-separated; default title,abstract)",
    )
    build.add_argument("--vocabulary", type=int, default=1500)
    build.add_argument("--block-size", type=int, default=DEFAULT_BLOCK_SIZE)
    build.add_argument(
        "--memory-budget-mb",
        type=int,
        default=256,
        help="posting-buffer budget before spilling a segment (default 256)",
    )

    stats = commands.add_parser("stats", help="print index statistics")
    stats.add_argument("index", help="index file to inspect")

    query = commands.add_parser("query", help="evaluate a search expression")
    query.add_argument("index", help="index file to query")
    query.add_argument(
        "--expr",
        required=True,
        action="append",
        help="search expression, e.g. \"TI='database'\" (repeatable)",
    )
    query.add_argument(
        "--cache-mb",
        type=float,
        default=64.0,
        help="decoded-block cache budget in MiB (0 disables; default 64)",
    )
    query.add_argument("--io", choices=("mmap", "read"), default="mmap")
    query.add_argument(
        "--mode", choices=("optimized", "reference"), default=None
    )
    query.add_argument(
        "--limit", type=int, default=10, help="matching docids to print"
    )

    arguments = parser.parse_args(argv)

    if arguments.command == "build":
        started = time.perf_counter()
        if arguments.synthetic is not None:
            fields = [name for name in arguments.fields.split(",") if name]
            documents = iter_synthetic_documents(
                arguments.synthetic,
                seed=arguments.seed,
                fields=fields,
                vocabulary_size=arguments.vocabulary,
            )
            version = 0
        else:
            store = load_store(arguments.store)
            fields = list(store.field_names)
            documents = iter(store)
            version = store.version
        builder = DiskIndexBuilder(
            fields,
            arguments.out,
            block_size=arguments.block_size,
            memory_budget_mb=arguments.memory_budget_mb,
        )
        count = builder.add_documents(documents)
        path = builder.finish(version=version)
        elapsed = time.perf_counter() - started
        size = path.stat().st_size
        print(
            f"indexed {count} documents into {path} "
            f"({size / 1e6:.1f} MB) in {elapsed:.1f}s"
        )
        return 0

    if arguments.command == "stats":
        with DiskInvertedIndex(arguments.index, cache_budget=0) as index:
            report = index.stats()
        rows = [[key, value] for key, value in report.items() if key != "build"]
        rows += [[f"build.{key}", value] for key, value in report["build"].items()]
        print(ascii_table(["property", "value"], rows, title="disk index"))
        return 0

    budget = int(arguments.cache_mb * 1024 * 1024)
    with DiskInvertedIndex(
        arguments.index, cache_budget=budget, io_mode=arguments.io
    ) as index:
        rows = []
        for expression in arguments.expr:
            node = parse_search(expression)
            started = time.perf_counter()
            outcome = evaluate(index, node, mode=arguments.mode)
            elapsed = time.perf_counter() - started
            matches = [
                index.docid_of(doc)
                for doc in outcome.postings.doc_array[: arguments.limit]
            ]
            rows.append(
                [
                    expression,
                    outcome.doc_count(),
                    outcome.postings_processed,
                    index.pages_read,
                    round(elapsed * 1000, 2),
                    " ".join(matches),
                ]
            )
        print(
            ascii_table(
                ["expression", "matches", "postings", "pages", "ms", "first docids"],
                rows,
                title=f"disk-index query ({arguments.io}, cache "
                f"{arguments.cache_mb:g} MiB)",
            )
        )
        io = index.io_stats()
        cache = io["cache"]
        print(
            f"physical: {io['block_fetches']} block fetches, "
            f"{io['bytes_read']} bytes; cache hit rate "
            f"{cache['hit_rate']:.0%} ({cache['hits']} hits / "
            f"{cache['misses']} misses, {cache['evictions']} evictions)"
        )
    return 0


def _qerror_main(argv: List[str]) -> int:
    """The ``repro qerror`` tool: feedback stores and q-error reports."""
    from repro.bench.feedback_loop import feedback_loop_report, render_report
    from repro.core.feedback import FeedbackStore
    from repro.errors import FeedbackError

    parser = argparse.ArgumentParser(
        prog="repro qerror",
        description="Inspect and exercise the estimator feedback loop: "
        "persistent estimate-vs-actual statistics, q-error reports, and "
        "the two-run demonstration workload.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    report = commands.add_parser(
        "report", help="print a store's q-error summary"
    )
    report.add_argument("--store", required=True, help="feedback store path")
    report.add_argument(
        "--top", type=int, default=10, help="worst offenders to list"
    )

    demo = commands.add_parser(
        "demo",
        help="run the two-pass stale-statistics workload (plan flips on "
        "run 2) and optionally persist the evidence",
    )
    demo.add_argument("--store", help="save the feedback store here")
    demo.add_argument("--seed", type=int, default=7)
    demo.add_argument("--prior-weight", type=float, default=0.5)

    arguments = parser.parse_args(argv)

    if arguments.command == "report":
        try:
            store = FeedbackStore.load(arguments.store)
        except FeedbackError as error:
            print(f"error: {error}", file=sys.stderr)
            return 1
        summary = store.summary()
        print(
            f"{arguments.store}: {summary['predicates']} predicate "
            f"observations, {summary['methods']} method keys, "
            f"{summary['events']} events "
            f"(prior weight {summary['prior_weight']:g})"
        )
        print(store.report().render(top=arguments.top))
        return 0

    outcome = feedback_loop_report(
        seed=arguments.seed, prior_weight=arguments.prior_weight
    )
    print(render_report(outcome))
    if arguments.store:
        path = outcome["store"].save(arguments.store)
        print(f"feedback store saved to {path}")
    flipped = outcome["flipped"] and outcome["cheaper"]
    return 0 if flipped and outcome["identity"]["identical"] else 1


def main(argv: Optional[List[str]] = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "index":
        # The index tool has its own subcommand grammar; dispatch before
        # the experiment parser rejects it.
        return _index_main(argv[1:])
    if argv and argv[0] == "qerror":
        return _qerror_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'Join Queries with "
        "External Text Sources' (SIGMOD 1995).",
    )
    parser.add_argument(
        "experiment",
        choices=[
            "table2", "ranking", "figures", "multijoin", "enumeration",
            "trace", "multibackend", "serve", "all",
        ],
        help="which experiment(s) to run",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="workload seed (default 7)"
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="record every foreign call and print the trace afterwards",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="share one gateway cache across the experiments' clients",
    )
    parser.add_argument(
        "--remote",
        choices=sorted(FAULT_PROFILES),
        help="reach the text server over a simulated network with this "
        "fault profile (retries and circuit breaking included)",
    )
    parser.add_argument(
        "--pool",
        type=int,
        default=1,
        help="connection-pool size for batched remote calls (default 1)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help="partition the corpus across N shard servers and "
        "scatter-gather every foreign call (0 = unsharded, the default; "
        "combines with --remote for the link profile, else lan)",
    )
    parser.add_argument(
        "--replicas",
        type=int,
        default=0,
        help="failover replicas per shard (only meaningful with --shards)",
    )
    parser.add_argument(
        "--vector",
        action="store_true",
        help="serve only: add a second, ranked (vector-space) backend; "
        "tenants mix top-k similarity searches into their load, charged "
        "to separate per-tenant vector ledgers",
    )
    parser.add_argument(
        "--feedback",
        metavar="PATH",
        help="record estimate-vs-actual feedback into this store "
        "(created if missing; experiments record method q-errors, serve "
        "plans each query with feedback-blended statistics)",
    )
    parser.add_argument(
        "--share-window",
        type=float,
        metavar="SECONDS",
        help="serve only: batch searches admitted within this window "
        "across tenants and execute shared work once (0 keeps pure "
        "single-flight dedup; charges stay as-if-alone, invariant 16)",
    )
    arguments = parser.parse_args(argv)

    feedback = None
    if arguments.feedback:
        from repro.core.feedback import FeedbackStore

        feedback = FeedbackStore.open(arguments.feedback)

    needs_scenario = arguments.experiment in (
        "table2", "ranking", "multijoin", "trace", "serve", "all"
    )
    scenario = build_default_scenario(seed=arguments.seed) if needs_scenario else None
    tracer = None
    transport = None
    vector_server = None
    if scenario is not None:
        if arguments.vector and arguments.experiment == "serve":
            from repro.textsys.vectorserver import VectorTextServer

            # Rank titles of the SAME corpus through a second source with
            # its own semantics and constants (built before any transport
            # wrapping replaces scenario.server).
            vector_server = VectorTextServer(scenario.server.store, "title")
        if arguments.trace:
            tracer = CallTracer(enabled=True)
            scenario.shared_tracer = tracer
        if arguments.cache:
            scenario.shared_cache = GatewayCache()
        if arguments.shards:
            # Sharded scatter-gather: same simulated-network setup as
            # --remote (time_scale=0, persistent retries) but the corpus
            # is partitioned and every shard gets its own channel,
            # breaker, and optional failover replicas.
            transport = build_sharded_transport(
                scenario.server,
                arguments.shards,
                replicas=arguments.replicas,
                profile=arguments.remote or "lan",
                seed=arguments.seed,
                pool_size=arguments.pool,
                time_scale=0.0,
                retry=RetryPolicy(max_attempts=12),
                breaker_factory=lambda: CircuitBreaker(
                    failure_threshold=64, recovery_time=0.05
                ),
            )
            scenario.server = transport
        elif arguments.remote:
            # time_scale=0: pay the simulated network in the accounting
            # report, not in the user's wall clock.  The experiments make
            # thousands of foreign calls, so retry persistently enough
            # that even the degraded profile finishes the run.
            transport = RemoteTextTransport(
                scenario.server,
                profile=arguments.remote,
                seed=arguments.seed,
                pool_size=arguments.pool,
                time_scale=0.0,
                retry=RetryPolicy(max_attempts=12),
                breaker=CircuitBreaker(failure_threshold=64, recovery_time=0.05),
            )
            scenario.server = transport

    ran_any = False
    if arguments.experiment in ("table2", "all"):
        _print_table2(scenario, feedback=feedback)
        print()
        ran_any = True
    if arguments.experiment in ("ranking", "all"):
        _print_ranking(scenario)
        print()
        ran_any = True
    if arguments.experiment in ("figures", "all"):
        _print_figures()
        print()
        ran_any = True
    if arguments.experiment in ("multijoin", "all"):
        _print_multijoin(scenario)
        ran_any = True
    if arguments.experiment in ("enumeration", "all"):
        _print_enumeration()
        print()
        ran_any = True
    if arguments.experiment in ("trace", "all"):
        _print_trace(scenario)
        ran_any = True
    if arguments.experiment in ("multibackend", "all"):
        if arguments.experiment == "all":
            print()
        _print_multibackend(arguments.seed)
        ran_any = True
    if arguments.experiment == "serve":
        _print_serving(
            scenario,
            feedback=feedback,
            vector_server=vector_server,
            share_window=arguments.share_window,
        )
        ran_any = True
    if tracer is not None and tracer.spans:
        print()
        print(format_trace(tracer))
    if transport is not None:
        print()
        if isinstance(transport, ShardedTextTransport):
            _print_sharded_report(transport)
        else:
            _print_transport_report(transport)
    if feedback is not None and ran_any:
        path = feedback.save(arguments.feedback)
        print(f"\nfeedback store saved to {path}")
    return 0 if ran_any else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
