"""ASCII rendering of benchmark tables and series.

The benchmark harness prints the same rows/series the paper reports;
these helpers keep that output aligned and readable both under pytest
(-s) and in the examples.
"""

from __future__ import annotations

from typing import Any, List, Optional, Sequence

__all__ = ["ascii_table", "format_value", "series_block", "counter_delta_rows"]


def format_value(value: Any) -> str:
    """Compact formatting: floats to 2 decimals, None as '-'."""
    if value is None:
        return "-"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value >= 1000:
            return f"{value:.0f}"
        return f"{value:.2f}"
    return str(value)


def ascii_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: Optional[str] = None,
) -> str:
    """Render a fixed-width table with a header rule."""
    cells = [[format_value(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(
        header.ljust(width) for header, width in zip(headers, widths)
    )
    lines.append(header_line)
    lines.append("  ".join("-" * width for width in widths))
    for row in cells:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(row, widths))
        )
    return "\n".join(lines)


def counter_delta_rows(before, after) -> List[List[Any]]:
    """Table rows for the server work done between two counter snapshots.

    ``before`` and ``after`` are :class:`~repro.textsys.server.
    ServerCounters` (or anything supporting ``-`` and ``as_dict()``);
    the rows are ``[counter, delta]`` pairs ready for
    :func:`ascii_table`, so benchmark reports never hand-copy the four
    counter fields.
    """
    return [[name, value] for name, value in (after - before).as_dict().items()]


def series_block(
    name: str, xs: Sequence[Any], ys: Sequence[Any], x_label: str, y_label: str
) -> str:
    """Render one figure series as aligned (x, y) pairs."""
    lines = [f"{name}  ({x_label} -> {y_label})"]
    for x, y in zip(xs, ys):
        lines.append(f"  {format_value(x):>8}  {format_value(y):>12}")
    return "\n".join(lines)
