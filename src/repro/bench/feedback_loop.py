"""The feedback loop, demonstrated: stale statistics → abort → learn → win.

One skewed-selectivity workload shows the whole estimator loop closing.
The optimizer plans Q4 from *stale* predicate statistics (the kind a
registry accumulates when the corpus drifts after sampling): advisors
look like rare authors, students like prolific ones.  Run 1 therefore
picks the guarded P+RTP plan with a miscalibrated fetch cap, aborts,
re-optimizes mid-query with the guard's observed counters, and finishes
on a safe-but-slow fallback — paying for the misestimate.  The abort's
evidence lands in a :class:`~repro.core.feedback.FeedbackStore`; run 2
blends it into the same stale priors and picks the truly cheapest method
up front, with a correctly calibrated cap and a lower ledger total.

:func:`feedback_loop_report` packages both runs (plus the invariant-14
identity check: recording feedback never changes what a plan charges)
for the CLI demo, the benchmark, and the CI smoke test.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.core.adaptive import AdaptiveExecution, execute_adaptively
from repro.core.feedback import FeedbackStore
from repro.core.inputs import build_cost_inputs
from repro.core.optimizer.single_join import enumerate_method_choices
from repro.gateway.statistics import PredicateStatistics, TextStatisticsRegistry
from repro.workload.scenarios import Scenario, build_default_scenario

__all__ = ["stale_statistics_registry", "feedback_loop_report"]

#: The planted misestimates: the truth (seed 7) is advisors with fanout
#: 6.0 and students with fanout ~1.14, both near-certain authors.  The
#: stale registry claims the opposite skew — advisors barely publish
#: (so the P+RTP guard arms a far-too-small fetch cap) and students
#: flood the corpus (so the OR-batched semi-join looks expensive and
#: cannot shadow the probing plan in run 1's ranking).
STALE_ADVISOR = PredicateStatistics(
    "student.advisor", "author", selectivity=1.0, fanout=1.0
)
STALE_NAME = PredicateStatistics(
    "student.name", "author", selectivity=0.9, fanout=50.0
)


def stale_statistics_registry() -> TextStatisticsRegistry:
    """A registry pre-loaded with the drifted Q4 statistics."""
    registry = TextStatisticsRegistry()
    registry.put(STALE_ADVISOR)
    registry.put(STALE_NAME)
    return registry


def _run_once(
    scenario: Scenario,
    registry: TextStatisticsRegistry,
    store: Optional[FeedbackStore],
    safety_factor: float,
) -> Dict[str, Any]:
    """One planning-and-execution pass of Q4 against the stale registry."""
    query = scenario.q4()
    context = scenario.context()
    inputs = build_cost_inputs(query, context, registry=registry, feedback=store)
    ranking = [
        (choice.name, choice.estimate.total)
        for choice in enumerate_method_choices(query, inputs)
    ]
    execution = execute_adaptively(
        query, context, inputs, safety_factor=safety_factor, feedback=store
    )
    return {
        "ranking": ranking,
        "first_choice": ranking[0][0],
        "winner": execution.execution.method,
        "total_cost": execution.total_cost,
        "reoptimizations": execution.reoptimizations,
        "attempts": [
            {
                "method": attempt.method,
                "aborted": attempt.aborted,
                "spent_cost": attempt.spent_cost,
                "predicted_cost": attempt.predicted_cost,
            }
            for attempt in execution.attempts
        ],
        "pairs": sorted(
            (pair.row["student.name"], pair.document.docid)
            for pair in execution.execution.pairs
        ),
        "inputs": inputs,
        "query": query,
        "execution": execution,
    }


def _identity_check(
    scenario: Scenario, run2: Dict[str, Any], store: FeedbackStore
) -> Dict[str, Any]:
    """DESIGN invariant 14: feedback recording never perturbs charges.

    The same already-blended inputs are executed twice on fresh ledgers —
    once recording into a throwaway copy of the store, once with no
    feedback at all.  The attempt trail, the ledger totals, and the
    result pairs must be bit-identical: feedback changes *plan choice*,
    never the accounting of the plan that runs.
    """
    throwaway = FeedbackStore.from_payload(store.to_payload())
    recorded: AdaptiveExecution = execute_adaptively(
        run2["query"], scenario.context(), run2["inputs"], feedback=throwaway
    )
    silent: AdaptiveExecution = execute_adaptively(
        run2["query"], scenario.context(), run2["inputs"], feedback=None
    )
    identical = (
        recorded.total_cost == silent.total_cost
        and [a.spent_cost for a in recorded.attempts]
        == [a.spent_cost for a in silent.attempts]
        and [a.method for a in recorded.attempts]
        == [a.method for a in silent.attempts]
        and sorted(
            (p.row["student.name"], p.document.docid)
            for p in recorded.execution.pairs
        )
        == sorted(
            (p.row["student.name"], p.document.docid)
            for p in silent.execution.pairs
        )
    )
    return {
        "identical": identical,
        "recorded_total": recorded.total_cost,
        "silent_total": silent.total_cost,
    }


def feedback_loop_report(
    seed: int = 7,
    store: Optional[FeedbackStore] = None,
    prior_weight: float = 0.5,
    safety_factor: float = 4.0,
) -> Dict[str, Any]:
    """Run the two-pass feedback workload; return everything measured.

    ``prior_weight`` deliberately trusts observations quickly (the demo
    records one abort's worth of probes); production callers keep the
    default :data:`~repro.core.feedback.DEFAULT_PRIOR_WEIGHT`.
    """
    scenario = build_default_scenario(seed=seed)
    registry = stale_statistics_registry()
    if store is None:
        store = FeedbackStore(prior_weight=prior_weight)

    run1 = _run_once(scenario, registry, store, safety_factor)
    run2 = _run_once(scenario, registry, store, safety_factor)
    identity = _identity_check(scenario, run2, store)

    report = {
        "run1": run1,
        "run2": run2,
        "flipped": run2["winner"] != run1["winner"],
        "cheaper": run2["total_cost"] < run1["total_cost"],
        "results_identical": run1["pairs"] == run2["pairs"],
        "identity": identity,
        "store_summary": store.summary(),
        "qerror": store.report(),
        "store": store,
    }
    return report


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of :func:`feedback_loop_report`."""
    from repro.bench.reporting import ascii_table

    lines: List[str] = []
    rows = []
    for label in ("run1", "run2"):
        run = report[label]
        rows.append(
            [
                label,
                run["first_choice"],
                run["winner"],
                round(run["total_cost"], 3),
                sum(1 for a in run["attempts"] if a["aborted"]),
                run["reoptimizations"],
            ]
        )
    lines.append(
        ascii_table(
            ["run", "planned", "executed", "ledger (s)", "aborts", "re-opts"],
            rows,
            title="Feedback loop: Q4 planned twice from stale statistics",
        )
    )
    lines.append(
        f"plan flipped: {report['flipped']}, run 2 cheaper: "
        f"{report['cheaper']}, results identical: "
        f"{report['results_identical']}"
    )
    identity = report["identity"]
    lines.append(
        "invariant 14 (recording never changes charges): "
        f"{'OK' if identity['identical'] else 'VIOLATED'} "
        f"({identity['recorded_total']:.3f}s with feedback, "
        f"{identity['silent_total']:.3f}s without)"
    )
    lines.append("")
    lines.append(report["qerror"].render(top=5))
    return "\n".join(lines)
