"""The heterogeneous-backend workload: one query, two text sources.

:func:`build_multibackend_scenario` stands up a complete two-backend
deployment over ONE synthetic corpus:

- a Boolean server (``"mercury"``) answering the Section 3 method space
  over ``title``/``author``;
- a vector server (``"vsim"``) ranking the ``abstract`` field by cosine
  similarity;
- a :class:`~repro.gateway.registry.BackendRegistry` binding each to its
  own calibrated constants and ledger (DESIGN invariant 15);
- a ``student`` relation planted Q4-style so the optimizer's choices are
  pinned: the Boolean half's advisor column probes profitably (a
  probe-based ``P(...)`` method wins), while the vector half's single
  distinct binding (the students' shared ``area``) makes one ranked
  search (``V-TOPK``) beat dumping the corpus (``V-SCAN``).

:func:`multibackend_report` runs the joint EXPLAIN + execution and
renders the per-backend attribution; ``benchmarks/bench_multibackend.py``
asserts on it and sweeps the binding count to show the V-TOPK → V-SCAN
crossover.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.bench.reporting import ascii_table
from repro.core.heterogeneous import (
    HeterogeneousJoinQuery,
    execute_heterogeneous,
    explain_heterogeneous,
    plan_heterogeneous,
)
from repro.core.joinmethods.base import JoinContext
from repro.core.query import (
    ResultShape,
    TextJoinPredicate,
    TextJoinQuery,
    VectorJoinPredicate,
)
from repro.gateway.costs import VECTOR_CONSTANTS
from repro.gateway.registry import BackendRegistry
from repro.relational.catalog import Catalog
from repro.relational.expressions import ColumnRef, Comparison, Literal
from repro.textsys.documents import DocumentStore
from repro.textsys.server import BooleanTextServer
from repro.textsys.vectorserver import VectorTextServer
from repro.workload.corpus import SyntheticCorpus
from repro.workload.scenarios import DEFAULT_CONSTANTS
from repro.workload.university import build_student_table
from repro.workload.vocabulary import reserved_pool

__all__ = [
    "MultibackendScenario",
    "build_multibackend_scenario",
    "multibackend_report",
]

#: The study areas whose words are planted into abstracts, so every
#: area binding has matchable vocabulary on the ranked field.
_AREA_TOPICS = {
    "distributed systems": 24,
    "databases": 18,
    "theory": 12,
}


@dataclass
class MultibackendScenario:
    """A two-backend deployment plus its canonical heterogeneous query."""

    catalog: Catalog
    store: DocumentStore
    registry: BackendRegistry
    boolean_name: str = "mercury"
    vector_name: str = "vsim"
    parameters: Dict[str, Any] = field(default_factory=dict)

    @property
    def boolean_server(self) -> BooleanTextServer:
        return self.registry.server(self.boolean_name)

    @property
    def vector_server(self) -> VectorTextServer:
        return self.registry.server(self.vector_name)

    def boolean_context(self, **kwargs) -> JoinContext:
        """A context charging the Boolean backend's attributed ledger."""
        return JoinContext(
            self.catalog, self.registry.client(self.boolean_name, **kwargs)
        )

    def vector_context(self, **kwargs) -> JoinContext:
        """A context charging the vector backend's attributed ledger."""
        return JoinContext(
            self.catalog, self.registry.client(self.vector_name, **kwargs)
        )

    def query(
        self,
        top_k: Optional[int] = 5,
        threshold: float = 0.0,
        vector_column: str = "student.area",
    ) -> HeterogeneousJoinQuery:
        """The canonical joint query: Q4-style Boolean half + ranked half.

        Distributed-systems students who co-author with their advisors
        (Boolean: name and advisor in ``author``), ranked against
        abstracts similar to their study ``area`` (vector).  Pass
        ``vector_column="student.name"`` to flip the binding count from
        one to many — the V-SCAN regime the benchmark sweeps.
        """
        boolean = TextJoinQuery(
            relation="student",
            join_predicates=(
                TextJoinPredicate("student.advisor", "author"),
                TextJoinPredicate("student.name", "author"),
            ),
            relation_predicate=Comparison(
                "=", ColumnRef("student.area"), Literal("distributed systems")
            ),
            shape=ResultShape.TUPLES,
        )
        return HeterogeneousJoinQuery(
            boolean=boolean,
            vector=VectorJoinPredicate(
                vector_column, "abstract", top_k=top_k, threshold=threshold
            ),
        )


def build_multibackend_scenario(
    seed: int = 11, document_count: int = 300
) -> MultibackendScenario:
    """Build the two-backend deployment (deterministic per seed).

    Plantings (all exact, so the optimizer's choices are stable):

    - 14 distributed-systems students under 2 advisors; ONE advisor
      appears in the author field (selectivity ½, fanout 6), so probing
      the advisor column halves the substitution work — the probe-based
      methods win the Boolean half;
    - 4 of the students co-author with that advisor (the join result);
    - every study area's words are planted into a block of abstracts, so
      area bindings rank nonzero on the vector backend.
    """
    rng = random.Random(seed)
    corpus = SyntheticCorpus(document_count, seed=seed + 1)

    advisors = reserved_pool("mbadv", 2, rng)
    students = reserved_pool("mbstu", 14, rng)
    others = reserved_pool("mbbg", 40, rng)

    # The matched advisor's documents; the other advisor never publishes.
    advisor_docs = corpus.plant_phrase(advisors[0], "author", 6)
    # Co-authoring students: their names inside the advisor's documents.
    for name in students[:4]:
        corpus.plant_value(name, "author", advisor_docs[:2])
    # Background students publishing elsewhere (keeps name stats honest).
    for name in students[4:8]:
        corpus.plant_phrase(name, "author", 1)
    for name in others:
        corpus.plant_phrase(name, "author", 2)

    # Topic vocabulary on the ranked field: each area's words go into a
    # disjoint-ish block of abstracts so similarity search has signal.
    for area, block in _AREA_TOPICS.items():
        corpus.plant_phrase(area, "abstract", block)

    corpus.pad_authors(per_document=2)

    # Short forms carry the author (Boolean RTP methods) AND the
    # abstract (the V-SCAN corpus dump scores locally against it).
    store = corpus.build_store(
        short_fields=("title", "author", "year", "institution", "abstract")
    )

    catalog = Catalog()
    records = []
    for index, name in enumerate(students):
        advisor = advisors[index % 2]
        records.append(
            (name, "distributed systems", rng.randint(1, 6), advisor, "cs")
        )
    for index, name in enumerate(others):
        area = "databases" if index % 2 else "theory"
        records.append((name, area, rng.randint(1, 6), advisors[1], "ee"))
    build_student_table(catalog, records)

    registry = BackendRegistry()
    registry.register("mercury", BooleanTextServer(store), DEFAULT_CONSTANTS)
    registry.register("vsim", VectorTextServer(store, "abstract"), VECTOR_CONSTANTS)

    return MultibackendScenario(
        catalog=catalog,
        store=store,
        registry=registry,
        parameters={
            "advisors": advisors,
            "students": students,
            "matched_advisor": advisors[0],
            "coauthors": students[:4],
        },
    )


def multibackend_report(
    scenario: Optional[MultibackendScenario] = None,
    top_k: Optional[int] = 5,
    vector_column: str = "student.area",
) -> Dict[str, Any]:
    """Plan, explain, execute, and attribute the joint query.

    Returns the EXPLAIN text, the plan, the execution, and the per-
    backend accounting table — everything the benchmark and the CI smoke
    step assert on.
    """
    if scenario is None:
        scenario = build_multibackend_scenario()
    scenario.registry.reset()
    query = scenario.query(top_k=top_k, vector_column=vector_column)
    boolean_context = scenario.boolean_context()
    vector_context = scenario.vector_context()
    plan = plan_heterogeneous(query, boolean_context, vector_context)
    explain = explain_heterogeneous(plan)
    execution = execute_heterogeneous(
        query, boolean_context, vector_context, plan=plan
    )
    rows: List[List[Any]] = []
    for name, report in scenario.registry.report().items():
        rows.append(
            [
                name,
                report["source_kind"],
                report["searches"],
                report["postings_processed"],
                report["short_documents"],
                report["rtp_documents"],
                round(report["total"], 3),
            ]
        )
    attribution = ascii_table(
        ["backend", "kind", "searches", "postings", "short", "rtp", "total s"],
        rows,
        title="Per-backend charge attribution (invariant 15)",
    )
    return {
        "scenario": scenario,
        "query": query,
        "plan": plan,
        "explain": explain,
        "execution": execution,
        "attribution": attribution,
        "registry_total": scenario.registry.total(),
    }
