"""The experiment harness: one function per paper table/figure.

Every function returns structured data (lists of rows / series) that the
benchmark files print and assert on.  Figures 1(A), 1(B) and 2 are cost-
formula sweeps — exactly how the paper produced them ("For each value,
we used the cost formulas to compute the costs of the methods") — while
Table 2 and the ranking/multi-join experiments run the real integrated
system and read the metered ledger.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.costmodel import (
    QueryCostInputs,
    SelectionStatistics,
    cost_p_rtp,
    cost_p_ts,
    cost_sj_rtp,
    cost_ts,
)
from repro.core.inputs import build_cost_inputs
from repro.core.joinmethods import (
    JoinMethod,
    ProbeRtp,
    ProbeTupleSubstitution,
    RelationalTextProcessing,
    SemiJoin,
    SemiJoinRtp,
    TupleSubstitution,
)
from repro.core.optimizer import (
    PlanEstimator,
    enumerate_method_choices,
    optimize_multijoin,
)
from repro.core.executor import execute_plan
from repro.core.query import ResultShape, TextJoinQuery
from repro.gateway.cache import GatewayCache
from repro.gateway.costs import CostConstants
from repro.gateway.statistics import PredicateStatistics
from repro.gateway.tracing import CallTracer
from repro.workload.scenarios import (
    DEFAULT_CONSTANTS,
    Scenario,
    build_chain_scenario,
)

__all__ = [
    "MethodRun",
    "make_inputs",
    "run_methods",
    "table2_rows",
    "ranking_report",
    "fig1a_series",
    "fig1b_series",
    "fig2_grid",
    "multijoin_report",
    "enumeration_report",
    "cache_report",
]


# ----------------------------------------------------------------------
# analytic inputs (for figure sweeps and the Section 5 examples)
# ----------------------------------------------------------------------
def make_inputs(
    tuple_count: int,
    stats: Mapping[str, Tuple[float, float]],
    distinct: Mapping[str, int],
    document_count: int = 4000,
    term_limit: int = 70,
    g: int = 1,
    constants: Optional[CostConstants] = None,
    selection: Optional[SelectionStatistics] = None,
) -> QueryCostInputs:
    """Build cost-model inputs from raw parameters.

    ``stats`` maps column name to ``(selectivity, fanout)``; ``distinct``
    maps column name to its distinct count ``N_i``.
    """
    predicate_stats = {
        column: PredicateStatistics(
            column=column, field="field", selectivity=s, fanout=f
        )
        for column, (s, f) in stats.items()
    }
    distinct_counts = {
        frozenset([column]): count for column, count in distinct.items()
    }
    return QueryCostInputs(
        constants=constants or DEFAULT_CONSTANTS,
        document_count=document_count,
        term_limit=term_limit,
        g=g,
        tuple_count=tuple_count,
        predicate_stats=predicate_stats,
        selection=selection or SelectionStatistics.absent(),
        distinct_counts=distinct_counts,
    )


# ----------------------------------------------------------------------
# Table 2 (E3) and the ranking check (E7)
# ----------------------------------------------------------------------
@dataclass
class MethodRun:
    """One method executed on one query: measured and predicted cost.

    The cache fields are zero unless the run used a gateway cache
    (``run_methods(..., use_cache=True)``).
    """

    query_id: str
    method: str
    measured_cost: float
    predicted_cost: Optional[float]
    searches: int
    results: int
    wall_seconds: float
    cache_hits: int = 0
    cache_misses: int = 0
    seconds_saved: float = 0.0


def methods_for(query: TextJoinQuery, scenario: Scenario) -> List[JoinMethod]:
    """The Table-2 method set applicable to a query."""
    methods: List[JoinMethod] = [TupleSubstitution()]
    if query.text_selections:
        methods.append(RelationalTextProcessing())
    if query.shape is ResultShape.DOCIDS:
        methods.append(SemiJoin())
    methods.append(SemiJoinRtp())
    if len(query.join_predicates) >= 2:
        probe_column = query.join_columns[0]
        methods.append(ProbeTupleSubstitution((probe_column,)))
        methods.append(ProbeRtp((probe_column,)))
    return methods


def run_methods(
    scenario: Scenario,
    query_id: str,
    with_predictions: bool = True,
    use_cache: bool = False,
) -> List[MethodRun]:
    """Execute every applicable method on one canonical query.

    ``use_cache=True`` gives each method its own fresh
    :class:`~repro.gateway.cache.GatewayCache` (so measurements stay
    independent across methods) and reports per-run hit/miss counts and
    simulated seconds saved.
    """
    query = scenario.query(query_id)
    predicted: Dict[str, float] = {}
    if with_predictions:
        inputs = build_cost_inputs(query, scenario.context())
        for choice in enumerate_method_choices(query, inputs):
            predicted[choice.name] = choice.estimate.total

    runs: List[MethodRun] = []
    baseline = None
    for method in methods_for(query, scenario):
        cache = GatewayCache() if use_cache else None
        context = scenario.context(cache=cache)
        execution = method.execute(query, context)
        keys = execution.result_keys()
        if baseline is None:
            baseline = keys
        elif keys != baseline:
            raise AssertionError(
                f"{method.name} returned different results on {query_id}"
            )
        runs.append(
            MethodRun(
                query_id=query_id,
                method=method.name,
                measured_cost=execution.cost.total,
                predicted_cost=predicted.get(method.name),
                searches=execution.cost.searches,
                results=len(keys),
                wall_seconds=execution.wall_seconds,
                cache_hits=cache.hits if cache else 0,
                cache_misses=cache.misses if cache else 0,
                seconds_saved=execution.cost.seconds_saved,
            )
        )
    return runs


def table2_rows(scenario: Scenario) -> Dict[str, List[MethodRun]]:
    """E3: execution costs of every method on Q1–Q4."""
    return {
        query_id: run_methods(scenario, query_id)
        for query_id in ("q1", "q2", "q3", "q4")
    }


def ranking_report(scenario: Scenario) -> List[Dict[str, Any]]:
    """E7: does the cost model predict the measured method ranking?"""
    report = []
    for query_id, runs in table2_rows(scenario).items():
        scored = [run for run in runs if run.predicted_cost is not None]
        measured_order = [
            run.method
            for run in sorted(scored, key=lambda run: run.measured_cost)
        ]
        predicted_order = [
            run.method
            for run in sorted(scored, key=lambda run: run.predicted_cost)
        ]
        report.append(
            {
                "query": query_id,
                "measured_order": measured_order,
                "predicted_order": predicted_order,
                "winner_match": measured_order[0] == predicted_order[0],
                "kendall_tau": kendall_tau(measured_order, predicted_order),
            }
        )
    return report


def kendall_tau(order_a: Sequence[str], order_b: Sequence[str]) -> float:
    """Kendall rank correlation between two orderings of the same items."""
    items = list(order_a)
    rank_b = {item: index for index, item in enumerate(order_b)}
    concordant = discordant = 0
    for i in range(len(items)):
        for j in range(i + 1, len(items)):
            if rank_b[items[i]] < rank_b[items[j]]:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total if total else 1.0


# ----------------------------------------------------------------------
# Figure sweeps (E4, E5, E6)
# ----------------------------------------------------------------------
def _q3_like_inputs(
    s1: float,
    n1_ratio: float = 12 / 109,
    tuple_count: int = 109,
    conditional_fanout: float = 100.0,
    s2: float = 18 / 109,
    f2: float = 0.4,
    constants: Optional[CostConstants] = None,
) -> Tuple[QueryCostInputs, TextJoinQuery]:
    """Analytic inputs shaped like Q3 with a swept probing column."""
    from repro.core.query import TextJoinPredicate

    n1 = max(1, int(round(n1_ratio * tuple_count)))
    inputs = make_inputs(
        tuple_count=tuple_count,
        stats={
            "r.name": (s1, s1 * conditional_fanout),
            "r.member": (s2, f2),
        },
        distinct={"r.name": n1, "r.member": tuple_count},
        constants=constants,
    )
    query = TextJoinQuery(
        relation="r",
        join_predicates=(
            TextJoinPredicate("r.name", "title"),
            TextJoinPredicate("r.member", "author"),
        ),
    )
    return inputs, query


def fig1a_series(
    s1_values: Sequence[float],
    constants: Optional[CostConstants] = None,
) -> Dict[str, List[float]]:
    """E4 / Figure 1(A): method costs as s1 sweeps 0..1 (Q3 shape)."""
    series: Dict[str, List[float]] = {
        "TS": [],
        "P1+TS": [],
        "P1+RTP": [],
        "SJ+RTP": [],
    }
    for s1 in s1_values:
        inputs, query = _q3_like_inputs(s1, constants=constants)
        series["TS"].append(cost_ts(inputs, query).total)
        series["P1+TS"].append(cost_p_ts(inputs, query, ("r.name",)).total)
        series["P1+RTP"].append(cost_p_rtp(inputs, query, ("r.name",)).total)
        series["SJ+RTP"].append(cost_sj_rtp(inputs, query).total)
    return series


def _q4_like_inputs(
    n1_ratio: float,
    tuple_count: int = 14,
    s1: float = 1.0,
    f1: float = 6.0,
    s2: float = 12 / 14,
    f2: float = 1.0,
    constants: Optional[CostConstants] = None,
) -> Tuple[QueryCostInputs, TextJoinQuery]:
    """Analytic inputs shaped like Q4 with a swept N1/N ratio."""
    from repro.core.query import TextJoinPredicate

    n1 = max(1, int(round(n1_ratio * tuple_count)))
    inputs = make_inputs(
        tuple_count=tuple_count,
        stats={
            "s.advisor": (s1, f1),
            "s.name": (s2, f2),
        },
        distinct={"s.advisor": n1, "s.name": tuple_count},
        constants=constants,
    )
    query = TextJoinQuery(
        relation="s",
        join_predicates=(
            TextJoinPredicate("s.advisor", "author"),
            TextJoinPredicate("s.name", "author"),
        ),
    )
    return inputs, query


def fig1b_series(
    ratios: Sequence[float],
    constants: Optional[CostConstants] = None,
) -> Dict[str, List[float]]:
    """E5 / Figure 1(B): method costs as N1/N sweeps (Q4 shape, s1 = 1)."""
    series: Dict[str, List[float]] = {
        "TS": [],
        "P1+TS": [],
        "P1+RTP": [],
        "SJ+RTP": [],
    }
    for ratio in ratios:
        inputs, query = _q4_like_inputs(ratio, constants=constants)
        series["TS"].append(cost_ts(inputs, query).total)
        series["P1+TS"].append(cost_p_ts(inputs, query, ("s.advisor",)).total)
        series["P1+RTP"].append(cost_p_rtp(inputs, query, ("s.advisor",)).total)
        series["SJ+RTP"].append(cost_sj_rtp(inputs, query).total)
    return series


def fig2_grid(
    s1_values: Sequence[float],
    ratio_values: Sequence[float],
    tuple_count: int = 100,
    constants: Optional[CostConstants] = None,
) -> List[List[str]]:
    """E6 / Figure 2: the TS vs P+TS winner at each (s1, N1/N) point.

    Returns a grid (rows indexed by ratio, columns by s1) of "TS" /
    "P+TS" labels.  The paper's analysis predicts P+TS wins roughly where
    ``s1 < 1 - N1/N``.
    """
    grid: List[List[str]] = []
    for ratio in ratio_values:
        row: List[str] = []
        for s1 in s1_values:
            inputs, query = _q3_like_inputs(
                s1,
                n1_ratio=ratio,
                tuple_count=tuple_count,
                conditional_fanout=2.0,
                constants=constants,
            )
            ts = cost_ts(inputs, query).total
            p_ts = cost_p_ts(inputs, query, ("r.name",)).total
            row.append("P+TS" if p_ts < ts else "TS")
        grid.append(row)
    return grid


# ----------------------------------------------------------------------
# Gateway cache (the PR's acceptance benchmark)
# ----------------------------------------------------------------------
def _cache_workloads(scenario: Scenario) -> List[Tuple[str, str, JoinMethod]]:
    """The workloads the cache benchmark re-executes against one cache."""
    return [
        ("TS x2", "q1", TupleSubstitution()),
        ("TS x2", "q3", TupleSubstitution()),
        (
            "repeated probes (P+TS x2)",
            "q3",
            ProbeTupleSubstitution((scenario.query("q3").join_columns[0],)),
        ),
    ]


def cache_report(scenario: Scenario) -> List[Dict[str, Any]]:
    """Re-execute each workload twice against one shared gateway cache.

    Each entry reports the first-run and second-run metered costs, the
    relative reduction, the cache hit/miss counts, and the simulated
    seconds the cache saved — the numbers behind the acceptance
    criterion that a warm cache cuts the second run's cost by >50%.
    """
    report: List[Dict[str, Any]] = []
    for label, query_id, method in _cache_workloads(scenario):
        cache = GatewayCache()
        tracer = CallTracer(enabled=True)
        context = scenario.context(cache=cache, tracer=tracer)
        query = scenario.query(query_id)

        first = method.execute(query, context)
        second = method.execute(query, context)
        if first.result_keys() != second.result_keys():
            raise AssertionError(
                f"cached re-run of {label} on {query_id} changed the results"
            )
        first_cost = first.cost.total
        second_cost = second.cost.total
        reduction = (
            (first_cost - second_cost) / first_cost if first_cost else 0.0
        )
        report.append(
            {
                "workload": label,
                "query": query_id,
                "method": method.name,
                "first_cost": first_cost,
                "second_cost": second_cost,
                "reduction": reduction,
                "cache_hits": cache.hits,
                "cache_misses": cache.misses,
                "hit_rate": cache.hit_rate,
                "seconds_saved": context.client.ledger.seconds_saved,
                "trace": tracer.summary(),
            }
        )
    return report


# ----------------------------------------------------------------------
# Multi-join (E8) and enumeration complexity (E9)
# ----------------------------------------------------------------------
def multijoin_report(
    scenario: Scenario, query, spaces: Sequence[str] = ("traditional", "prl", "extended")
) -> List[Dict[str, Any]]:
    """E8: optimize and execute one multi-join query in each space."""
    report = []
    baseline_keys = None
    for space in spaces:
        context = scenario.context()
        estimator = PlanEstimator(query, context)
        optimized = optimize_multijoin(query, estimator, space=space)
        execution = execute_plan(optimized.plan, query, scenario.context())
        keys = execution.result_keys()
        if baseline_keys is None:
            baseline_keys = keys
        elif keys != baseline_keys:
            raise AssertionError(f"space {space} changed the query results")
        report.append(
            {
                "space": space,
                "estimated_cost": optimized.estimated_cost,
                "measured_cost": execution.total_cost(),
                "rows": len(execution.rows),
                "plan": optimized.describe(),
                "join_tasks": optimized.join_tasks,
            }
        )
    return report


def enumeration_report(
    relation_counts: Sequence[int],
    spaces: Sequence[str] = ("traditional", "prl"),
) -> List[Dict[str, Any]]:
    """E9: optimizer effort vs number of relations (chain queries)."""
    import time

    report = []
    for count in relation_counts:
        scenario, query = build_chain_scenario(count)
        for space in spaces:
            context = scenario.context()
            estimator = PlanEstimator(query, context)
            started = time.perf_counter()
            optimized = optimize_multijoin(query, estimator, space=space)
            elapsed = time.perf_counter() - started
            report.append(
                {
                    "relations": count,
                    "space": space,
                    "join_tasks": optimized.join_tasks,
                    "plans_considered": optimized.plans_considered,
                    "subsets": optimized.subsets_enumerated,
                    "seconds": elapsed,
                    "estimated_cost": optimized.estimated_cost,
                }
            )
    return report
