"""Benchmark harness: one entry point per paper table/figure (see
DESIGN.md's experiment index and EXPERIMENTS.md for results)."""

from repro.bench.harness import (
    MethodRun,
    cache_report,
    enumeration_report,
    fig1a_series,
    fig1b_series,
    fig2_grid,
    kendall_tau,
    make_inputs,
    multijoin_report,
    ranking_report,
    run_methods,
    table2_rows,
)
from repro.bench.reporting import (
    ascii_table,
    counter_delta_rows,
    format_value,
    series_block,
)

__all__ = [
    "MethodRun",
    "make_inputs",
    "run_methods",
    "table2_rows",
    "ranking_report",
    "kendall_tau",
    "fig1a_series",
    "fig1b_series",
    "fig2_grid",
    "multijoin_report",
    "enumeration_report",
    "cache_report",
    "ascii_table",
    "counter_delta_rows",
    "format_value",
    "series_block",
]
