"""Grouping and aggregation.

Section 3.1 notes that sending one search per *distinct* join-column
projection "can be achieved by either caching the values of join columns
for previous queries, by exploiting an existing order on join columns or
by grouping on the join columns [CS93]" — so the engine provides a
grouping operator.  Aggregates cover the SQL basics: COUNT, COUNT(col),
SUM, MIN, MAX, AVG, with SQL NULL semantics (NULLs ignored; empty groups
yield NULL except COUNT = 0).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.relational.operators import Operator
from repro.relational.row import Row
from repro.relational.schema import Column, Schema
from repro.relational.types import DataType

__all__ = [
    "AggregateSpec",
    "count_rows",
    "count",
    "sum_of",
    "min_of",
    "max_of",
    "avg_of",
    "GroupBy",
]


@dataclass(frozen=True)
class AggregateSpec:
    """One aggregate: output name, result type, and a fold over values.

    ``column`` is ``None`` for COUNT(*) (the fold sees every row);
    otherwise the fold sees the column's non-NULL values.
    """

    output: str
    column: Optional[str]
    data_type: DataType
    fold: Callable[[List[Any]], Any]


def count_rows(output: str = "count") -> AggregateSpec:
    """COUNT(*): number of rows in the group."""
    return AggregateSpec(output, None, DataType.INTEGER, len)


def count(column: str, output: Optional[str] = None) -> AggregateSpec:
    """COUNT(column): number of non-NULL values."""
    return AggregateSpec(
        output or f"count_{column.split('.')[-1]}",
        column,
        DataType.INTEGER,
        len,
    )


def sum_of(column: str, output: Optional[str] = None) -> AggregateSpec:
    """SUM(column); NULL for an all-NULL/empty group."""
    return AggregateSpec(
        output or f"sum_{column.split('.')[-1]}",
        column,
        DataType.FLOAT,
        lambda values: float(sum(values)) if values else None,
    )


def min_of(column: str, output: Optional[str] = None) -> AggregateSpec:
    return AggregateSpec(
        output or f"min_{column.split('.')[-1]}",
        column,
        DataType.FLOAT,
        lambda values: min(values) if values else None,
    )


def max_of(column: str, output: Optional[str] = None) -> AggregateSpec:
    return AggregateSpec(
        output or f"max_{column.split('.')[-1]}",
        column,
        DataType.FLOAT,
        lambda values: max(values) if values else None,
    )


def avg_of(column: str, output: Optional[str] = None) -> AggregateSpec:
    return AggregateSpec(
        output or f"avg_{column.split('.')[-1]}",
        column,
        DataType.FLOAT,
        lambda values: sum(values) / len(values) if values else None,
    )


class GroupBy(Operator):
    """Hash grouping with aggregates; groups in first-seen order.

    With an empty ``keys`` list, aggregates the whole input as one group
    (like SQL's aggregate-without-GROUP-BY, including for empty input).
    """

    def __init__(
        self,
        child: Operator,
        keys: Sequence[str],
        aggregates: Sequence[AggregateSpec] = (),
    ) -> None:
        if not keys and not aggregates:
            raise PlanError("GroupBy needs keys or aggregates")
        names = [spec.output for spec in aggregates]
        if len(set(names)) != len(names):
            raise PlanError("duplicate aggregate output names")
        self.child = child
        self.keys = list(keys)
        self.aggregates = list(aggregates)
        key_columns = [child.output_schema.column(key) for key in self.keys]
        aggregate_columns = [
            Column(spec.output, spec.data_type) for spec in self.aggregates
        ]
        self.output_schema = Schema(key_columns + aggregate_columns)
        self._key_indexes = [
            child.output_schema.index_of(key) for key in self.keys
        ]
        self._value_indexes = [
            None if spec.column is None else child.output_schema.index_of(spec.column)
            for spec in self.aggregates
        ]

    def __iter__(self) -> Iterator[Row]:
        groups: Dict[Tuple[Any, ...], List[Row]] = {}
        for row in self.child:
            key = tuple(row.values[index] for index in self._key_indexes)
            groups.setdefault(key, []).append(row)
        if not self.keys and not groups:
            groups[()] = []  # global aggregate over empty input
        for key, rows in groups.items():
            values: List[Any] = list(key)
            for spec, value_index in zip(self.aggregates, self._value_indexes):
                if value_index is None:
                    values.append(spec.fold(rows))
                else:
                    column_values = [
                        row.values[value_index]
                        for row in rows
                        if row.values[value_index] is not None
                    ]
                    values.append(spec.fold(column_values))
            yield Row(self.output_schema, values)
