"""In-memory heap tables.

A :class:`Table` stores rows as value tuples and exposes an iterator scan.
Values are type-checked (and coerced where safe) against the table schema
on insert, so every downstream operator can trust the data.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.row import Row
from repro.relational.schema import Column, Schema
from repro.relational.types import coerce_value

__all__ = ["Table"]


class Table:
    """A named, schema-typed, in-memory relation.

    The table's columns are stored *unqualified*; :meth:`scan` yields rows
    under the qualified schema (``<table>.<column>``) so that joins over
    multiple tables never collide on column names.
    """

    def __init__(self, name: str, schema: Schema) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        for column in schema:
            if column.qualifier is not None and column.qualifier != name:
                raise SchemaError(
                    f"column {column.name!r} is qualified with a different table"
                )
        self.name = name
        # Store bare column names internally; expose qualified on scan.
        self._schema = Schema(
            Column(column.bare_name, column.data_type) for column in schema
        )
        self._qualified_schema = self._schema.qualified(name)
        self._rows: List[Tuple[Any, ...]] = []

    # ------------------------------------------------------------------
    # schema access
    # ------------------------------------------------------------------
    @property
    def schema(self) -> Schema:
        """The table's qualified schema (``table.column`` names)."""
        return self._qualified_schema

    @property
    def bare_schema(self) -> Schema:
        """The table's schema with unqualified column names."""
        return self._schema

    def column_names(self) -> List[str]:
        """Unqualified column names, in order."""
        return self._schema.names()

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, values: Sequence[Any]) -> None:
        """Insert one row given positionally ordered values."""
        if len(values) != len(self._schema):
            raise SchemaError(
                f"{self.name}: expected {len(self._schema)} values, got {len(values)}"
            )
        coerced = tuple(
            coerce_value(value, column.data_type)
            for value, column in zip(values, self._schema.columns)
        )
        self._rows.append(coerced)

    def insert_dict(self, record: Mapping[str, Any]) -> None:
        """Insert one row from a ``{column: value}`` mapping.

        Missing columns become NULL; unknown keys raise.
        """
        unknown = set(record) - set(self._schema.names())
        if unknown:
            raise SchemaError(f"{self.name}: unknown columns {sorted(unknown)}")
        self.insert([record.get(name) for name in self._schema.names()])

    def insert_many(self, rows: Iterable[Sequence[Any]]) -> None:
        """Insert many positional rows."""
        for values in rows:
            self.insert(values)

    def clear(self) -> None:
        """Delete all rows."""
        self._rows.clear()

    # ------------------------------------------------------------------
    # access
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def scan(self) -> Iterator[Row]:
        """Yield every row under the qualified schema."""
        schema = self._qualified_schema
        for values in self._rows:
            yield Row(schema, values)

    def rows(self) -> List[Row]:
        """Materialize the full scan as a list."""
        return list(self.scan())

    def column_values(self, name: str) -> List[Any]:
        """All values of one column, in row order (accepts bare names)."""
        index = self._schema.index_of(name.split(".", 1)[-1] if "." in name else name)
        return [values[index] for values in self._rows]

    def distinct_values(self, name: str) -> List[Any]:
        """Distinct non-NULL values of one column, in first-seen order."""
        seen = set()
        out: List[Any] = []
        for value in self.column_values(name):
            if value is None or value in seen:
                continue
            seen.add(value)
            out.append(value)
        return out

    def distinct_count(self, name: str) -> int:
        """Number of distinct non-NULL values of one column (``N_i``)."""
        return len(self.distinct_values(name))

    def __repr__(self) -> str:
        return f"Table({self.name!r}, {len(self)} rows, {self._schema!r})"
