"""Rows: immutable tuples bound to a schema.

A :class:`Row` pairs a value tuple with the :class:`~repro.relational.schema.Schema`
that names its positions.  Rows are cheap to create (``__slots__``, no
copying of the schema) because join operators materialize large numbers of
them.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.schema import Schema

__all__ = ["Row"]


class Row:
    """An immutable row of values described by a schema."""

    __slots__ = ("schema", "values")

    def __init__(self, schema: Schema, values: Sequence[Any]) -> None:
        if len(values) != len(schema):
            raise SchemaError(
                f"row has {len(values)} values for schema of {len(schema)} columns"
            )
        self.schema = schema
        self.values: Tuple[Any, ...] = tuple(values)

    def __getitem__(self, name: str) -> Any:
        """Value of the named column (qualified or unambiguous bare name)."""
        return self.values[self.schema.index_of(name)]

    def get(self, name: str, default: Any = None) -> Any:
        """Like ``__getitem__`` but returns ``default`` for unknown names."""
        try:
            return self[name]
        except SchemaError:
            return default

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self.values == other.values and self.schema == other.schema

    def __hash__(self) -> int:
        return hash(self.values)

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{column.name}={value!r}"
            for column, value in zip(self.schema.columns, self.values)
        )
        return f"Row({pairs})"

    def to_dict(self) -> Dict[str, Any]:
        """A ``{column name: value}`` dict (qualified names preserved)."""
        return {
            column.name: value
            for column, value in zip(self.schema.columns, self.values)
        }

    def project(self, names: Sequence[str]) -> "Row":
        """A new row with only the named columns, in the given order."""
        schema = self.schema.project(names)
        return Row(schema, tuple(self[name] for name in names))

    def concat(self, other: "Row") -> "Row":
        """Concatenate two rows (join output)."""
        return Row(self.schema.concat(other.schema), self.values + other.values)
