"""In-memory relational engine substrate.

This subpackage implements the database-system side of the paper's loose
integration: typed tables, an expression language with SQL string
matching (needed by Relational Text Processing), iterator-style physical
operators, secondary indexes, statistics, and CSV I/O.
"""

from repro.relational.aggregates import (
    AggregateSpec,
    GroupBy,
    avg_of,
    count,
    count_rows,
    max_of,
    min_of,
    sum_of,
)
from repro.relational.catalog import Catalog
from repro.relational.csv_io import load_table_csv, save_table_csv
from repro.relational.expressions import (
    And,
    ColumnRef,
    Comparison,
    Contains,
    Expression,
    InList,
    Like,
    Literal,
    Not,
    Or,
    conjoin,
    conjuncts,
)
from repro.relational.indexes import HashIndex, SortedIndex
from repro.relational.operators import (
    CrossProduct,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    MaterializedInput,
    NestedLoopJoin,
    Operator,
    Project,
    Sort,
    TableScan,
    materialize,
)
from repro.relational.row import Row
from repro.relational.schema import Column, Schema
from repro.relational.statistics import (
    ColumnStatistics,
    TableStatistics,
    collect_table_statistics,
)
from repro.relational.table import Table
from repro.relational.types import DataType, coerce_value, infer_type

__all__ = [
    "Catalog",
    "Column",
    "Schema",
    "Row",
    "Table",
    "DataType",
    "coerce_value",
    "infer_type",
    "Expression",
    "ColumnRef",
    "Literal",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Like",
    "Contains",
    "InList",
    "conjoin",
    "conjuncts",
    "Operator",
    "TableScan",
    "MaterializedInput",
    "Filter",
    "Project",
    "Distinct",
    "Sort",
    "Limit",
    "NestedLoopJoin",
    "HashJoin",
    "CrossProduct",
    "materialize",
    "HashIndex",
    "SortedIndex",
    "ColumnStatistics",
    "TableStatistics",
    "collect_table_statistics",
    "load_table_csv",
    "save_table_csv",
    "AggregateSpec",
    "GroupBy",
    "count_rows",
    "count",
    "sum_of",
    "min_of",
    "max_of",
    "avg_of",
]
