"""Physical operators: iterator-style relational algebra.

Each operator is an iterable of :class:`~repro.relational.row.Row` with an
``output_schema`` describing what it yields.  This is the classic Volcano
pull model, kept deliberately small: the paper's relational side only
needs scans, filters, projections, joins, distinct and sort.

Join operators count the tuple comparisons they perform so that the
benchmark harness can report relational work alongside text-system cost.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import PlanError
from repro.relational.expressions import Expression
from repro.relational.row import Row
from repro.relational.schema import Schema
from repro.relational.table import Table

__all__ = [
    "Operator",
    "TableScan",
    "MaterializedInput",
    "Filter",
    "Project",
    "Distinct",
    "Sort",
    "Limit",
    "NestedLoopJoin",
    "HashJoin",
    "CrossProduct",
    "materialize",
]


class Operator:
    """Base class for physical operators (iterable of rows)."""

    output_schema: Schema

    def __iter__(self) -> Iterator[Row]:
        raise NotImplementedError


class TableScan(Operator):
    """Full scan of a base table under its qualified schema."""

    def __init__(self, table: Table) -> None:
        self.table = table
        self.output_schema = table.schema

    def __iter__(self) -> Iterator[Row]:
        return self.table.scan()


class MaterializedInput(Operator):
    """Wrap an already-materialized list of rows as an operator.

    Used for intermediate results (e.g. a probe-reduced relation) that are
    fed back into further joins.
    """

    def __init__(self, schema: Schema, rows: Sequence[Row]) -> None:
        self.output_schema = schema
        self._rows = list(rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __len__(self) -> int:
        return len(self._rows)


class Filter(Operator):
    """Keep rows where the predicate is strictly ``True`` (SQL semantics)."""

    def __init__(self, child: Operator, predicate: Expression) -> None:
        self.child = child
        self.predicate = predicate
        self.output_schema = child.output_schema

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            if self.predicate.evaluate(row) is True:
                yield row


class Project(Operator):
    """Project to the named columns (qualified or unambiguous bare names)."""

    def __init__(self, child: Operator, names: Sequence[str]) -> None:
        self.child = child
        self.names = list(names)
        self.output_schema = child.output_schema.project(self.names)
        self._indexes = [child.output_schema.index_of(name) for name in self.names]

    def __iter__(self) -> Iterator[Row]:
        schema = self.output_schema
        for row in self.child:
            yield Row(schema, tuple(row.values[i] for i in self._indexes))


class Distinct(Operator):
    """Remove duplicate rows (hash-based, preserves first-seen order)."""

    def __init__(self, child: Operator) -> None:
        self.child = child
        self.output_schema = child.output_schema

    def __iter__(self) -> Iterator[Row]:
        seen: set = set()
        for row in self.child:
            if row.values in seen:
                continue
            seen.add(row.values)
            yield row


class Sort(Operator):
    """Sort by the named columns (NULLs first, ascending)."""

    def __init__(
        self, child: Operator, names: Sequence[str], descending: bool = False
    ) -> None:
        self.child = child
        self.names = list(names)
        self.descending = descending
        self.output_schema = child.output_schema
        self._indexes = [child.output_schema.index_of(name) for name in self.names]

    def __iter__(self) -> Iterator[Row]:
        def key(row: Row) -> Tuple[Tuple[bool, Any], ...]:
            # (is_not_null, value) sorts NULLs first and avoids None/any
            # comparisons.
            return tuple(
                (row.values[i] is not None, row.values[i]) for i in self._indexes
            )

        yield from sorted(self.child, key=key, reverse=self.descending)


class Limit(Operator):
    """Pass through at most ``count`` rows."""

    def __init__(self, child: Operator, count: int) -> None:
        if count < 0:
            raise PlanError("limit count must be non-negative")
        self.child = child
        self.count = count
        self.output_schema = child.output_schema

    def __iter__(self) -> Iterator[Row]:
        return itertools.islice(iter(self.child), self.count)


class NestedLoopJoin(Operator):
    """Nested loop join with an arbitrary join predicate.

    The right input is materialized once.  ``comparisons`` counts the
    predicate evaluations performed — the measure of relational work used
    by the benchmark harness.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        predicate: Optional[Expression] = None,
    ) -> None:
        self.left = left
        self.right = right
        self.predicate = predicate
        self.output_schema = left.output_schema.concat(right.output_schema)
        self.comparisons = 0

    def __iter__(self) -> Iterator[Row]:
        right_rows = list(self.right)
        for left_row in self.left:
            for right_row in right_rows:
                joined = left_row.concat(right_row)
                if self.predicate is None:
                    yield joined
                    continue
                self.comparisons += 1
                if self.predicate.evaluate(joined) is True:
                    yield joined


class HashJoin(Operator):
    """Equi-join on column pairs, with an optional residual predicate.

    ``keys`` is a list of ``(left column, right column)`` pairs.  The right
    (build) side is hashed; NULL keys never match, per SQL semantics.
    """

    def __init__(
        self,
        left: Operator,
        right: Operator,
        keys: Sequence[Tuple[str, str]],
        residual: Optional[Expression] = None,
    ) -> None:
        if not keys:
            raise PlanError("HashJoin requires at least one key pair")
        self.left = left
        self.right = right
        self.keys = list(keys)
        self.residual = residual
        self.output_schema = left.output_schema.concat(right.output_schema)
        self._left_indexes = [
            left.output_schema.index_of(left_name) for left_name, _ in self.keys
        ]
        self._right_indexes = [
            right.output_schema.index_of(right_name) for _, right_name in self.keys
        ]
        self.comparisons = 0

    def __iter__(self) -> Iterator[Row]:
        build: Dict[Tuple[Any, ...], List[Row]] = {}
        for row in self.right:
            key = tuple(row.values[i] for i in self._right_indexes)
            if any(part is None for part in key):
                continue
            build.setdefault(key, []).append(row)
        for left_row in self.left:
            key = tuple(left_row.values[i] for i in self._left_indexes)
            if any(part is None for part in key):
                continue
            for right_row in build.get(key, ()):
                joined = left_row.concat(right_row)
                if self.residual is not None:
                    self.comparisons += 1
                    if self.residual.evaluate(joined) is not True:
                        continue
                yield joined


class CrossProduct(Operator):
    """Cartesian product (nested loop with no predicate)."""

    def __init__(self, left: Operator, right: Operator) -> None:
        self.left = left
        self.right = right
        self.output_schema = left.output_schema.concat(right.output_schema)

    def __iter__(self) -> Iterator[Row]:
        right_rows = list(self.right)
        for left_row in self.left:
            for right_row in right_rows:
                yield left_row.concat(right_row)


def materialize(operator: Operator) -> MaterializedInput:
    """Run an operator to completion and wrap the result."""
    return MaterializedInput(operator.output_schema, list(operator))
