"""Secondary indexes on in-memory tables.

The paper's relational side is small, but the optimizer's ``joinPlan``
step "considers access methods", so the engine provides a hash index for
equality lookups and a sorted index for range scans.  Indexes are built
eagerly over a table snapshot; they are read-only views (rebuild after
mutating the table).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Tuple

from repro.relational.row import Row
from repro.relational.table import Table

__all__ = ["HashIndex", "SortedIndex"]


class HashIndex:
    """Hash index mapping a column value to matching rows."""

    def __init__(self, table: Table, column: str) -> None:
        self.table = table
        self.column = column
        self._buckets: Dict[Any, List[Row]] = {}
        index = table.schema.index_of(
            column if "." in column else f"{table.name}.{column}"
        )
        for row in table.scan():
            value = row.values[index]
            if value is None:
                continue
            self._buckets.setdefault(value, []).append(row)

    def lookup(self, value: Any) -> List[Row]:
        """Rows whose indexed column equals ``value`` (NULL matches nothing)."""
        if value is None:
            return []
        return list(self._buckets.get(value, ()))

    def distinct_keys(self) -> List[Any]:
        """All distinct indexed values."""
        return list(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class SortedIndex:
    """Sorted index supporting equality and range lookups.

    NULL values are excluded from the index (SQL predicates never match
    them).
    """

    def __init__(self, table: Table, column: str) -> None:
        self.table = table
        self.column = column
        index = table.schema.index_of(
            column if "." in column else f"{table.name}.{column}"
        )
        pairs: List[Tuple[Any, Row]] = []
        for row in table.scan():
            value = row.values[index]
            if value is None:
                continue
            pairs.append((value, row))
        pairs.sort(key=lambda pair: pair[0])
        self._keys = [key for key, _ in pairs]
        self._rows = [row for _, row in pairs]

    def lookup(self, value: Any) -> List[Row]:
        """Rows whose indexed column equals ``value``."""
        if value is None:
            return []
        lo = bisect.bisect_left(self._keys, value)
        hi = bisect.bisect_right(self._keys, value)
        return self._rows[lo:hi]

    def range(
        self,
        low: Any = None,
        high: Any = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[Row]:
        """Rows with indexed value in the given (optionally open) range."""
        if low is None:
            lo = 0
        elif include_low:
            lo = bisect.bisect_left(self._keys, low)
        else:
            lo = bisect.bisect_right(self._keys, low)
        if high is None:
            hi = len(self._keys)
        elif include_high:
            hi = bisect.bisect_right(self._keys, high)
        else:
            hi = bisect.bisect_left(self._keys, high)
        return iter(self._rows[lo:hi])

    def __len__(self) -> int:
        return len(self._rows)
