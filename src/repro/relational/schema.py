"""Schemas: ordered, named, typed column lists.

Columns are addressed by *qualified* names such as ``student.name``.  A
bare name (``name``) resolves as long as it is unambiguous across the
schema — the same rule SQL uses for unqualified column references.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import SchemaError
from repro.relational.types import DataType

__all__ = ["Column", "Schema"]


@dataclass(frozen=True)
class Column:
    """A single schema column.

    ``name`` may be qualified (``student.name``) or bare (``name``).
    """

    name: str
    data_type: DataType

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.name.count(".") > 1:
            raise SchemaError(f"column name {self.name!r} has too many qualifiers")

    @property
    def qualifier(self) -> Optional[str]:
        """The table qualifier, or ``None`` for a bare column name."""
        if "." in self.name:
            return self.name.split(".", 1)[0]
        return None

    @property
    def bare_name(self) -> str:
        """The column name without its table qualifier."""
        if "." in self.name:
            return self.name.split(".", 1)[1]
        return self.name

    def qualified(self, qualifier: str) -> "Column":
        """Return a copy of this column qualified with ``qualifier``."""
        return Column(f"{qualifier}.{self.bare_name}", self.data_type)


class Schema:
    """An ordered collection of :class:`Column` with name resolution.

    Column lookup accepts either the exact (possibly qualified) name or a
    bare name when that bare name is unique within the schema.
    """

    __slots__ = ("_columns", "_by_name", "_by_bare")

    def __init__(self, columns: Iterable[Column]) -> None:
        self._columns: Tuple[Column, ...] = tuple(columns)
        self._by_name = {}
        self._by_bare = {}
        for index, column in enumerate(self._columns):
            if column.name in self._by_name:
                raise SchemaError(f"duplicate column {column.name!r}")
            self._by_name[column.name] = index
            self._by_bare.setdefault(column.bare_name, []).append(index)

    @classmethod
    def of(cls, *specs: Tuple[str, DataType]) -> "Schema":
        """Build a schema from ``(name, type)`` pairs.

        >>> Schema.of(("name", DataType.VARCHAR), ("year", DataType.INTEGER))
        """
        return cls(Column(name, data_type) for name, data_type in specs)

    @property
    def columns(self) -> Tuple[Column, ...]:
        return self._columns

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        inner = ", ".join(f"{c.name} {c.data_type.value}" for c in self._columns)
        return f"Schema({inner})"

    def names(self) -> List[str]:
        """All column names in order."""
        return [column.name for column in self._columns]

    def index_of(self, name: str) -> int:
        """Resolve ``name`` to a column position.

        Exact (qualified) matches win; otherwise a bare name resolves if
        unambiguous.  Raises :class:`SchemaError` for unknown or ambiguous
        names.
        """
        if name in self._by_name:
            return self._by_name[name]
        candidates = self._by_bare.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        if len(candidates) > 1:
            matches = [self._columns[i].name for i in candidates]
            raise SchemaError(f"ambiguous column {name!r}: matches {matches}")
        raise SchemaError(f"unknown column {name!r} in {self!r}")

    def column(self, name: str) -> Column:
        """Resolve ``name`` to its :class:`Column`."""
        return self._columns[self.index_of(name)]

    def has_column(self, name: str) -> bool:
        """True if ``name`` resolves (exactly or as a unique bare name)."""
        try:
            self.index_of(name)
        except SchemaError:
            return False
        return True

    def qualified(self, qualifier: str) -> "Schema":
        """Return this schema with every column re-qualified."""
        return Schema(column.qualified(qualifier) for column in self._columns)

    def concat(self, other: "Schema") -> "Schema":
        """Concatenate two schemas (for join outputs)."""
        return Schema(self._columns + other._columns)

    def project(self, names: Sequence[str]) -> "Schema":
        """A schema containing only the named columns, in the given order."""
        return Schema(self.column(name) for name in names)
