"""Value types for the relational engine.

The engine supports a deliberately small set of SQL-ish scalar types —
enough to model the paper's university database (``student``, ``faculty``,
``project``) and the relational side of text-join queries.  ``NULL`` is
represented by Python ``None`` and uses three-valued-logic semantics in
comparisons (any comparison with ``NULL`` is unknown, which filters treat
as false).
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from repro.errors import TypeMismatchError

__all__ = ["DataType", "coerce_value", "python_type_of", "infer_type"]


class DataType(enum.Enum):
    """Scalar column types supported by the relational engine."""

    VARCHAR = "varchar"
    INTEGER = "integer"
    FLOAT = "float"
    BOOLEAN = "boolean"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"DataType.{self.name}"


_PYTHON_TYPES = {
    DataType.VARCHAR: str,
    DataType.INTEGER: int,
    DataType.FLOAT: float,
    DataType.BOOLEAN: bool,
}


def python_type_of(data_type: DataType) -> type:
    """Return the Python type used to store values of ``data_type``."""
    return _PYTHON_TYPES[data_type]


def infer_type(value: Any) -> DataType:
    """Infer the :class:`DataType` of a Python value.

    ``bool`` is checked before ``int`` because ``bool`` is a subclass of
    ``int`` in Python.
    """
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT
    if isinstance(value, str):
        return DataType.VARCHAR
    raise TypeMismatchError(f"no relational type for Python value {value!r}")


def coerce_value(value: Any, data_type: DataType) -> Optional[Any]:
    """Coerce ``value`` to the Python representation of ``data_type``.

    ``None`` passes through unchanged (SQL NULL).  Integers widen to floats
    for FLOAT columns; everything else must already have the right type.
    Raises :class:`TypeMismatchError` on failure.
    """
    if value is None:
        return None
    if data_type is DataType.BOOLEAN:
        if isinstance(value, bool):
            return value
    elif data_type is DataType.INTEGER:
        if isinstance(value, bool):
            raise TypeMismatchError(f"boolean {value!r} is not an INTEGER")
        if isinstance(value, int):
            return value
    elif data_type is DataType.FLOAT:
        if isinstance(value, bool):
            raise TypeMismatchError(f"boolean {value!r} is not a FLOAT")
        if isinstance(value, (int, float)):
            return float(value)
    elif data_type is DataType.VARCHAR:
        if isinstance(value, str):
            return value
    raise TypeMismatchError(
        f"value {value!r} (Python {type(value).__name__}) does not fit "
        f"column type {data_type.value}"
    )
