"""Catalog: a registry of named tables.

The catalog is the relational engine's entry point for name resolution:
operators and the optimizer look tables up here rather than holding raw
references, which keeps query descriptions serializable (they mention
table *names*).
"""

from __future__ import annotations

from typing import Dict, Iterator, List

from repro.errors import CatalogError
from repro.relational.schema import Schema
from repro.relational.table import Table

__all__ = ["Catalog"]


class Catalog:
    """A mutable mapping of table name to :class:`Table`."""

    def __init__(self) -> None:
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str, schema: Schema) -> Table:
        """Create and register an empty table. Raises on duplicates."""
        if name in self._tables:
            raise CatalogError(f"table {name!r} already exists")
        table = Table(name, schema)
        self._tables[name] = table
        return table

    def register(self, table: Table) -> Table:
        """Register an existing table under its own name."""
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table. Raises if it does not exist."""
        if name not in self._tables:
            raise CatalogError(f"table {name!r} does not exist")
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Look up a table by name. Raises :class:`CatalogError` if missing."""
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"table {name!r} does not exist") from None

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def table_names(self) -> List[str]:
        """All registered table names, in registration order."""
        return list(self._tables)

    def __repr__(self) -> str:
        return f"Catalog({self.table_names()})"
