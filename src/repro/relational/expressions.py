"""Scalar and boolean expression trees over rows.

These expressions form the relational engine's predicate language: column
references, literals, comparisons, boolean connectives, and the SQL string
operations (``LIKE``, ``CONTAINS``) that the paper's *Relational Text
Processing* method relies on ("SQL provides some, though limited, ability
to do string processing").

Comparisons use SQL three-valued logic: any comparison involving NULL
evaluates to ``None`` (unknown), and filters keep only rows where the
predicate is strictly ``True``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, FrozenSet, List, Optional, Sequence, Tuple

from repro.errors import ExpressionError, TypeMismatchError
from repro.relational.row import Row

__all__ = [
    "Expression",
    "ColumnRef",
    "Literal",
    "Comparison",
    "And",
    "Or",
    "Not",
    "Like",
    "Contains",
    "InList",
    "conjuncts",
    "conjoin",
]


class Expression:
    """Base class for all expressions.

    Subclasses implement :meth:`evaluate` (value given a row) and
    :meth:`referenced_columns` (the set of column names read).
    """

    def evaluate(self, row: Row) -> Any:
        raise NotImplementedError

    def referenced_columns(self) -> FrozenSet[str]:
        raise NotImplementedError

    # Boolean combinators for fluent predicate construction.
    def __and__(self, other: "Expression") -> "And":
        return And((self, other))

    def __or__(self, other: "Expression") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A reference to a named column."""

    name: str

    def evaluate(self, row: Row) -> Any:
        return row[self.name]

    def referenced_columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __repr__(self) -> str:
        return f"col({self.name})"


@dataclass(frozen=True)
class Literal(Expression):
    """A constant value."""

    value: Any

    def evaluate(self, row: Row) -> Any:
        return self.value

    def referenced_columns(self) -> FrozenSet[str]:
        return frozenset()

    def __repr__(self) -> str:
        return f"lit({self.value!r})"


_COMPARATORS: dict = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Comparison(Expression):
    """A binary comparison: ``left <op> right`` with SQL NULL semantics."""

    op: str
    left: Expression
    right: Expression

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Row) -> Optional[bool]:
        left = self.left.evaluate(row)
        right = self.right.evaluate(row)
        if left is None or right is None:
            return None
        try:
            return _COMPARATORS[self.op](left, right)
        except TypeError as exc:
            raise TypeMismatchError(
                f"cannot compare {left!r} {self.op} {right!r}"
            ) from exc

    def referenced_columns(self) -> FrozenSet[str]:
        return self.left.referenced_columns() | self.right.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.left!r} {self.op} {self.right!r})"


@dataclass(frozen=True)
class And(Expression):
    """Conjunction with three-valued logic."""

    operands: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise ExpressionError("And requires at least one operand")

    def evaluate(self, row: Row) -> Optional[bool]:
        saw_unknown = False
        for operand in self.operands:
            value = operand.evaluate(row)
            if value is False:
                return False
            if value is None:
                saw_unknown = True
        return None if saw_unknown else True

    def referenced_columns(self) -> FrozenSet[str]:
        refs: FrozenSet[str] = frozenset()
        for operand in self.operands:
            refs |= operand.referenced_columns()
        return refs

    def __repr__(self) -> str:
        return "(" + " and ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Or(Expression):
    """Disjunction with three-valued logic."""

    operands: Tuple[Expression, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise ExpressionError("Or requires at least one operand")

    def evaluate(self, row: Row) -> Optional[bool]:
        saw_unknown = False
        for operand in self.operands:
            value = operand.evaluate(row)
            if value is True:
                return True
            if value is None:
                saw_unknown = True
        return None if saw_unknown else False

    def referenced_columns(self) -> FrozenSet[str]:
        refs: FrozenSet[str] = frozenset()
        for operand in self.operands:
            refs |= operand.referenced_columns()
        return refs

    def __repr__(self) -> str:
        return "(" + " or ".join(repr(op) for op in self.operands) + ")"


@dataclass(frozen=True)
class Not(Expression):
    """Negation with three-valued logic (NOT unknown = unknown)."""

    operand: Expression

    def evaluate(self, row: Row) -> Optional[bool]:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return not value

    def referenced_columns(self) -> FrozenSet[str]:
        return self.operand.referenced_columns()

    def __repr__(self) -> str:
        return f"(not {self.operand!r})"


def _like_to_regex(pattern: str) -> "re.Pattern[str]":
    """Translate a SQL LIKE pattern (``%``, ``_``) to an anchored regex."""
    out = []
    for char in pattern:
        if char == "%":
            out.append(".*")
        elif char == "_":
            out.append(".")
        else:
            out.append(re.escape(char))
    return re.compile("^" + "".join(out) + "$", re.DOTALL)


@dataclass(frozen=True)
class Like(Expression):
    """SQL ``LIKE``: string pattern matching with ``%`` and ``_``."""

    operand: Expression
    pattern: str

    def evaluate(self, row: Row) -> Optional[bool]:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        if not isinstance(value, str):
            raise TypeMismatchError(f"LIKE applied to non-string {value!r}")
        return _like_to_regex(self.pattern).match(value) is not None

    def referenced_columns(self) -> FrozenSet[str]:
        return self.operand.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} like {self.pattern!r})"


@dataclass(frozen=True)
class Contains(Expression):
    """Case-insensitive word/substring containment.

    This models the SQL string processing the paper's RTP method uses to
    check a join value against a fetched document field.  With
    ``word_boundary=True`` (the default) the needle must appear as a whole
    token, which matches the text system's word-level semantics.
    """

    haystack: Expression
    needle: Expression
    word_boundary: bool = True

    def evaluate(self, row: Row) -> Optional[bool]:
        haystack = self.haystack.evaluate(row)
        needle = self.needle.evaluate(row)
        if haystack is None or needle is None:
            return None
        if not isinstance(haystack, str) or not isinstance(needle, str):
            raise TypeMismatchError(
                f"CONTAINS applied to non-strings {haystack!r}, {needle!r}"
            )
        hay = haystack.lower()
        ndl = needle.lower()
        if not self.word_boundary:
            return ndl in hay
        pattern = r"(?<![0-9a-z])" + re.escape(ndl) + r"(?![0-9a-z])"
        return re.search(pattern, hay) is not None

    def referenced_columns(self) -> FrozenSet[str]:
        return self.haystack.referenced_columns() | self.needle.referenced_columns()

    def __repr__(self) -> str:
        return f"contains({self.haystack!r}, {self.needle!r})"


@dataclass(frozen=True)
class InList(Expression):
    """SQL ``IN (v1, v2, ...)`` over a literal value list."""

    operand: Expression
    values: Tuple[Any, ...]

    def evaluate(self, row: Row) -> Optional[bool]:
        value = self.operand.evaluate(row)
        if value is None:
            return None
        return value in self.values

    def referenced_columns(self) -> FrozenSet[str]:
        return self.operand.referenced_columns()

    def __repr__(self) -> str:
        return f"({self.operand!r} in {list(self.values)!r})"


def conjuncts(expression: Optional[Expression]) -> List[Expression]:
    """Flatten an expression into its top-level AND conjuncts."""
    if expression is None:
        return []
    if isinstance(expression, And):
        out: List[Expression] = []
        for operand in expression.operands:
            out.extend(conjuncts(operand))
        return out
    return [expression]


def conjoin(expressions: Sequence[Expression]) -> Optional[Expression]:
    """Combine expressions with AND; ``None`` for an empty list."""
    flat: List[Expression] = []
    for expression in expressions:
        flat.extend(conjuncts(expression))
    if not flat:
        return None
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))
