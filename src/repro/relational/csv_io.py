"""CSV import/export for tables.

Useful for persisting generated workloads and for loading user data into
the examples.  Values are serialized with Python's :mod:`csv` module;
NULLs round-trip as empty fields, and numeric columns are parsed back
according to the schema.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Optional, Union

from repro.errors import SchemaError
from repro.relational.schema import Schema
from repro.relational.table import Table
from repro.relational.types import DataType

__all__ = ["save_table_csv", "load_table_csv"]


def _serialize(value: Any) -> str:
    if value is None:
        return ""
    if isinstance(value, bool):
        return "true" if value else "false"
    return str(value)


def _parse(text: str, data_type: DataType) -> Optional[Any]:
    if text == "":
        return None
    if data_type is DataType.VARCHAR:
        return text
    if data_type is DataType.INTEGER:
        return int(text)
    if data_type is DataType.FLOAT:
        return float(text)
    if data_type is DataType.BOOLEAN:
        lowered = text.lower()
        if lowered in ("true", "1"):
            return True
        if lowered in ("false", "0"):
            return False
        raise SchemaError(f"cannot parse {text!r} as boolean")
    raise SchemaError(f"unknown data type {data_type!r}")


def save_table_csv(table: Table, path: Union[str, Path]) -> None:
    """Write a table to CSV with a header row of bare column names."""
    path = Path(path)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle)
        writer.writerow(table.column_names())
        for row in table.scan():
            writer.writerow([_serialize(value) for value in row.values])


def load_table_csv(name: str, schema: Schema, path: Union[str, Path]) -> Table:
    """Read a CSV (with header) into a new table under ``schema``.

    The header must list exactly the schema's bare column names, though
    column order in the file may differ from the schema.
    """
    path = Path(path)
    table = Table(name, schema)
    expected = set(table.column_names())
    with path.open("r", newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise SchemaError(f"{path}: empty CSV file") from None
        if set(header) != expected:
            raise SchemaError(
                f"{path}: header {header} does not match schema columns "
                f"{sorted(expected)}"
            )
        type_by_name = {
            column.name: column.data_type for column in table.bare_schema
        }
        for line_number, record in enumerate(reader, start=2):
            if len(record) != len(header):
                raise SchemaError(
                    f"{path}:{line_number}: expected {len(header)} fields, "
                    f"got {len(record)}"
                )
            by_name = dict(zip(header, record))
            table.insert(
                [
                    _parse(by_name[column], type_by_name[column])
                    for column in table.column_names()
                ]
            )
    return table
