"""Relational-side statistics for the optimizer.

The cost model of Section 4 consumes, for the relational operand of a
foreign join: the row count ``N``, the per-column distinct counts ``N_i``,
and selectivities of local (relational) selection predicates.  This module
computes those from table data, mirroring what a System-R catalog would
keep.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

from repro.errors import StatisticsError
from repro.relational.expressions import Expression
from repro.relational.table import Table

__all__ = ["ColumnStatistics", "TableStatistics", "collect_table_statistics"]


@dataclass(frozen=True)
class ColumnStatistics:
    """Statistics for one column of one table."""

    column: str
    distinct_count: int
    null_count: int
    most_common: Tuple[Tuple[Any, int], ...]

    @property
    def top_frequency(self) -> int:
        """Frequency of the most common non-NULL value (0 if empty)."""
        if not self.most_common:
            return 0
        return self.most_common[0][1]


@dataclass
class TableStatistics:
    """Statistics for one table: cardinality and per-column details."""

    table_name: str
    row_count: int
    columns: Dict[str, ColumnStatistics] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStatistics:
        """Statistics for one column (accepts bare or qualified names)."""
        bare = name.split(".", 1)[-1] if "." in name else name
        try:
            return self.columns[bare]
        except KeyError:
            raise StatisticsError(
                f"no statistics for column {name!r} of table {self.table_name!r}"
            ) from None

    def distinct_count(self, name: str) -> int:
        """``N_i``: distinct non-NULL values of one column."""
        return self.column(name).distinct_count

    def selectivity_of_equality(self, name: str) -> float:
        """Estimated selectivity of ``column = constant`` (uniform model)."""
        stats = self.column(name)
        if stats.distinct_count == 0:
            return 0.0
        return 1.0 / stats.distinct_count

    def estimated_rows_after(self, predicate: Optional[Expression]) -> float:
        """Crude row estimate after applying a predicate.

        Without histograms per comparison operator, we use the standard
        System-R defaults: 1/N_i for equality, 1/3 for ranges, 1/10
        otherwise, multiplied over conjuncts.
        """
        from repro.relational.expressions import (
            Comparison,
            ColumnRef,
            Like,
            conjuncts,
        )

        if predicate is None:
            return float(self.row_count)
        selectivity = 1.0
        for conjunct in conjuncts(predicate):
            if isinstance(conjunct, Comparison) and isinstance(
                conjunct.left, ColumnRef
            ):
                name = conjunct.left.name
                if self._has_column(name):
                    if conjunct.op == "=":
                        selectivity *= self.selectivity_of_equality(name)
                        continue
                    if conjunct.op in ("<", "<=", ">", ">="):
                        selectivity *= 1.0 / 3.0
                        continue
                    if conjunct.op == "!=":
                        stats = self.column(name)
                        if stats.distinct_count > 0:
                            selectivity *= 1.0 - 1.0 / stats.distinct_count
                        continue
            if isinstance(conjunct, Like):
                selectivity *= 0.1
                continue
            selectivity *= 0.1
        return self.row_count * selectivity

    def _has_column(self, name: str) -> bool:
        bare = name.split(".", 1)[-1] if "." in name else name
        return bare in self.columns


def collect_table_statistics(
    table: Table, most_common_k: int = 10
) -> TableStatistics:
    """Scan a table once and compute full statistics for every column."""
    stats = TableStatistics(table_name=table.name, row_count=len(table))
    for name in table.column_names():
        values = table.column_values(name)
        non_null = [value for value in values if value is not None]
        counter = Counter(non_null)
        stats.columns[name] = ColumnStatistics(
            column=name,
            distinct_count=len(counter),
            null_count=len(values) - len(non_null),
            most_common=tuple(counter.most_common(most_common_k)),
        )
    return stats
