"""E10 — Section 5: optimal probe-column selection (Examples 5.1/5.2,
Theorem 5.3).

Three claims are exercised analytically, exactly as the paper presents
them:

- **Example 5.1** — under an invocation-dominated model the optimal
  single probe column is *not* necessarily the one with minimal
  selectivity: column i beats column j when
  ``s_i - s_j < (N_j - N_i)/N`` even if ``s_i > s_j``.
- **Example 5.2** — under an independent (k-correlated) model a
  two-column probe can dominate every one-column probe.
- **Theorem 5.3** — for 1-correlated models, the bounded search over
  probe sets of at most 2 columns finds a set as cheap as the exhaustive
  O(2^k) search.
"""

from __future__ import annotations

import random

import pytest

from repro.bench import make_inputs
from repro.bench.reporting import ascii_table
from repro.core.costmodel import cost_p_ts
from repro.core.probe_select import optimal_probe_columns
from repro.core.query import TextJoinPredicate, TextJoinQuery
from repro.gateway.costs import CostConstants

#: Invocation-only cost model (c_p = c_s = c_l = c_a = 0), as in Ex. 5.1.
INVOCATION_ONLY = CostConstants(
    invocation=1.0, per_posting=0.0, short_form=0.0, long_form=0.0, rtp_per_document=0.0
)


def _query(columns):
    return TextJoinQuery(
        relation="r",
        join_predicates=tuple(
            TextJoinPredicate(column, "field") for column in columns
        ),
    )


def test_example_51_min_selectivity_not_optimal(benchmark):
    """Column 1 has *higher* selectivity but fewer distinct values: with
    N_i + s_i N as the invocation count, it still wins."""
    n = 10_000
    inputs = make_inputs(
        tuple_count=n,
        stats={"r.c1": (0.01, 1.0), "r.c2": (0.005, 1.0)},
        distinct={"r.c1": 10, "r.c2": 500},
        constants=INVOCATION_ONLY,
    )
    query = _query(["r.c1", "r.c2"])
    benchmark(optimal_probe_columns, inputs, query, "P+TS")

    c1 = cost_p_ts(inputs, query, ("r.c1",)).total
    c2 = cost_p_ts(inputs, query, ("r.c2",)).total
    # invocations: c1 -> 10 + 0.01*10000 = 110; c2 -> 500 + 0.005*10000 = 550
    assert c1 < c2
    print()
    print(
        ascii_table(
            ["probe column", "s_i", "N_i", "invocations"],
            [["c1", 0.01, 10, round(c1, 1)], ["c2", 0.005, 500, round(c2, 1)]],
            title="E10a: Example 5.1 — min-selectivity column is not optimal",
        )
    )


def test_example_52_two_column_probe_dominates():
    """With cheap multi-column distincts and independent predicates, a
    2-column probe beats every 1-column probe (Example 5.2's setting)."""
    n = 100_000
    inputs = make_inputs(
        tuple_count=n,
        stats={
            "r.c1": (0.005, 1.0),
            "r.c2": (0.01, 1.0),
            "r.c3": (0.01, 1.0),
        },
        distinct={"r.c1": 1000, "r.c2": 10, "r.c3": 10},
        constants=INVOCATION_ONLY,
        g=3,  # independent (k-correlated) joint model
    )
    query = _query(["r.c1", "r.c2", "r.c3"])

    singles = {
        columns: cost_p_ts(inputs, query, columns).total
        for columns in [("r.c1",), ("r.c2",), ("r.c3",)]
    }
    pair = cost_p_ts(inputs, query, ("r.c2", "r.c3")).total
    best_single = min(singles.values())
    assert pair < best_single
    rows = [[",".join(c.split(".")[1] for c in cols), round(cost, 1)]
            for cols, cost in singles.items()]
    rows.append(["c2,c3", round(pair, 1)])
    print()
    print(
        ascii_table(
            ["probe set", "cost"],
            rows,
            title="E10b: Example 5.2 — a 2-column probe dominates all 1-column probes",
        )
    )


def test_theorem_53_bounded_search_is_lossless(benchmark):
    """1-correlated model: searching probe sets of size <= 2 loses nothing
    against the exhaustive O(2^k) search, over many random settings."""
    rng = random.Random(42)

    def one_round():
        k = rng.randint(2, 5)
        columns = [f"r.c{i}" for i in range(k)]
        stats = {
            column: (rng.uniform(0.001, 1.0), rng.uniform(0.1, 20.0))
            for column in columns
        }
        distinct = {column: rng.randint(1, 2000) for column in columns}
        inputs = make_inputs(
            tuple_count=rng.randint(100, 5000),
            stats=stats,
            distinct=distinct,
            g=1,
        )
        query = _query(columns)
        bounded = optimal_probe_columns(inputs, query, "P+TS", exhaustive=False)
        exhaustive = optimal_probe_columns(inputs, query, "P+TS", exhaustive=True)
        assert bounded is not None and exhaustive is not None
        assert bounded.estimate.total == pytest.approx(
            exhaustive.estimate.total, rel=1e-9
        )

    def many_rounds():
        for _ in range(50):
            one_round()

    benchmark.pedantic(many_rounds, rounds=1, iterations=1)
