"""E8 — Section 6: the PrL execution space vs traditional left-deep.

Two workloads:

- **Q5** (Example 6.1's query): the enumerator's PrL plan must never be
  worse than the best traditional left-deep plan (the paper's first
  desideratum), and all spaces must return identical results.
- **The PrL showcase** (Example 6.1's *situation*, amplified): a large
  relation with few distinct values in its text-join column, where a
  probe node strictly beats every left-deep plan — reducing both the
  relational join and the foreign join, exactly the effect the paper's
  example argues for.
"""

from __future__ import annotations

import pytest

from repro.bench import multijoin_report
from repro.bench.reporting import ascii_table
from repro.workload.scenarios import build_prl_scenario


@pytest.fixture(scope="module")
def q5_report(scenario):
    return multijoin_report(scenario, scenario.q5())


@pytest.fixture(scope="module")
def showcase():
    scenario, query = build_prl_scenario()
    return multijoin_report(scenario, query, spaces=("traditional", "prl"))


def _print_report(title, report):
    print()
    rows = [
        [
            entry["space"],
            round(entry["estimated_cost"], 1),
            round(entry["measured_cost"], 1),
            entry["rows"],
        ]
        for entry in report
    ]
    print(
        ascii_table(
            ["space", "estimated (s)", "measured (s)", "rows"], rows, title=title
        )
    )
    for entry in report:
        print(f"\n[{entry['space']}]")
        print(entry["plan"])


def test_q5_regenerate(scenario, benchmark, q5_report):
    benchmark.pedantic(
        lambda: multijoin_report(scenario, scenario.q5()), rounds=1, iterations=1
    )
    _print_report("E8a: Q5 across execution spaces", q5_report)


def test_q5_prl_never_worse_than_traditional(q5_report):
    by_space = {entry["space"]: entry for entry in q5_report}
    assert (
        by_space["prl"]["estimated_cost"]
        <= by_space["traditional"]["estimated_cost"] + 1e-9
    )
    assert (
        by_space["extended"]["estimated_cost"]
        <= by_space["prl"]["estimated_cost"] + 1e-9
    )


def test_q5_all_spaces_same_results(q5_report):
    sizes = {entry["rows"] for entry in q5_report}
    assert len(sizes) == 1


def test_showcase_regenerate(benchmark, showcase):
    def rebuild():
        scenario, query = build_prl_scenario()
        return multijoin_report(scenario, query, spaces=("traditional", "prl"))

    benchmark.pedantic(rebuild, rounds=1, iterations=1)
    _print_report("E8b: PrL showcase (probe node strictly wins)", showcase)


def test_showcase_probe_plan_strictly_wins(showcase):
    by_space = {entry["space"]: entry for entry in showcase}
    traditional = by_space["traditional"]["measured_cost"]
    prl = by_space["prl"]["measured_cost"]
    assert prl < traditional * 0.6, (prl, traditional)
    assert "Probe(" in by_space["prl"]["plan"]
    assert "Probe(" not in by_space["traditional"]["plan"]
