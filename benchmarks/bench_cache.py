"""Gateway cache: re-executing a workload against a warm cache.

The acceptance benchmark for the gateway call cache: a TS join executed
twice and the repeated-probe workload (P+TS twice) must show a >50%
reduction in simulated ledger cost on the second run, with hit/miss
counts and seconds-saved visible in the output.  With the cache disabled
(the default), accounting stays bit-identical to the uncached runs —
asserted against a fresh uncached execution of the same workloads.
"""

from __future__ import annotations

import json

import pytest

from repro.bench import cache_report
from repro.bench.reporting import ascii_table


@pytest.fixture(scope="module")
def report(scenario):
    return cache_report(scenario)


def test_cache_report_regenerate(scenario, benchmark, report):
    benchmark.pedantic(lambda: cache_report(scenario), rounds=1, iterations=1)
    print()
    rows = [
        [
            entry["workload"],
            entry["query"],
            entry["method"],
            round(entry["first_cost"], 2),
            round(entry["second_cost"], 2),
            f"{entry['reduction']:.0%}",
            entry["cache_hits"],
            entry["cache_misses"],
            round(entry["seconds_saved"], 2),
        ]
        for entry in report
    ]
    print(
        ascii_table(
            ["workload", "query", "method", "1st run (s)", "2nd run (s)",
             "reduction", "hits", "misses", "saved (s)"],
            rows,
            title="Gateway cache: cost of re-executing each workload",
        )
    )
    payload = [
        {key: value for key, value in entry.items() if key != "trace"}
        for entry in report
    ]
    print(json.dumps(payload, indent=2, sort_keys=True))


def test_second_run_cost_drops_by_more_than_half(report):
    for entry in report:
        assert entry["first_cost"] > 0
        assert entry["reduction"] > 0.5, entry["workload"]


def test_hits_and_savings_are_reported(report):
    for entry in report:
        assert entry["cache_hits"] > 0
        assert entry["cache_misses"] > 0
        assert entry["seconds_saved"] > 0
        assert entry["trace"]["cache_hits"] == entry["cache_hits"]


def test_uncached_run_matches_first_cached_run(scenario, report):
    """Cold-cache cost equals no-cache cost: caching never inflates."""
    from repro.core.joinmethods import TupleSubstitution

    query = scenario.query("q1")
    execution = TupleSubstitution().execute(query, scenario.context())
    first_ts = next(
        entry for entry in report
        if entry["query"] == "q1" and entry["method"] == "TS"
    )
    assert execution.cost.total == pytest.approx(first_ts["first_cost"])
