"""Engine kernels: optimized vs reference at bit-identical accounting.

The acceptance benchmark for the evaluation kernels (DESIGN.md "Engine
kernels"): on an AND/OR-heavy workload over a Zipfian corpus, the
optimized engine (galloping intersections, heap k-way unions, rewriter
ordering, memoized repeats) must beat the reference engine's linear
pairwise merges by at least 3x wall clock — while the result docids,
the priced ``CostLedger`` totals, and every ``ServerCounters`` field
stay bit-identical.  The speedup must come from skipped *merge* work
alone; every inverted-list retrieval the reference engine performs, the
optimized engine performs too.

Runs two ways:

- under pytest (the CI benchmarks job) at a small corpus;
- standalone: ``python benchmarks/bench_engine.py`` for the full
  50k-document measurement, or ``--smoke`` for a seconds-long sanity
  run (identity checks on, no speedup assertion).
"""

from __future__ import annotations

import argparse
import random
import time
from typing import Dict, List, Sequence, Tuple

from repro.bench.reporting import ascii_table
from repro.gateway.client import TextClient
from repro.textsys.query import (
    AndQuery,
    NotQuery,
    OrQuery,
    SearchNode,
    TermQuery,
    TruncatedQuery,
)
from repro.textsys.server import BooleanTextServer
from repro.workload.corpus import SyntheticCorpus

FIELD = "abstract"
PYTEST_DOC_COUNT = 4000
FULL_DOC_COUNT = 50_000
SMOKE_DOC_COUNT = 800
MIN_SPEEDUP = 3.0


def build_store(doc_count: int, seed: int = 7):
    """A Zipfian corpus: a few huge inverted lists, a long rare tail."""
    return SyntheticCorpus(doc_count, seed=seed).build_store()


def term_bands(server: BooleanTextServer) -> Dict[str, List[str]]:
    """Vocabulary split by document frequency, without charging pages.

    ``common`` terms sit at the Zipf head (lists covering much of the
    corpus), ``mid`` in the body, ``rare`` at the tail — the skew the
    galloping intersection exists for.
    """
    index = server.index
    by_df = sorted(
        index.vocabulary(FIELD),
        key=lambda term: index.list_length(FIELD, term),
        reverse=True,
    )
    count = len(by_df)
    return {
        "common": by_df[:8],
        "mid": by_df[count // 8 : count // 8 + 24],
        "rare": by_df[-24:],
    }


def build_workload(
    server: BooleanTextServer, seed: int = 11
) -> List[Tuple[str, SearchNode]]:
    """(family, query) pairs exercising each kernel's favourite shape."""
    rng = random.Random(seed)
    bands = term_bands(server)

    def pick(band: str) -> str:
        return rng.choice(bands[band])

    def term(band: str) -> TermQuery:
        return TermQuery(FIELD, pick(band))

    workload: List[Tuple[str, SearchNode]] = []
    # Every family conjoins a rare term, keeping RESULTS tiny while the
    # INTERMEDIATE lists stay huge: short-form result construction is
    # identical work in both engines, so small answers keep the timing
    # focused on the merge kernels — exactly the shape probe/semi-join
    # batches produce (a selective author AND broad content terms).
    #
    # Skewed conjunctions: tiny list x huge list.  The reference engine
    # walks both lists linearly; the optimized engine gallops.
    for _ in range(30):
        workload.append(("skewed AND", AndQuery((term("common"), term("rare")))))
    for _ in range(15):
        workload.append(
            ("3-way AND", AndQuery((term("common"), term("mid"), term("rare"))))
        )
    # NOT inside a conjunction: the reference engine materializes the
    # complement against all_docs; the optimized engine subtracts from
    # the (tiny) running intersection.
    for _ in range(15):
        workload.append(
            ("AND NOT", AndQuery((term("rare"), NotQuery(term("common")))))
        )
    # Wide disjunctions (the OR-batched semi-join shape): pairwise
    # folding is quadratic in the fan-in; the heap union is one pass.
    for _ in range(15):
        members = tuple(
            TermQuery(FIELD, word) for word in rng.sample(bands["mid"], 12)
        )
        workload.append(("wide OR + AND", AndQuery((OrQuery(members), term("rare")))))
    # Repeated subtrees: the reference engine evaluates the disjunction
    # twice; the optimized engine evaluates once and charge-walks the
    # duplicate.
    for _ in range(15):
        shared = OrQuery(
            tuple(TermQuery(FIELD, word) for word in rng.sample(bands["mid"], 6))
        )
        workload.append(
            ("repeated subtree", AndQuery((shared, shared, term("rare"))))
        )
    # Truncations expand to many lists: k-way union vs pairwise fold.
    prefixes = sorted({word[:2] for word in bands["common"] + bands["mid"]})
    for _ in range(15):
        workload.append(
            (
                "truncation + AND",
                AndQuery((TruncatedQuery(FIELD, rng.choice(prefixes)), term("rare"))),
            )
        )
    return workload


def run_mode(store, workload: Sequence[Tuple[str, SearchNode]], mode: str):
    """Run the workload on a fresh server; index build is not timed."""
    server = BooleanTextServer(store, engine_mode=mode)
    client = TextClient(server)
    family_seconds: Dict[str, float] = {}
    docids: List[Tuple[str, ...]] = []
    for family, query in workload:
        started = time.perf_counter()
        docids.append(client.search(query).docids)
        family_seconds[family] = family_seconds.get(family, 0.0) + (
            time.perf_counter() - started
        )
    return {
        "seconds": sum(family_seconds.values()),
        "family_seconds": family_seconds,
        "docids": docids,
        "ledger_total": client.ledger.total,
        "counters": server.counters.as_dict(),
    }


def compare_modes(store, workload):
    reference = run_mode(store, workload, "reference")
    optimized = run_mode(store, workload, "optimized")
    # The observable outputs must not know which engine ran.
    assert optimized["docids"] == reference["docids"]
    assert optimized["ledger_total"] == reference["ledger_total"]
    assert optimized["counters"] == reference["counters"]
    return reference, optimized


def report(reference, optimized, doc_count: int) -> str:
    rows = []
    for family, ref_seconds in reference["family_seconds"].items():
        opt_seconds = optimized["family_seconds"][family]
        rows.append(
            [
                family,
                round(ref_seconds, 4),
                round(opt_seconds, 4),
                f"{ref_seconds / opt_seconds:.1f}x",
            ]
        )
    speedup = reference["seconds"] / optimized["seconds"]
    rows.append(
        [
            "TOTAL",
            round(reference["seconds"], 4),
            round(optimized["seconds"], 4),
            f"{speedup:.1f}x",
        ]
    )
    return ascii_table(
        ["workload", "reference (s)", "optimized (s)", "speedup"],
        rows,
        title=(
            f"engine kernels at {doc_count} documents "
            "(docids, ledger, counters bit-identical)"
        ),
    )


# ----------------------------------------------------------------------
# pytest entry point (CI benchmarks job)
# ----------------------------------------------------------------------
def test_optimized_kernels_speedup_with_identical_accounting():
    store = build_store(PYTEST_DOC_COUNT)
    workload = build_workload(BooleanTextServer(store))
    # Best-of-2 on total wall clock: absorbs one-off interpreter noise.
    runs = [compare_modes(store, workload) for _ in range(2)]
    reference, optimized = min(
        runs, key=lambda pair: pair[1]["seconds"] / pair[0]["seconds"]
    )
    speedup = reference["seconds"] / optimized["seconds"]
    print()
    print(report(reference, optimized, PYTEST_DOC_COUNT))
    assert speedup >= MIN_SPEEDUP, (
        f"optimized engine only {speedup:.2f}x over reference "
        f"(needs {MIN_SPEEDUP}x)"
    )


# ----------------------------------------------------------------------
# standalone entry point (full-size measurement / CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--docs",
        type=int,
        default=FULL_DOC_COUNT,
        help=f"corpus size (default {FULL_DOC_COUNT})",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help=f"tiny corpus ({SMOKE_DOC_COUNT} docs), identity checks only",
    )
    parser.add_argument("--seed", type=int, default=7)
    options = parser.parse_args(argv)
    doc_count = SMOKE_DOC_COUNT if options.smoke else options.docs

    started = time.perf_counter()
    store = build_store(doc_count, seed=options.seed)
    server = BooleanTextServer(store)
    workload = build_workload(server)
    print(
        f"built + indexed {doc_count} documents, {len(workload)} queries "
        f"in {time.perf_counter() - started:.1f}s"
    )
    reference, optimized = compare_modes(store, workload)
    print(report(reference, optimized, doc_count))
    speedup = reference["seconds"] / optimized["seconds"]
    if options.smoke:
        print(f"smoke OK: accounting identical, speedup {speedup:.1f}x (not asserted)")
        return 0
    if speedup < MIN_SPEEDUP:
        print(f"FAIL: speedup {speedup:.2f}x below the {MIN_SPEEDUP}x floor")
        return 1
    print(f"OK: {speedup:.1f}x at bit-identical accounting")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
