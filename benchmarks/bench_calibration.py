"""E2 — Section 4.1 calibration: the single-search cost formula.

Verifies (and times) that one metered search is charged exactly

    c_i + c_p * (postings processed) + c_s * |result set|

and that a long-form retrieval is charged ``c_l``, reproducing the cost
decomposition the paper calibrated on the live OpenODB ↔ Mercury link.
"""

from __future__ import annotations

import pytest

from repro.bench.reporting import ascii_table
from repro.textsys.parser import parse_search

SEARCHES = [
    "TI='text'",
    "TI='belief update'",
    "AU='garcia000adv'",
    "TI='text' and AU='garcia000adv'",
    "TI='distributed' or TI='parallel'",
]


def test_single_search_cost_decomposition(scenario, benchmark):
    client = scenario.client()
    node = parse_search(SEARCHES[0])
    benchmark(client.server.search, node)

    rows = []
    for expression in SEARCHES:
        probe_client = scenario.client()
        result = probe_client.search(expression)
        constants = probe_client.ledger.constants
        expected = constants.search_cost(result.postings_processed, len(result))
        actual = probe_client.ledger.total
        assert actual == pytest.approx(expected)
        rows.append(
            [
                expression,
                result.postings_processed,
                len(result),
                round(actual, 4),
            ]
        )
    print()
    print(
        ascii_table(
            ["search", "postings", "results", "cost (s)"],
            rows,
            title="E2: single-search cost = c_i + c_p*postings + c_s*|result|",
        )
    )


def test_long_form_retrieval_cost(scenario):
    client = scenario.client()
    result = client.search("TI='text'")
    before = client.ledger.total
    client.retrieve(result.docids[0])
    assert client.ledger.total - before == pytest.approx(
        client.ledger.constants.long_form
    )
