"""E6 — Figure 2: TS vs P+TS winner regions over the (s1, N1/N) plane.

The paper: "The number of invocations in TS is simply N, while that in
P+TS is N1 + s1 N.  The area occupied by P+TS should thus be
N1 + s1 N < N, or s1 < 1 - N1/N, which is approximately the area shown
in Figure 2.  We can see that each method constitutes about half of the
space."

Shape assertions:
- the winner at each grid point agrees with the ``s1 < 1 - N1/N``
  boundary except in a thin band around it;
- each method occupies a substantial fraction of the space.
"""

from __future__ import annotations

import pytest

from repro.bench import fig2_grid

S1_VALUES = [round(i / 10, 2) for i in range(11)]
RATIOS = [0.01] + [round(i / 10, 2) for i in range(1, 11)]


@pytest.fixture(scope="module")
def grid():
    return fig2_grid(S1_VALUES, RATIOS)


def test_fig2_regenerate(benchmark, grid):
    benchmark.pedantic(lambda: fig2_grid(S1_VALUES, RATIOS), rounds=1, iterations=1)
    print()
    print("E6: Figure 2 — winner at each (s1 across, N1/N down); P = P+TS")
    header = "N1/N \\ s1 " + " ".join(f"{s1:>5}" for s1 in S1_VALUES)
    print(header)
    for ratio, row in zip(RATIOS, grid):
        cells = " ".join(f"{'P' if w == 'P+TS' else 'T':>5}" for w in row)
        print(f"{ratio:>9} {cells}")


def test_boundary_matches_analysis(grid):
    """Winners agree with s1 < 1 - N1/N away from the boundary band."""
    agreements = total = 0
    for ratio, row in zip(RATIOS, grid):
        for s1, winner in zip(S1_VALUES, row):
            margin = (1.0 - ratio) - s1
            if abs(margin) < 0.15:
                continue  # thin band around the boundary: either may win
            total += 1
            predicted = "P+TS" if margin > 0 else "TS"
            if winner == predicted:
                agreements += 1
    assert total > 30
    assert agreements / total > 0.9


def test_each_method_wins_substantial_fraction(grid):
    flat = [winner for row in grid for winner in row]
    p_share = flat.count("P+TS") / len(flat)
    assert 0.25 < p_share < 0.75  # "each method constitutes about half"
