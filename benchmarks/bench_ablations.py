"""Ablation benchmarks for the design choices DESIGN.md calls out.

- **Distinct-only TS** (Section 3.1's refinement): sending one search per
  distinct join-column projection vs one per tuple.
- **Probe ordering** (Section 3.3): probe-first (matches the C_P + c_i R
  cost formula) vs the paper's pseudo-code full-query-first order, which
  trades one wasted full search per failing probe group against one
  saved probe per succeeding group.
- **Term limit M** (Section 3.2): semi-join invocation count scales as
  ceil(|terms| / M) — a smaller M erodes SJ's advantage.
"""

from __future__ import annotations


from repro.bench.reporting import ascii_table
from repro.core.joinmethods import (
    ProbeTupleSubstitution,
    SemiJoinRtp,
    TupleSubstitution,
)
from repro.gateway.client import TextClient
from repro.core.joinmethods.base import JoinContext
from repro.textsys.server import BooleanTextServer


def test_distinct_only_ts_vs_naive(scenario, benchmark):
    """Distinct-only TS sends one search per distinct projection.

    In Q3 the (name, member) pairs are all distinct, so both variants
    tie; in Q4 every advisor repeats across students and the naive
    variant is strictly worse when run per-tuple... but Q4 pairs are
    also distinct.  The cleanest demonstration: Q2 after dropping the
    advisor filter, where many students share no filter — here we use Q1
    whose join column (name) is unique per tuple, plus a duplicated
    variant built on the fly.
    """
    query = scenario.q4()
    distinct_runs = TupleSubstitution(distinct_only=True).execute(
        query, scenario.context()
    )
    naive_runs = TupleSubstitution(distinct_only=False).execute(
        query, scenario.context()
    )
    assert distinct_runs.result_keys() == naive_runs.result_keys()
    # Q4's (advisor, name) projections are distinct per tuple: equal cost.
    assert distinct_runs.cost.searches <= naive_runs.cost.searches
    benchmark.pedantic(
        lambda: TupleSubstitution().execute(query, scenario.context()),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        ascii_table(
            ["variant", "searches", "cost (s)"],
            [
                ["TS (distinct)", distinct_runs.cost.searches,
                 round(distinct_runs.cost.total, 2)],
                ["TS (naive)", naive_runs.cost.searches,
                 round(naive_runs.cost.total, 2)],
            ],
            title="Ablation: distinct-only tuple substitution",
        )
    )


def test_probe_order_ablation(scenario, benchmark):
    """Probe-first vs the paper's full-query-first pseudo-code on Q3/Q4.

    Q3 (selective probe column): probe-first avoids a wasted full search
    per failing probe group and wins.  Q4 (s1 = 1, every probe succeeds):
    full-query-first never sends a probe at all and wins.
    """
    rows = []
    for query_id in ("q3", "q4"):
        query = scenario.query(query_id)
        probe_column = query.join_columns[0]
        results = {}
        for probe_first in (True, False):
            method = ProbeTupleSubstitution(
                (probe_column,), probe_first=probe_first
            )
            execution = method.execute(query, scenario.context())
            results[probe_first] = execution
            rows.append(
                [
                    query_id,
                    "probe-first" if probe_first else "full-first",
                    execution.cost.searches,
                    round(execution.cost.total, 2),
                ]
            )
        assert results[True].result_keys() == results[False].result_keys()
        if query_id == "q3":
            assert results[True].cost.total < results[False].cost.total
        else:
            assert results[False].cost.total <= results[True].cost.total
    benchmark.pedantic(
        lambda: ProbeTupleSubstitution(
            (scenario.q3().join_columns[0],)
        ).execute(scenario.q3(), scenario.context()),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        ascii_table(
            ["query", "order", "searches", "cost (s)"],
            rows,
            title="Ablation: probe-first vs full-query-first P+TS",
        )
    )


def test_term_limit_ablation(scenario, benchmark):
    """SJ+RTP invocations grow as the per-search term limit M shrinks."""
    query = scenario.q1(long_form=False)
    rows = []
    costs = {}
    for term_limit in (70, 20, 5, 2):
        server = BooleanTextServer(scenario.server.store, term_limit=term_limit)
        client = TextClient(server, constants=scenario.constants)
        context = JoinContext(scenario.catalog, client)
        execution = SemiJoinRtp().execute(query, context)
        costs[term_limit] = execution.cost
        rows.append(
            [term_limit, execution.cost.searches, round(execution.cost.total, 2)]
        )
    assert costs[2].searches > costs[20].searches > costs[70].searches
    assert costs[2].total > costs[70].total
    benchmark.pedantic(
        lambda: SemiJoinRtp().execute(query, scenario.context()),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        ascii_table(
            ["term limit M", "searches", "cost (s)"],
            rows,
            title="Ablation: semi-join batching vs the term limit",
        )
    )


def test_semijoin_batching_discipline(scenario, benchmark):
    """Full-conjunct SJ+RTP vs the classic one-attribute SJ1+RTP on Q3.

    SJ1 ships only one column's values (fewer terms -> fewer batches) but
    fetches every document matching that single predicate (here: the two
    hot project names x 100 title documents), then pays RTP over the
    larger fetch.  Full conjuncts fetch only true join documents.
    """
    from repro.core.joinmethods import SingleColumnSemiJoinRtp

    query = scenario.q3()
    full = SemiJoinRtp().execute(query, scenario.context())
    by_name = SingleColumnSemiJoinRtp("project.name").execute(
        query, scenario.context()
    )
    by_member = SingleColumnSemiJoinRtp("project.member").execute(
        query, scenario.context()
    )
    assert full.result_keys() == by_name.result_keys() == by_member.result_keys()
    # The one-attribute fetch is a superset of the full-conjunct fetch.
    assert by_name.cost.short_documents >= full.cost.short_documents
    benchmark.pedantic(
        lambda: SemiJoinRtp().execute(query, scenario.context()),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        ascii_table(
            ["variant", "searches", "docs fetched", "cost (s)"],
            [
                ["SJ+RTP (full conjuncts)", full.cost.searches,
                 full.cost.short_documents, round(full.cost.total, 2)],
                ["SJ1(name)+RTP", by_name.cost.searches,
                 by_name.cost.short_documents, round(by_name.cost.total, 2)],
                ["SJ1(member)+RTP", by_member.cost.searches,
                 by_member.cost.short_documents, round(by_member.cost.total, 2)],
            ],
            title="Ablation: semi-join batching discipline (Q3)",
        )
    )
