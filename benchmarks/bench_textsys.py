"""Substrate microbenchmarks: the Boolean text engine itself.

Not a paper artifact — these keep the text system honest: index build
throughput, single-term lookups, conjunctive searches over long lists,
phrase evaluation, and OR-batched semi-join searches, all on the default
4000-document corpus.
"""

from __future__ import annotations


from repro.textsys.parser import parse_search
from repro.textsys.query import TermQuery, or_all
from repro.workload.corpus import SyntheticCorpus
import random


def test_index_build_throughput(benchmark):
    corpus = SyntheticCorpus(1000, seed=3)
    store = corpus.build_store()
    from repro.textsys.inverted_index import InvertedIndex

    index = benchmark(InvertedIndex, store)
    assert index.document_count == 1000


def test_single_term_search(scenario, benchmark):
    result = benchmark(scenario.server.search, "TI='text'")
    assert len(result) == 100


def test_conjunctive_search(scenario, benchmark):
    node = parse_search("TI='distributed' and TI='systems'")
    result = benchmark(scenario.server.search, node)
    assert result.postings_processed > 0


def test_phrase_search(scenario, benchmark):
    result = benchmark(scenario.server.search, "TI='belief update'")
    assert len(result) == 4


def test_or_batched_search(scenario, benchmark):
    rng = random.Random(5)
    vocabulary = scenario.server.index.vocabulary("author")
    terms = rng.sample(vocabulary, 60)
    node = or_all([TermQuery("author", term) for term in terms])
    result = benchmark(scenario.server.search, node)
    assert len(result) > 0
