"""Cost-model validation beyond the four canonical queries.

The paper validates its formulas on Q1–Q4.  This bench stress-tests the
same claim over a population of *random* single-join worlds: for each
world, every applicable method is priced and executed, and we measure

- how often the predicted winner is the measured winner;
- the average rank correlation between predicted and measured orders.

Estimation noise (the independence assumptions in U/V, selection-join
correlation) is expected; the claim under test is that *rankings*
survive it on a clear majority of worlds — the property the optimizer
actually relies on.
"""

from __future__ import annotations

import random

import pytest

from repro.bench.harness import kendall_tau
from repro.bench.reporting import ascii_table
from repro.core.inputs import build_cost_inputs
from repro.core.joinmethods import JoinContext
from repro.core.optimizer.single_join import enumerate_method_choices
from repro.core.query import TextJoinPredicate, TextJoinQuery, TextSelection
from repro.gateway.client import TextClient
from repro.relational.catalog import Catalog
from repro.relational.schema import Schema
from repro.relational.types import DataType
from repro.textsys.server import BooleanTextServer
from repro.workload.corpus import SyntheticCorpus
from repro.workload.vocabulary import reserved_pool

WORLD_COUNT = 12


def build_world(seed: int):
    """A random 2-predicate join world with planted statistics."""
    rng = random.Random(seed)
    corpus = SyntheticCorpus(rng.randint(500, 1500), seed=seed + 1)
    pool_a = reserved_pool("wa", rng.randint(5, 40), rng)
    pool_b = reserved_pool("wb", rng.randint(20, 80), rng)
    corpus.plant_pool(
        pool_a, "title",
        selectivity=rng.uniform(0.05, 0.9),
        conditional_fanout=rng.randint(1, 20),
    )
    corpus.plant_pool(
        pool_b, "author",
        selectivity=rng.uniform(0.05, 0.9),
        conditional_fanout=rng.randint(1, 4),
    )
    selection_docs = rng.randint(2, 60)
    corpus.plant_phrase("hot topic", "title", selection_docs)
    corpus.pad_authors(per_document=1, pool_size=100)

    catalog = Catalog()
    table = catalog.create_table(
        "r", Schema.of(("a", DataType.VARCHAR), ("b", DataType.VARCHAR))
    )
    for _ in range(rng.randint(20, 120)):
        table.insert([rng.choice(pool_a), rng.choice(pool_b)])

    server = BooleanTextServer(corpus.build_store())
    selections = (
        (TextSelection("hot topic", "title"),) if rng.random() < 0.5 else ()
    )
    query = TextJoinQuery(
        relation="r",
        join_predicates=(
            TextJoinPredicate("r.a", "title"),
            TextJoinPredicate("r.b", "author"),
        ),
        text_selections=selections,
    )
    return catalog, server, query


def evaluate_world(seed: int):
    catalog, server, query = build_world(seed)
    inputs = build_cost_inputs(query, JoinContext(catalog, TextClient(server)))
    choices = enumerate_method_choices(query, inputs)
    predicted = {c.estimate.method: c.estimate.total for c in choices}

    measured = {}
    reference = None
    for choice in choices:
        context = JoinContext(catalog, TextClient(server))
        execution = choice.method.execute(query, context)
        keys = execution.result_keys()
        if reference is None:
            reference = keys
        assert keys == reference, (choice.name, seed)
        measured[choice.estimate.method] = execution.cost.total

    predicted_order = sorted(predicted, key=predicted.get)
    measured_order = sorted(measured, key=measured.get)
    return {
        "seed": seed,
        "winner_match": predicted_order[0] == measured_order[0],
        "tau": kendall_tau(measured_order, predicted_order),
        "predicted_winner": predicted_order[0],
        "measured_winner": measured_order[0],
    }


@pytest.fixture(scope="module")
def population():
    return [evaluate_world(seed) for seed in range(100, 100 + WORLD_COUNT)]


def test_costmodel_validation_regenerate(benchmark, population):
    benchmark.pedantic(lambda: evaluate_world(100), rounds=1, iterations=1)
    rows = [
        [
            entry["seed"],
            entry["predicted_winner"],
            entry["measured_winner"],
            entry["winner_match"],
            round(entry["tau"], 2),
        ]
        for entry in population
    ]
    matches = sum(entry["winner_match"] for entry in population)
    rows.append(["TOTAL", "-", "-", f"{matches}/{len(population)}",
                 round(sum(e["tau"] for e in population) / len(population), 2)])
    print()
    print(
        ascii_table(
            ["world", "predicted winner", "measured winner", "match", "tau"],
            rows,
            title="Cost-model validation over random worlds",
        )
    )


def test_winner_predicted_on_clear_majority(population):
    matches = sum(entry["winner_match"] for entry in population)
    assert matches / len(population) >= 0.7, population


def test_rankings_positively_correlated(population):
    mean_tau = sum(entry["tau"] for entry in population) / len(population)
    assert mean_tau >= 0.5, mean_tau
    assert all(entry["tau"] > -0.5 for entry in population)


def test_correlation_model_sensitivity(population, benchmark):
    """The paper validated rankings under the *fully correlated* model
    (g = 1).  Re-price the same random worlds under the independent
    model (g = k) and compare winner-prediction accuracy: the 1-correlated
    model should do at least as well on these planted (correlated)
    workloads."""
    def accuracy(g: int) -> float:
        matches = 0
        for seed in range(100, 100 + WORLD_COUNT):
            catalog, server, query = build_world(seed)
            inputs = build_cost_inputs(
                query, JoinContext(catalog, TextClient(server)), g=g
            )
            choices = enumerate_method_choices(query, inputs)
            predicted_winner = choices[0].estimate.method

            measured = {}
            for choice in choices:
                context = JoinContext(catalog, TextClient(server))
                execution = choice.method.execute(query, context)
                measured[choice.estimate.method] = execution.cost.total
            measured_winner = min(measured, key=measured.get)
            matches += predicted_winner == measured_winner
        return matches / WORLD_COUNT

    correlated = benchmark.pedantic(lambda: accuracy(1), rounds=1, iterations=1)
    independent = accuracy(2)
    print()
    print(
        ascii_table(
            ["model", "winner accuracy"],
            [["1-correlated (paper)", f"{correlated:.0%}"],
             ["2-correlated (independent)", f"{independent:.0%}"]],
            title="Correlation-model sensitivity (same random worlds)",
        )
    )
    assert correlated >= 0.7
    assert correlated >= independent - 0.25  # 1-correlated holds its own
