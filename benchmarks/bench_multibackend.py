"""Heterogeneous backends behind one optimizer: the joint-query benchmark.

The acceptance benchmark for the multi-backend tentpole
(:mod:`repro.bench.multibackend`): ONE query joins the ``student``
relation against a Boolean text source *and* a vector (ranked) source,
and the optimizer must choose per-predicate, per-backend:

- the Boolean half keeps the full Section 3 method space and its
  probe-based pruning — the planted advisor column makes a ``P(...)``
  method win;
- the vector half is restricted to the ranked strategy space (Section 8:
  ranking breaks the monotonicity the probe methods rely on) — one
  distinct binding makes ``V-TOPK`` win, and sweeping the binding count
  up (``student.name``: 14 bindings) flips the choice to ``V-SCAN``;
- every foreign charge lands on its own backend's ledger with its own
  constants, and the registry-wide total is exactly the per-backend sum
  (DESIGN invariant 15).

Run standalone for the full report, or ``--smoke`` for the CI sanity
pass (same assertions, one paragraph of output).
"""

from __future__ import annotations

import argparse
import sys
import time

import pytest

from repro.bench.multibackend import (
    build_multibackend_scenario,
    multibackend_report,
)
from repro.core.joinmethods import VectorCorpusScan, VectorTopKProbe
from repro.core.joinmethods.vector import vector_joining_rows


@pytest.fixture(scope="module")
def scenario():
    return build_multibackend_scenario(seed=11, document_count=300)


def test_optimizer_splits_methods_per_backend(scenario):
    """EXPLAIN shows a probe method for Boolean, a top-k for vector."""
    report = multibackend_report(scenario)
    explain = report["explain"]
    print()
    print(explain)
    assert "Chosen: P(" in explain
    assert "Chosen: V-TOPK" in explain
    assert report["plan"].boolean_choice.estimate.method.startswith("P(")
    assert report["plan"].vector_choice.name.startswith("V-TOPK")


def test_joint_query_returns_ranked_coauthors(scenario):
    """End to end: the planted co-authoring students come back, ranked."""
    report = multibackend_report(scenario)
    execution = report["execution"]
    names = {row["student.name"] for row in execution.rows}
    assert names  # the planted co-author/advisor overlap survives
    assert names <= set(scenario.parameters["coauthors"])
    for row, matches in execution.row_matches:
        assert matches, "every surviving tuple must carry ranked matches"
        scores = [entry.score for entry in matches]
        assert scores == sorted(scores, reverse=True)
        assert all(score > 0.0 for score in scores)


def test_binding_count_flips_topk_to_scan(scenario):
    """14 distinct bindings make the corpus dump cheaper than 14 probes."""
    single = multibackend_report(scenario, vector_column="student.area")
    many = multibackend_report(scenario, vector_column="student.name")
    assert single["plan"].vector_choice.name.startswith("V-TOPK")
    assert many["plan"].vector_choice.name == "V-SCAN"
    # The estimates justify the flip, not just the labels.
    by_name = {c.name: c.estimate.total for c in many["plan"].vector_choices}
    assert by_name["V-SCAN"] < by_name["V-TOPK(k=5)"]


def test_charges_attributed_per_backend(scenario):
    """Invariant 15: each half charges its own ledger; total = sum."""
    report = multibackend_report(scenario)
    accounts = scenario.registry.report()
    assert accounts["mercury"]["source_kind"] == "boolean"
    assert accounts["vsim"]["source_kind"] == "vector"
    assert accounts["mercury"]["total"] > 0
    assert accounts["vsim"]["total"] > 0
    assert report["registry_total"] == pytest.approx(
        accounts["mercury"]["total"] + accounts["vsim"]["total"]
    )
    execution = report["execution"]
    assert execution.boolean_execution.cost.total == pytest.approx(
        accounts["mercury"]["total"]
    )
    assert execution.vector_execution.cost.total == pytest.approx(
        accounts["vsim"]["total"]
    )


def test_both_strategies_return_identical_matches(scenario):
    """V-TOPK and V-SCAN differ in cost only, never in answers."""
    for column in ("student.area", "student.name"):
        query = scenario.query(vector_column=column)
        rows = vector_joining_rows(
            scenario.vector_context(), "student", base_query=query.boolean
        )
        probe = VectorTopKProbe().run(
            query.vector, rows, scenario.vector_context()
        )
        scan = VectorCorpusScan().run(
            query.vector, rows, scenario.vector_context()
        )
        assert probe.result_keys() == scan.result_keys()
        assert scan.searches == 1
        if column == "student.area":
            # One shared area: one probe, and planted topic words match.
            assert probe.searches == 1
            assert probe.result_keys()
        else:
            # 14 distinct names: probes scale with bindings.
            assert probe.searches == len(rows) > 1


# ----------------------------------------------------------------------
# standalone entry point (full report / CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--docs", type=int, default=300, help="corpus size (default 300)"
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="assert the method split and attribution, print one paragraph",
    )
    options = parser.parse_args(argv)

    started = time.perf_counter()
    scenario = build_multibackend_scenario(
        seed=options.seed, document_count=options.docs
    )
    print(
        f"built {options.docs} documents behind 2 backends "
        f"({', '.join(scenario.registry.names())}) "
        f"in {time.perf_counter() - started:.1f}s"
    )

    report = multibackend_report(scenario)
    boolean_method = report["plan"].boolean_choice.estimate.method
    vector_method = report["plan"].vector_choice.name
    if not options.smoke:
        print()
        print(report["explain"])
        print()
    if not (boolean_method.startswith("P(") and vector_method.startswith("V-TOPK")):
        print(f"FAIL: expected P(...) + V-TOPK, got {boolean_method} + {vector_method}")
        return 1
    rows = len(report["execution"].rows)
    if rows == 0:
        print("FAIL: joint query returned no rows")
        return 1

    accounts = scenario.registry.report()
    total = accounts["mercury"]["total"] + accounts["vsim"]["total"]
    if abs(report["registry_total"] - total) > 1e-9:
        print("FAIL: registry total is not the per-backend sum")
        return 1
    print(report["attribution"])

    flipped = multibackend_report(scenario, vector_column="student.name")
    if flipped["plan"].vector_choice.name != "V-SCAN":
        print("FAIL: high-cardinality column did not flip V-TOPK to V-SCAN")
        return 1

    print(
        f"OK: {boolean_method} + {vector_method} -> {rows} ranked rows; "
        f"14-binding column flips to V-SCAN; attribution exact "
        f"({report['registry_total']:.2f}s = "
        f"{accounts['mercury']['total']:.2f}s mercury + "
        f"{accounts['vsim']['total']:.2f}s vsim)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
