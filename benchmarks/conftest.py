"""Shared fixtures for the benchmark suite.

The default scenario is expensive to build (corpus indexing), so it is
constructed once per session and shared; every benchmark takes a fresh
metered client from it.
"""

from __future__ import annotations

import pytest

from repro.workload import build_default_scenario


@pytest.fixture(scope="session")
def scenario():
    """The canonical Table-2 scenario (seeded, deterministic)."""
    return build_default_scenario(seed=7)
