"""Concurrent multi-tenant serving: throughput scaling at exact accounting.

The acceptance benchmark for the serving front-end
(:mod:`repro.serving`), driving sustained mixed-tenant load through
:class:`~repro.serving.service.QueryService` over the remote transport
stack:

- **charge identity** (DESIGN invariant 12): with the gateway cache off,
  each tenant's cumulative :class:`~repro.gateway.costs.CostLedger`
  after the concurrent run must be **bit-identical** to a serial run of
  the same queries — across worker counts AND deployments (1 shard /
  pool 1 vs 4 shards / pool 4).  The cost model must notice neither the
  concurrency nor the deployment;
- **throughput scaling**: on the ``wan`` profile with real sleeps, QPS
  must climb the deployment ladder — serial < concurrent workers <
  workers + a transport pool wider than the worker count (batch frames
  then overlap *within* each query too).  The 4-shard row is reported
  for contrast: scattered searches pay full wire time on EVERY shard,
  so sharding does not help a search-heavy serving mix — the same
  call-division story as ``bench_sharding`` (shards win on
  retrieve-heavy loads, where routing divides the frames).

Run standalone for the full measurement, or ``--smoke`` for a
seconds-long CI sanity pass (identity asserted, speedups reported).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Dict, List, Optional, Tuple

import pytest

from repro.bench.reporting import ascii_table
from repro.core.joinmethods import BatchedTupleSubstitution, JoinContext
from repro.errors import AdmissionRejected, BudgetExceededError
from repro.gateway.client import TextClient
from repro.gateway.costs import CostLedger
from repro.remote import build_sharded_transport
from repro.serving import QueryService, TenantSpec
from repro.workload import build_default_scenario

#: The mixed-tenant load: four tenants with 4:2:1:1 scheduler weights.
TENANTS = [
    TenantSpec("dana", weight=4.0),
    TenantSpec("carol", weight=2.0),
    TenantSpec("alice", weight=1.0),
    TenantSpec("bob", weight=1.0),
]

QUERIES_PER_TENANT = 4

#: The deployment ladder the throughput phase climbs (label, shards,
#: pool, workers).  The last row is the contrast case, not a rung.
DEPLOYMENTS = [
    ("serial (1 worker, pool 1)", 1, 1, 1),
    ("4 workers, pool 1", 1, 1, 4),
    ("4 workers, pool 16", 1, 16, 4),
    ("4 workers, pool 8, 4 shards", 4, 8, 4),
]

MIN_WORKER_SPEEDUP = 2.0  # measured ~4x: workers 1 -> 4
MIN_POOL_SPEEDUP = 1.5  # measured ~3x: pool 1 -> 16 at 4 workers
MIN_TOTAL_SPEEDUP = 3.0  # measured ~13x end to end


def build_submissions(per_tenant: int) -> List[Tuple[str, str]]:
    """Round-robin (tenant, query) stream alternating q2 and q4."""
    submissions: List[Tuple[str, str]] = []
    for round_index in range(per_tenant):
        query_id = "q2" if round_index % 2 == 0 else "q4"
        for spec in TENANTS:
            submissions.append((spec.name, query_id))
    return submissions


def make_service(
    scenario,
    shards: int,
    pool: int,
    time_scale: float,
    workers: int = 4,
    capacity: int = 64,
    tenants: Optional[List[TenantSpec]] = None,
) -> QueryService:
    backend = build_sharded_transport(
        scenario.server,
        shards,
        profile="wan",
        seed=7,
        time_scale=time_scale,
        pool_size=pool,
    )
    return QueryService(
        scenario,
        tenants if tenants is not None else TENANTS,
        workers=workers,
        capacity=capacity,
        backend=backend,
    )


def run_load(service: QueryService, submissions) -> Dict[str, object]:
    """Submit everything (honouring retry-after backpressure), wait, time it."""
    method = BatchedTupleSubstitution()
    started = time.perf_counter()
    tickets = []
    rejections = 0
    with service:
        for tenant, query_id in submissions:
            while True:
                try:
                    tickets.append(service.submit(tenant, query_id, method=method))
                    break
                except AdmissionRejected as rejected:
                    rejections += 1
                    time.sleep(rejected.retry_after)
        for ticket in tickets:
            ticket.result(timeout=600)
    seconds = time.perf_counter() - started
    service.backend.close()
    return {
        "seconds": seconds,
        "qps": len(tickets) / seconds,
        "rejections": rejections,
        "totals": service.ledger_totals(),
        "snapshot": service.metrics_snapshot(),
        "service": service,
    }


def serial_totals(scenario, submissions) -> Dict[str, float]:
    """The oracle: same queries, one thread, one cumulative ledger/tenant."""
    backend = build_sharded_transport(
        scenario.server,
        1,
        profile="wan",
        seed=7,
        time_scale=0.0,
        pool_size=1,
    )
    method = BatchedTupleSubstitution()
    ledgers: Dict[str, CostLedger] = {}
    for tenant, query_id in submissions:
        ledger = ledgers.setdefault(
            tenant, CostLedger(constants=scenario.constants)
        )
        client = TextClient(backend, ledger=ledger)
        context = JoinContext(scenario.catalog, client)
        method.execute(scenario.query(query_id), context)
    backend.close()
    return {tenant: ledger.total for tenant, ledger in ledgers.items()}


def identity_check(scenario, submissions) -> Dict[str, float]:
    """Concurrent == serial, and invariant across deployments. Raises on drift."""
    oracle = serial_totals(scenario, submissions)
    for shards, pool in ((1, 1), (4, 4)):
        outcome = run_load(
            make_service(scenario, shards, pool, time_scale=0.0), submissions
        )
        for tenant, total in oracle.items():
            got = outcome["totals"][tenant]
            if got != total:
                raise AssertionError(
                    f"tenant {tenant!r} on {shards} shard(s)/pool {pool}: "
                    f"concurrent total {got!r} != serial {total!r}"
                )
    return oracle


def climb_ladder(scenario, submissions) -> List[Tuple[str, Dict]]:
    """Run the workload on every deployment; real wan sleeps throughout."""
    return [
        (
            label,
            run_load(
                make_service(scenario, shards, pool, 1.0, workers=workers),
                submissions,
            ),
        )
        for label, shards, pool, workers in DEPLOYMENTS
    ]


def report(ladder: List[Tuple[str, Dict]]) -> str:
    rows = [
        [
            label,
            f"{outcome['seconds']:.2f}",
            f"{outcome['qps']:.1f}",
            outcome["rejections"],
            f"{outcome['snapshot']['latency_p50'] * 1000:.0f}",
            f"{outcome['snapshot']['latency_p99'] * 1000:.0f}",
        ]
        for label, outcome in ladder
    ]
    return ascii_table(
        ["deployment", "seconds", "qps", "rejections", "p50 ms", "p99 ms"],
        rows,
        title="mixed-tenant serving (wan profile, real sleeps)",
    )


def ladder_speedups(ladder: List[Tuple[str, Dict]]) -> Tuple[float, float, float]:
    """(workers 1->4, pool 1->16 at 4 workers, end-to-end) QPS ratios."""
    serial, workers, pooled = (outcome for _, outcome in ladder[:3])
    return (
        workers["qps"] / serial["qps"],
        pooled["qps"] / workers["qps"],
        pooled["qps"] / serial["qps"],
    )


# ----------------------------------------------------------------------
# pytest entry points (CI benchmarks job)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serving_scenario():
    return build_default_scenario(seed=7, document_count=1500)


def test_concurrent_ledgers_bit_identical_to_serial(serving_scenario):
    submissions = build_submissions(QUERIES_PER_TENANT)
    oracle = identity_check(serving_scenario, submissions)
    assert set(oracle) == {spec.name for spec in TENANTS}
    assert all(total > 0 for total in oracle.values())


def test_throughput_climbs_the_deployment_ladder(serving_scenario):
    submissions = build_submissions(QUERIES_PER_TENANT)
    # Best-of-2 absorbs one-off scheduler noise; the sleeps are real.
    attempts = [
        climb_ladder(serving_scenario, submissions) for _ in range(2)
    ]
    ladder = max(attempts, key=lambda run: ladder_speedups(run)[2])
    print()
    print(report(ladder))
    worker_speedup, pool_speedup, total_speedup = ladder_speedups(ladder)
    assert worker_speedup >= MIN_WORKER_SPEEDUP, (
        f"4 workers only {worker_speedup:.2f}x over serial "
        f"(needs {MIN_WORKER_SPEEDUP}x)"
    )
    assert pool_speedup >= MIN_POOL_SPEEDUP, (
        f"pool 16 only {pool_speedup:.2f}x over pool 1 "
        f"(needs {MIN_POOL_SPEEDUP}x)"
    )
    assert total_speedup >= MIN_TOTAL_SPEEDUP


def test_budget_and_backpressure_under_load(serving_scenario):
    """A budgeted tenant dies mid-run; a tiny queue bounces submissions."""
    tenants = TENANTS + [TenantSpec("edith", budget_seconds=10.0)]
    service = make_service(
        serving_scenario, shards=1, pool=1, time_scale=0.0,
        capacity=2, tenants=tenants,
    )
    budget_aborts = 0
    with service:
        tickets = []
        for _ in range(6):
            try:
                tickets.append(service.submit("edith", "q2"))
            except AdmissionRejected:
                time.sleep(0.01)
            except BudgetExceededError:
                budget_aborts += 1
        for ticket in tickets:
            try:
                ticket.result(timeout=60)
            except BudgetExceededError:
                budget_aborts += 1
    service.backend.close()
    # One q2 costs ~50s simulated: the first query blows the 10s budget
    # (its charges stay), and every later admission refuses.
    assert budget_aborts >= 2
    state = service.tenant("edith")
    assert state.ledger.exhausted
    assert state.ledger.total > 10.0


# ----------------------------------------------------------------------
# standalone entry point (full measurement / CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--docs", type=int, default=4000, help="corpus size (default 4000)"
    )
    parser.add_argument(
        "--per-tenant",
        type=int,
        default=8,
        help="queries per tenant (default 8)",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus and workload; identity asserted, speedups reported",
    )
    parser.add_argument("--seed", type=int, default=7)
    options = parser.parse_args(argv)
    doc_count = 800 if options.smoke else options.docs
    per_tenant = 2 if options.smoke else options.per_tenant

    started = time.perf_counter()
    scenario = build_default_scenario(seed=options.seed, document_count=doc_count)
    print(
        f"built + indexed {doc_count} documents "
        f"in {time.perf_counter() - started:.1f}s"
    )
    submissions = build_submissions(per_tenant)
    print(
        f"workload: {len(submissions)} queries across {len(TENANTS)} tenants"
    )

    oracle = identity_check(scenario, submissions)
    print(
        "identity OK: per-tenant totals bit-identical to the serial run "
        "on 1 shard/pool 1 AND 4 shards/pool 4"
    )
    for tenant, total in sorted(oracle.items()):
        print(f"  {tenant:<8} {total:12.3f} simulated seconds")

    ladder = climb_ladder(scenario, submissions)
    print(report(ladder))
    worker_speedup, pool_speedup, total_speedup = ladder_speedups(ladder)
    summary = (
        f"workers 1->4: {worker_speedup:.1f}x, pool 1->16: "
        f"{pool_speedup:.1f}x, end to end: {total_speedup:.1f}x"
    )
    if options.smoke:
        print(f"smoke OK: identity exact; {summary} (not asserted)")
        return 0
    if (
        worker_speedup < MIN_WORKER_SPEEDUP
        or pool_speedup < MIN_POOL_SPEEDUP
        or total_speedup < MIN_TOTAL_SPEEDUP
    ):
        print(f"FAIL: {summary} below floors")
        return 1
    print(f"OK: {summary} at bit-identical accounting")
    return 0


if __name__ == "__main__":
    sys.exit(main())
