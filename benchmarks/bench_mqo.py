"""Windowed multi-query sharing under a concurrent tenant load.

Eight tenants submit join queries in lockstep rounds against a WAN
deployment with real sleeps AND a capacity-limited text server: the
remote end grants only ``SERVER_SLOTS`` concurrent query slots, the way
a real retrieval service admission-limits its query processors (the
paper's Mercury server was exactly such a shared resource).  Against a
capacity-limited server, avoided work is avoided wall-clock: at 80%
overlap (4 of 5 rounds are the same query for everyone) the
shared-search executor collapses the duplicated text-system work, so
aggregate throughput should rise well over 2x; at 0% overlap (every
submission carries a tenant-unique text selection) sharing must cost
(almost) nothing.

Two phases:

1. **Identity** (``time_scale=0``): per-tenant charged totals with
   sharing ON are *bit-identical* to a serial, unshared oracle —
   DESIGN invariant 16 at benchmark scale.  Raises on any drift.
2. **Throughput** (real sleeps): sharing ON vs OFF at 80% and 0%
   overlap; headline ratios printed and written to ``BENCH_mqo.json``.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import threading
import time
from pathlib import Path
from typing import Dict, List, Tuple

import pytest

from repro.bench.reporting import ascii_table
from repro.core.joinmethods import JoinContext, TupleSubstitution
from repro.core.query import TextSelection
from repro.errors import AdmissionRejected
from repro.gateway.client import TextClient
from repro.gateway.costs import CostLedger
from repro.remote import build_sharded_transport
from repro.serving import QueryService, TenantSpec
from repro.workload import build_default_scenario

TENANTS = [TenantSpec(f"t{index}") for index in range(8)]

#: Rounds alternate between the two canonical join queries.
ROUND_QUERIES = ("q2", "q4")

SHARE_WINDOW = 0.02
POOL_SIZE = 2
WORKERS = 8
SERVER_SLOTS = 2  # concurrent query slots the "remote" server grants
TIME_SCALE = 0.5  # wan latency 20ms -> 10ms per remote call


class CapacityLimitedBackend:
    """A text backend with a bounded number of concurrent query slots.

    Models server-side admission control: callers beyond the limit
    queue on the semaphore, so total throughput is capped no matter how
    many front-end workers call in — which is precisely the regime
    where deduplicating shared work buys wall-clock time.
    """

    def __init__(self, inner, slots: int) -> None:
        self._inner = inner
        self._slots = threading.BoundedSemaphore(slots)

    def search(self, query):
        with self._slots:
            return self._inner.search(query)

    def search_batch(self, queries):
        with self._slots:
            return self._inner.search_batch(queries)

    def retrieve(self, docid):
        with self._slots:
            return self._inner.retrieve(docid)

    def retrieve_many(self, docids):
        with self._slots:
            return self._inner.retrieve_many(docids)

    def __getattr__(self, name):
        return getattr(self._inner, name)

MIN_SHARING_SPEEDUP = 2.0  # 80% overlap: sharing ON vs OFF
MAX_DISJOINT_REGRESSION = 0.05  # 0% overlap: ON may lose at most 5%


def build_submissions(scenario, rounds: int, overlap_percent: int):
    """(tenant, query) stream: ``overlap_percent`` of rounds are
    lockstep-identical across all eight tenants; the rest give every
    tenant a unique extra text selection, so nothing can be shared."""
    submissions: List[Tuple[str, object]] = []
    shared_rounds = round(rounds * overlap_percent / 100)
    for round_index in range(rounds):
        base = scenario.query(ROUND_QUERIES[round_index % len(ROUND_QUERIES)])
        shared = round_index < shared_rounds
        for spec in TENANTS:
            if shared:
                query = base
            else:
                # A df=0 term unique per (tenant, round): same join
                # work server-side, but no two submissions share a
                # canonical form.
                marker = TextSelection(
                    f"zzz{spec.name}x{round_index}", "title"
                )
                query = dataclasses.replace(
                    base, text_selections=base.text_selections + (marker,)
                )
            submissions.append((spec.name, query))
    return submissions


def make_service(
    scenario, time_scale: float, sharing: bool, cache=None
) -> QueryService:
    backend = CapacityLimitedBackend(
        build_sharded_transport(
            scenario.server,
            1,
            profile="wan",
            seed=7,
            time_scale=time_scale,
            pool_size=POOL_SIZE,
        ),
        SERVER_SLOTS,
    )
    return QueryService(
        scenario,
        TENANTS,
        workers=WORKERS,
        capacity=64,
        backend=backend,
        cache=cache,
        share_window=SHARE_WINDOW if sharing else None,
    )


def run_load(service: QueryService, submissions) -> Dict[str, object]:
    started = time.perf_counter()
    tickets = []
    with service:
        for tenant, query in submissions:
            while True:
                try:
                    tickets.append(service.submit(tenant, query))
                    break
                except AdmissionRejected as rejected:
                    time.sleep(rejected.retry_after)
        for ticket in tickets:
            ticket.result(timeout=600)
    seconds = time.perf_counter() - started
    service.backend.close()
    snapshot = service.metrics_snapshot()
    return {
        "seconds": seconds,
        "qps": len(tickets) / seconds,
        "totals": service.ledger_totals(),
        "shared_searches": (
            snapshot.get("sharing", {}).get("shared_searches", 0)
        ),
        "seconds_shared": (
            snapshot.get("sharing", {}).get("seconds_shared", 0.0)
        ),
    }


def serial_totals(scenario, submissions) -> Dict[str, float]:
    """The alone oracle: one thread, no sharing, cumulative per tenant."""
    backend = build_sharded_transport(
        scenario.server, 1, profile="wan", seed=7,
        time_scale=0.0, pool_size=1,
    )
    ledgers: Dict[str, CostLedger] = {}
    for tenant, query in submissions:
        ledger = ledgers.setdefault(
            tenant, CostLedger(constants=scenario.constants)
        )
        client = TextClient(backend, ledger=ledger)
        context = JoinContext(scenario.catalog, client)
        TupleSubstitution().execute(query, context)
    backend.close()
    return {tenant: ledger.total for tenant, ledger in ledgers.items()}


def identity_check(scenario, submissions) -> None:
    """Invariant 16: sharing ON charges exactly as if each tenant ran
    alone.  Raises AssertionError on any drift."""
    oracle = serial_totals(scenario, submissions)
    outcome = run_load(make_service(scenario, 0.0, sharing=True), submissions)
    for tenant, total in oracle.items():
        got = outcome["totals"][tenant]
        if got != total:
            raise AssertionError(
                f"tenant {tenant!r}: shared-run total {got!r} != "
                f"alone total {total!r} (invariant 16 violated)"
            )


def identity_check_all(scenario, rounds: int) -> None:
    """Both workload shapes: lockstep-shared and fully disjoint (the
    disjoint one exercises window batching of *distinct* flights)."""
    for overlap in (80, 0):
        identity_check(scenario, build_submissions(scenario, rounds, overlap))


def throughput_contrast(scenario, rounds: int):
    """[(overlap, off, on)] for 80% and 0% overlap, real sleeps."""
    contrasts = []
    for overlap in (80, 0):
        submissions = build_submissions(scenario, rounds, overlap)
        off = run_load(
            make_service(scenario, TIME_SCALE, sharing=False), submissions
        )
        on = run_load(
            make_service(scenario, TIME_SCALE, sharing=True), submissions
        )
        contrasts.append((overlap, off, on))
    return contrasts


def report(contrasts) -> str:
    rows = []
    for overlap, off, on in contrasts:
        rows.append(
            [
                f"{overlap}%",
                f"{off['qps']:.1f}",
                f"{on['qps']:.1f}",
                f"{on['qps'] / off['qps']:.2f}x",
                on["shared_searches"],
                f"{on['seconds_shared']:.0f}",
            ]
        )
    return ascii_table(
        [
            "overlap",
            "qps off",
            "qps on",
            "speedup",
            "joins",
            "shared s",
        ],
        rows,
        title=(
            f"cross-query sharing, {len(TENANTS)} tenants, wan, "
            f"{SERVER_SLOTS} server slots (real sleeps)"
        ),
    )


def headline(contrasts) -> Dict[str, float]:
    by_overlap = {overlap: (off, on) for overlap, off, on in contrasts}
    off80, on80 = by_overlap[80]
    off0, on0 = by_overlap[0]
    return {
        "tenants": len(TENANTS),
        "overlap80_qps_off": off80["qps"],
        "overlap80_qps_on": on80["qps"],
        "overlap80_speedup": on80["qps"] / off80["qps"],
        "overlap80_shared_searches": on80["shared_searches"],
        "overlap0_qps_off": off0["qps"],
        "overlap0_qps_on": on0["qps"],
        "overlap0_ratio": on0["qps"] / off0["qps"],
    }


def write_headline(numbers: Dict[str, float], path: Path) -> None:
    path.write_text(json.dumps(numbers, indent=2, sort_keys=True) + "\n")


# ----------------------------------------------------------------------
# pytest entry points (CI benchmarks job)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def mqo_scenario():
    return build_default_scenario(seed=7, document_count=800)


def test_sharing_charges_bit_identical_to_alone(mqo_scenario):
    identity_check_all(mqo_scenario, rounds=5)


def test_sharing_speedup_at_80_percent_overlap(mqo_scenario):
    submissions = build_submissions(mqo_scenario, 5, 80)
    # Best-of-2 absorbs one-off scheduler noise; the sleeps are real.
    best = 0.0
    for _ in range(2):
        off = run_load(
            make_service(mqo_scenario, TIME_SCALE, sharing=False),
            submissions,
        )
        on = run_load(
            make_service(mqo_scenario, TIME_SCALE, sharing=True),
            submissions,
        )
        best = max(best, on["qps"] / off["qps"])
        if best >= MIN_SHARING_SPEEDUP:
            break
    assert best >= MIN_SHARING_SPEEDUP, (
        f"sharing only {best:.2f}x at 80% overlap "
        f"(needs {MIN_SHARING_SPEEDUP}x)"
    )


def test_sharing_costs_little_without_overlap(mqo_scenario):
    submissions = build_submissions(mqo_scenario, 5, 0)
    best = 0.0
    for _ in range(2):
        off = run_load(
            make_service(mqo_scenario, TIME_SCALE, sharing=False),
            submissions,
        )
        on = run_load(
            make_service(mqo_scenario, TIME_SCALE, sharing=True),
            submissions,
        )
        best = max(best, on["qps"] / off["qps"])
        if best >= 1.0 - MAX_DISJOINT_REGRESSION:
            break
    assert best >= 1.0 - MAX_DISJOINT_REGRESSION, (
        f"sharing lost {(1.0 - best) * 100:.1f}% at 0% overlap "
        f"(allowed {MAX_DISJOINT_REGRESSION * 100:.0f}%)"
    )


# ----------------------------------------------------------------------
# standalone entry point (full measurement / CI smoke)
# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--docs", type=int, default=4000, help="corpus size (default 4000)"
    )
    parser.add_argument(
        "--rounds", type=int, default=10, help="rounds per overlap level"
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny corpus/workload; identity asserted, speedups reported",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--out",
        default="BENCH_mqo.json",
        help="headline numbers file (default BENCH_mqo.json)",
    )
    options = parser.parse_args(argv)
    doc_count = 800 if options.smoke else options.docs
    rounds = 5 if options.smoke else options.rounds

    started = time.perf_counter()
    scenario = build_default_scenario(
        seed=options.seed, document_count=doc_count
    )
    print(
        f"built + indexed {doc_count} documents "
        f"in {time.perf_counter() - started:.1f}s"
    )

    identity_check_all(scenario, rounds)
    print(
        "identity OK: sharing ON charges every tenant bit-identically "
        "to running alone, shared and disjoint (invariant 16)"
    )

    contrasts = throughput_contrast(scenario, rounds)
    print(report(contrasts))
    numbers = headline(contrasts)
    write_headline(numbers, Path(options.out))
    print(f"headline numbers -> {options.out}")

    summary = (
        f"80% overlap: {numbers['overlap80_speedup']:.1f}x, "
        f"0% overlap: {numbers['overlap0_ratio']:.2f}x"
    )
    if options.smoke:
        print(f"smoke OK: identity exact; {summary} (not asserted)")
        return 0
    if numbers["overlap80_speedup"] < MIN_SHARING_SPEEDUP:
        print(f"FAIL: {summary} below {MIN_SHARING_SPEEDUP}x floor")
        return 1
    if numbers["overlap0_ratio"] < 1.0 - MAX_DISJOINT_REGRESSION:
        print(f"FAIL: {summary} regresses the disjoint workload")
        return 1
    print(f"OK: {summary} at bit-identical accounting")
    return 0


if __name__ == "__main__":
    sys.exit(main())
