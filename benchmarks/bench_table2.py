"""E3 — Table 2: execution costs of every join method on Q1–Q4.

Regenerates the paper's Table 2 (execution times for sample queries) on
the synthetic scenario and asserts its *shape*: the winner per query and
the dominance relations the paper reports.

Paper (seconds, OpenODB ↔ Mercury):

    method    Q1    Q2    Q3    Q4
    TS        145   52    328   43
    RTP       8     91    -     -
    SJ(+RTP)  18    9     97    20
    P+TS      -     -     81    52
    P+RTP     -     -     118   12
"""

from __future__ import annotations

import pytest

from repro.bench import table2_rows
from repro.bench.reporting import ascii_table


@pytest.fixture(scope="module")
def table2(scenario):
    return table2_rows(scenario)


def _cost(runs, method_prefix):
    for run in runs:
        if run.method.startswith(method_prefix) or run.method == method_prefix:
            return run.measured_cost
    raise KeyError(method_prefix)


def test_table2_regenerate(scenario, benchmark, table2):
    benchmark.pedantic(
        lambda: table2_rows(scenario), rounds=1, iterations=1
    )
    print()
    rows = []
    for query_id, runs in table2.items():
        for run in runs:
            rows.append(
                [
                    query_id,
                    run.method,
                    round(run.measured_cost, 2),
                    run.predicted_cost and round(run.predicted_cost, 2),
                    run.searches,
                    run.results,
                ]
            )
    print(
        ascii_table(
            ["query", "method", "measured (s)", "predicted (s)", "searches", "results"],
            rows,
            title="E3: Table 2 — execution costs of join methods on Q1-Q4",
        )
    )


def test_q1_shape(table2):
    """Q1: RTP wins; SJ+RTP second; TS far worse (paper: 8 < 18 << 145)."""
    runs = table2["q1"]
    rtp = _cost(runs, "RTP")
    sj = _cost(runs, "SJ+RTP")
    ts = _cost(runs, "TS")
    assert rtp < sj < ts
    assert ts / rtp > 4  # TS is several-fold worse


def test_q2_shape(table2):
    """Q2: SJ wins; RTP is the worst (paper: 9 < 52 < 91)."""
    runs = table2["q2"]
    sj = _cost(runs, "SJ")
    ts = _cost(runs, "TS")
    rtp = _cost(runs, "RTP")
    assert sj < ts < rtp
    assert ts / sj > 5


def test_q3_shape(table2):
    """Q3: P+TS < SJ+RTP < P+RTP < TS (paper: 81 < 97 < 118 < 328)."""
    runs = table2["q3"]
    p_ts = _cost(runs, "P(name)+TS")
    sj = _cost(runs, "SJ+RTP")
    p_rtp = _cost(runs, "P(name)+RTP")
    ts = _cost(runs, "TS")
    assert p_ts < sj < p_rtp < ts
    assert ts / p_ts > 2.5


def test_q4_shape(table2):
    """Q4: P+RTP < SJ+RTP < TS < P+TS (paper: 12 < 20 < 43 < 52).

    The key inversions: probing on a selectivity-1 column makes P+TS the
    *worst* method, while P+RTP still wins through cheap fetches.
    """
    runs = table2["q4"]
    p_rtp = _cost(runs, "P(advisor)+RTP")
    sj = _cost(runs, "SJ+RTP")
    ts = _cost(runs, "TS")
    p_ts = _cost(runs, "P(advisor)+TS")
    assert p_rtp < sj < ts < p_ts


def test_all_methods_agree_on_results(table2):
    """Every method returns the same result set (checked during the run)."""
    for runs in table2.values():
        sizes = {run.results for run in runs}
        assert len(sizes) == 1
