"""E5 — Figure 1(B): method costs as ``N1/N`` sweeps (Q4 shape, s1 = 1).

The paper: "For P1+TS, as N1/N increases, more probes result and all of
them succeed (s1 is fixed at 1), and so the number of text searches
increases.  Similarly for P1+RTP, more and more probes are sent out.
The total number of documents matched by the probe column increases as
N1/N increases and f_i is kept fixed.  Consequently many more documents
are shipped to the relational side, resulting in the rise of the cost of
P1+RTP."

Shape assertions:
- both probing methods increase with N1/N;
- TS is flat;
- at small N1/N, P1+RTP wins; at N1/N = 1 probing on the column is
  pointless and P1+TS is worse than plain TS.
"""

from __future__ import annotations

import pytest

from repro.bench import fig1b_series
from repro.bench.reporting import ascii_table

RATIOS = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0]


@pytest.fixture(scope="module")
def series():
    return fig1b_series(RATIOS)


def test_fig1b_regenerate(benchmark, series):
    benchmark.pedantic(lambda: fig1b_series(RATIOS), rounds=1, iterations=1)
    print()
    rows = [
        [ratio] + [round(series[name][index], 2) for name in series]
        for index, ratio in enumerate(RATIOS)
    ]
    print(
        ascii_table(
            ["N1/N"] + list(series),
            rows,
            title="E5: Figure 1(B) — cost vs N1/N (Q4 shape, s1=1)",
        )
    )


def test_probe_methods_increase_with_ratio(series):
    for name in ("P1+TS", "P1+RTP"):
        costs = series[name]
        assert costs[-1] > costs[0]
        assert all(a <= b + 1e-9 for a, b in zip(costs, costs[1:]))


def test_ts_flat_in_ratio(series):
    costs = series["TS"]
    assert max(costs) - min(costs) < 1e-6


def test_p1_rtp_wins_at_small_ratio(series):
    assert series["P1+RTP"][0] == min(
        series[name][0] for name in ("TS", "P1+TS", "P1+RTP", "SJ+RTP")
    )


def test_p1_ts_worse_than_ts_when_s1_is_one(series):
    """With s1 = 1 every probe succeeds: probing is pure overhead."""
    for index in range(len(RATIOS)):
        assert series["P1+TS"][index] >= series["TS"][index] * 0.99
