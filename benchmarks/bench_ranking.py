"""E7 — Section 7's claim: the cost model predicts the method ranking.

"We verified that our cost formulas in Section [4] correctly predict the
optimal method for each query, using the fully correlated cost model."

Assertions: for each of Q1–Q4, the cost model's predicted winner equals
the measured winner, and the full predicted ordering is strongly rank-
correlated with the measured ordering.
"""

from __future__ import annotations

import pytest

from repro.bench import ranking_report
from repro.bench.reporting import ascii_table


@pytest.fixture(scope="module")
def report(scenario):
    return ranking_report(scenario)


def test_ranking_regenerate(scenario, benchmark, report):
    benchmark.pedantic(lambda: ranking_report(scenario), rounds=1, iterations=1)
    print()
    rows = [
        [
            entry["query"],
            " < ".join(entry["measured_order"]),
            " < ".join(entry["predicted_order"]),
            entry["winner_match"],
            round(entry["kendall_tau"], 2),
        ]
        for entry in report
    ]
    print(
        ascii_table(
            ["query", "measured order", "predicted order", "winner ok", "tau"],
            rows,
            title="E7: cost model predicted vs measured rankings (1-correlated)",
        )
    )


def test_predicted_winner_matches_measured(report):
    for entry in report:
        assert entry["winner_match"], (
            f"{entry['query']}: predicted "
            f"{entry['predicted_order'][0]}, measured {entry['measured_order'][0]}"
        )


def test_rank_correlation_is_strong(report):
    for entry in report:
        assert entry["kendall_tau"] >= 0.5, entry
